//! Template mining end-to-end: run all three algorithms of §3 on a
//! synthetic hospital and inspect what they discover.
//!
//! Prints the mined templates (as SQL and as route descriptions), verifies
//! the three algorithms agree (§5.3.3), and shows the per-length timing
//! the paper reports in Figure 13.
//!
//! Run with: `cargo run --release --example mining_explanations`

use eba::audit::groups::{collaborative_groups, install_groups};
use eba::audit::split;
use eba::cluster::HierarchyConfig;
use eba::core::describe::auto_description;
use eba::core::sql::template_sql;
use eba::core::{mine_bridge, mine_one_way, mine_two_way, LogSpec, MiningConfig};
use eba::synth::{Hospital, SynthConfig};

fn main() {
    let mut hospital = Hospital::generate(SynthConfig::small());
    let spec = LogSpec::conventional(&hospital.db).expect("Log table");
    let train_days = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
    let groups = collaborative_groups(&hospital.db, &train_days, HierarchyConfig::default(), 500)
        .expect("Users table");
    install_groups(&mut hospital.db, &groups).expect("installs");

    let mining_spec = spec.with_filters(split::days_first(&hospital.log_cols, 1, 6));
    let config = MiningConfig {
        support_frac: 0.01,
        max_length: 4,
        max_tables: 3,
        ..MiningConfig::default()
    };

    let one = mine_one_way(&hospital.db, &mining_spec, &config);
    let two = mine_two_way(&hospital.db, &mining_spec, &config);
    let bridge = mine_bridge(&hospital.db, &mining_spec, &config, 2).expect("M ≤ 2ℓ+1");

    println!(
        "one-way: {} templates in {:.2}s | two-way: {} in {:.2}s | bridge-2: {} in {:.2}s",
        one.templates.len(),
        one.stats.total_elapsed().as_secs_f64(),
        two.templates.len(),
        two.stats.total_elapsed().as_secs_f64(),
        bridge.templates.len(),
        bridge.stats.total_elapsed().as_secs_f64(),
    );
    assert_eq!(one.key_set(), two.key_set());
    assert_eq!(one.key_set(), bridge.key_set());
    println!("all three algorithms produced the same template set (§5.3.3)\n");

    println!("templates by length: {:?}\n", one.counts_by_length());

    // Show the shortest template of each length, as SQL.
    for (length, _) in one.counts_by_length() {
        let t = one
            .of_length(length)
            .max_by_key(|t| t.support)
            .expect("length exists");
        println!(
            "--- best-supported length-{length} template (support {}/{}) ---",
            t.support, one.anchor_lids
        );
        println!("route: {}", auto_description(&hospital.db, &spec, &t.path));
        println!("{}\n", template_sql(&hospital.db, &mining_spec, &t.path));
    }

    // Per-length mining statistics (Figure 13's raw data).
    println!("one-way per-length statistics:");
    println!(
        "{:>7} {:>11} {:>16} {:>11} {:>9} {:>10}",
        "length", "candidates", "support queries", "cache hits", "skipped", "seconds"
    );
    for s in &one.stats.per_length {
        println!(
            "{:>7} {:>11} {:>16} {:>11} {:>9} {:>10.3}",
            s.length,
            s.candidates,
            s.support_queries,
            s.cache_hits,
            s.skipped,
            s.elapsed.as_secs_f64()
        );
    }
}
