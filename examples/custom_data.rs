//! Bring your own access log: loading CSV extracts and mining them.
//!
//! Real deployments start from exported logs and event extracts (the
//! paper's own data arrived as CareWeb extracts). This example simulates
//! that workflow end-to-end:
//!
//! 1. a hospital exports its `Log` and `Appointments` tables as CSV;
//! 2. an auditor loads the CSVs into a fresh database, declares the join
//!    metadata (Def. 5's administrator input — the only domain knowledge
//!    needed), and mines explanation templates;
//! 3. the mined templates explain the log.
//!
//! Run with: `cargo run --release --example custom_data`

use eba::core::{mine_one_way, LogSpec, MiningConfig};
use eba::relational::{csv, DataType, Database};
use eba::synth::{Hospital, SynthConfig};

fn main() {
    // ---- 1. the "hospital side": export extracts ----------------------
    let source = Hospital::generate(SynthConfig::tiny());
    let mut log_csv = Vec::new();
    let mut appt_csv = Vec::new();
    csv::export_table(&source.db, source.t_log, &mut log_csv).expect("export");
    csv::export_table(&source.db, source.t_appointments, &mut appt_csv).expect("export");
    println!(
        "exported {} log rows ({} bytes) and {} appointments ({} bytes) as CSV",
        source.log_len(),
        log_csv.len(),
        source.db.table(source.t_appointments).len(),
        appt_csv.len()
    );

    // ---- 2. the "auditor side": load into a fresh database ------------
    let mut db = Database::new();
    let log = db
        .create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
                ("Action", DataType::Str),
                ("Day", DataType::Int),
                ("IsFirst", DataType::Int),
            ],
        )
        .expect("fresh db");
    let appt = db
        .create_table(
            "Appointments",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("Doctor", DataType::Int),
            ],
        )
        .expect("fresh db");
    let n_log = csv::import_table(&mut db, log, &mut log_csv.as_slice()).expect("import");
    let n_appt = csv::import_table(&mut db, appt, &mut appt_csv.as_slice()).expect("import");
    println!("loaded {n_log} log rows and {n_appt} appointments");

    // The administrator's only job: declare what joins with what.
    db.add_fk("Log", "Patient", "Appointments", "Patient")
        .expect("ok");
    db.add_fk("Appointments", "Doctor", "Log", "User")
        .expect("ok");

    // ---- 3. mine and explain ------------------------------------------
    let spec = LogSpec::conventional(&db).expect("Log table");
    let mined = mine_one_way(
        &db,
        &spec,
        &MiningConfig {
            support_frac: 0.01,
            max_length: 3,
            max_tables: 2,
            ..MiningConfig::default()
        },
    );
    println!(
        "\nmined {} templates from the loaded data (threshold {} accesses):",
        mined.templates.len(),
        mined.threshold
    );
    for t in &mined.templates {
        println!(
            "  [len {}] support {:>5} — {}",
            t.length(),
            t.support,
            eba::core::describe::auto_description(&db, &spec, &t.path)
        );
    }
    let appt_template = mined
        .templates
        .iter()
        .find(|t| t.length() == 2)
        .expect("appointment template mined from imported data");
    println!(
        "\nthe classic appointment template explains {} of {} accesses",
        appt_template.support, mined.anchor_lids
    );
}
