//! Quickstart: the paper's running example (Figures 1–3, Examples 2.1–3.1).
//!
//! Builds the toy hospital database of Figure 3 — Alice and Bob's
//! appointments, Dr. Dave and Dr. Mike's departments, and a two-entry
//! access log — then:
//!
//! 1. hand-crafts explanation template (A) ("the patient had an appointment
//!    with the user") and template (B) (same department), checking the
//!    supports of Example 3.1 (50% and 100%);
//! 2. renders the natural-language explanation string of Example 2.2;
//! 3. mines templates automatically and shows both are discovered.
//!
//! Run with: `cargo run --example quickstart`

use eba::core::{mine_one_way, ExplanationTemplate, LogSpec, MiningConfig, Path};
use eba::relational::{DataType, Database, Value};

fn main() {
    // ---------------------------------------------------------- Figure 3
    let mut db = Database::new();
    db.create_table(
        "Log",
        &[
            ("Lid", DataType::Int),
            ("Date", DataType::Date),
            ("User", DataType::Str),
            ("Patient", DataType::Str),
        ],
    )
    .expect("fresh db");
    db.create_table(
        "Appointments",
        &[
            ("Patient", DataType::Str),
            ("Date", DataType::Date),
            ("Doctor", DataType::Str),
        ],
    )
    .expect("fresh db");
    db.create_table(
        "Doctor_Info",
        &[("Doctor", DataType::Str), ("Department", DataType::Str)],
    )
    .expect("fresh db");

    let (alice, bob) = (db.str_value("Alice"), db.str_value("Bob"));
    let (dave, mike) = (db.str_value("Dave"), db.str_value("Mike"));
    let pediatrics = db.str_value("Pediatrics");
    let appt = db.table_id("Appointments").expect("created");
    let info = db.table_id("Doctor_Info").expect("created");
    let log = db.table_id("Log").expect("created");

    let day = |d: i64| Value::Date(d * 24 * 60);
    db.insert(appt, vec![alice, day(1), dave]).expect("row");
    db.insert(appt, vec![bob, day(2), mike]).expect("row");
    db.insert(info, vec![mike, pediatrics]).expect("row");
    db.insert(info, vec![dave, pediatrics]).expect("row");
    // L1: Dave accessed Alice; L2: Dave accessed Bob.
    db.insert(log, vec![Value::Int(1), day(1), dave, alice])
        .expect("row");
    db.insert(log, vec![Value::Int(2), day(2), dave, bob])
        .expect("row");

    // Join metadata (Def. 5): key/FK relationships + one allowed self-join.
    db.add_fk("Log", "Patient", "Appointments", "Patient")
        .expect("ok");
    db.add_fk("Appointments", "Doctor", "Log", "User")
        .expect("ok");
    db.add_fk("Appointments", "Doctor", "Doctor_Info", "Doctor")
        .expect("ok");
    db.add_fk("Doctor_Info", "Doctor", "Log", "User")
        .expect("ok");
    db.allow_self_join("Doctor_Info", "Department").expect("ok");

    let spec = LogSpec::conventional(&db).expect("Log table");

    // ------------------------------------------- Templates (A) and (B)
    let template_a = ExplanationTemplate::new(
        Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")]).expect("valid"),
    )
    .named("A: appointment with the user")
    .described("[L.Patient] had an appointment with [L.User] on [T1.Date].");

    let template_b = ExplanationTemplate::new(
        Path::handcrafted(
            &db,
            &spec,
            &[
                ("Appointments", "Patient", "Doctor"),
                ("Doctor_Info", "Doctor", "Department"),
                ("Doctor_Info", "Department", "Doctor"),
            ],
        )
        .expect("valid"),
    )
    .named("B: appointment with a same-department doctor")
    .described(
        "[L.Patient] had an appointment with [T1.Doctor] on [T1.Date], and [L.User] and \
         [T1.Doctor] work together in the [T2.Department] department.",
    );

    println!("Template (A) as SQL:\n{}\n", template_a.to_sql(&db, &spec));
    let support_a = template_a.support(&db, &spec).expect("valid");
    let support_b = template_b.support(&db, &spec).expect("valid");
    println!("Example 3.1 — support(A) = {support_a}/2, support(B) = {support_b}/2\n");
    assert_eq!((support_a, support_b), (1, 2));

    // ------------------------------------------------ Explain L1 and L2
    for row in 0..2 {
        let lid = db.table(log).cell(row, 0);
        println!("Explanations for log record {}:", lid.display(db.pool()));
        for t in [&template_a, &template_b] {
            for inst in t.instances(&db, &spec, row, 4).expect("valid") {
                println!(
                    "  [len {}] {}",
                    t.length(),
                    t.render(&db, &spec, row, &inst)
                );
            }
        }
        println!();
    }

    // ------------------------------------------------------- Mine them
    let config = MiningConfig {
        support_frac: 0.5, // 50%: template (A) sits exactly at threshold
        max_length: 4,
        max_tables: 3,
        ..MiningConfig::default()
    };
    let mined = mine_one_way(&db, &spec, &config);
    println!(
        "Mined {} templates (threshold {} of {} accesses):",
        mined.templates.len(),
        mined.threshold,
        mined.anchor_lids
    );
    for t in &mined.templates {
        println!(
            "  [len {}] support {} — {}",
            t.length(),
            t.support,
            eba::core::describe::auto_description(&db, &spec, &t.path)
        );
    }
    assert!(mined.templates.iter().any(|t| t.length() == 2));
    assert!(mined.templates.iter().any(|t| t.length() == 4));
    println!("\nBoth the paper's templates were discovered automatically.");
}
