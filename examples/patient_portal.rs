//! User-centric auditing: the patient portal of the paper's introduction.
//!
//! "Consider a patient Alice who is using a user-centric auditing system.
//! She logs into the patient portal and requests a log of all accesses to
//! her medical record. [...] Looking at this log, Alice would like to
//! understand the reason for each of these accesses."
//!
//! Generates a synthetic hospital, builds collaborative groups from the
//! log, assembles an explainer (hand-crafted + group templates), and prints
//! the access report — with explanations — for the most-accessed patient.
//!
//! Run with: `cargo run --release --example patient_portal`

use eba::audit::groups::{collaborative_groups, install_groups};
use eba::audit::handcrafted::{same_group, EventTable, HandcraftedTemplates};
use eba::audit::portal::patient_report;
use eba::audit::{split, Explainer};
use eba::cluster::HierarchyConfig;
use eba::core::LogSpec;
use eba::synth::{Hospital, SynthConfig};

fn main() {
    let mut hospital = Hospital::generate(SynthConfig::small());
    let spec = LogSpec::conventional(&hospital.db).expect("Log table");

    // Infer who-works-with-whom from the first six days of the log (§4).
    let train = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
    let groups = collaborative_groups(&hospital.db, &train, HierarchyConfig::default(), 500)
        .expect("Users table");
    install_groups(&mut hospital.db, &groups).expect("installs");

    // The explainer: the paper's hand-crafted suite plus group templates.
    let handcrafted = HandcraftedTemplates::build(&hospital.db, &spec).expect("schema");
    let mut templates: Vec<_> = handcrafted.all().into_iter().cloned().collect();
    for event in EventTable::ALL {
        templates.push(same_group(&hospital.db, &spec, event, Some(1)).expect("Groups installed"));
    }
    let explainer = Explainer::new(templates);

    // Pick the most-accessed patient — the busiest report.
    let log = hospital.db.table(hospital.t_log);
    let idx = log.index(hospital.log_cols.patient);
    let (patient, _) = idx
        .groups()
        .into_iter()
        .max_by_key(|(_, rows)| rows.len())
        .expect("log not empty");

    let report = patient_report(&hospital.db, &spec, &hospital.log_cols, &explainer, patient)
        .expect("report");
    println!(
        "Access report for patient {} ({} accesses)\n",
        patient.display(hospital.db.pool()),
        report.len()
    );
    println!("{:<6} {:<16} {:<8} explanation", "lid", "time", "user");
    println!("{}", "-".repeat(72));
    let mut explained = 0usize;
    for entry in &report {
        if entry.explanation.is_some() {
            explained += 1;
        }
        println!(
            "{:<6} {:<16} {:<8} {}",
            entry.lid.display(hospital.db.pool()).to_string(),
            entry.date.display(hospital.db.pool()).to_string(),
            entry.user.display(hospital.db.pool()).to_string(),
            entry.display_text()
        );
    }
    println!(
        "\n{} of {} accesses explained ({:.0}%).",
        explained,
        report.len(),
        100.0 * explained as f64 / report.len().max(1) as f64
    );
}
