//! Misuse detection: the paper's secondary application.
//!
//! "If we are able to automatically construct explanations for why accesses
//! occurred, we can conceivably use this information to reduce the set of
//! accesses that must be examined to those that are unexplained."
//!
//! Generates a hospital with injected snooping accesses (the Britney
//! Spears / presidential-passport scenario), mines explanation templates
//! from the log, and shows that (a) the unexplained set is a small fraction
//! of the log, and (b) the snoops land in it — then keeps detecting as
//! new accesses stream in, via a [`SharedEngine`] refresh-on-ingest loop
//! (the detector re-pins an epoch after each batch; a batch landing
//! mid-scan can never block or tear the scan).
//!
//! Run with: `cargo run --release --example misuse_detection`

use eba::audit::groups::{collaborative_groups, install_groups};
use eba::audit::handcrafted::HandcraftedTemplates;
use eba::audit::portal::misuse_summary_at;
use eba::audit::{split, Explainer};
use eba::cluster::HierarchyConfig;
use eba::core::{mine_one_way, ExplanationTemplate, LogSpec, MiningConfig};
use eba::relational::SharedEngine;
use eba::synth::{AccessReason, Hospital, SynthConfig};

fn main() {
    let config = SynthConfig {
        n_snoop_accesses: 25,
        ..SynthConfig::small()
    };
    let mut hospital = Hospital::generate(config);
    let spec = LogSpec::conventional(&hospital.db).expect("Log table");

    // Groups from the train period, then mine templates automatically.
    let train = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
    let groups = collaborative_groups(&hospital.db, &train, HierarchyConfig::default(), 500)
        .expect("Users table");
    install_groups(&mut hospital.db, &groups).expect("installs");

    let mining = MiningConfig {
        support_frac: 0.01,
        max_length: 4,
        max_tables: 3,
        ..MiningConfig::default()
    };
    let mined = mine_one_way(
        &hospital.db,
        &spec.with_filters(split::days_first(&hospital.log_cols, 1, 6)),
        &mining,
    );
    println!(
        "Mined {} templates from days 1-6 (support ≥ {} accesses).",
        mined.templates.len(),
        mined.threshold
    );

    // The explainer: mined templates + the hand-crafted decorated repeat
    // template (repeat access is not minable without its temporal
    // decoration — §2.1, explanation (C)).
    let handcrafted = HandcraftedTemplates::build(&hospital.db, &spec).expect("schema");
    let mut templates: Vec<ExplanationTemplate> = mined
        .templates
        .iter()
        .map(|t| ExplanationTemplate::new(t.path.clone()))
        .collect();
    templates.push(handcrafted.repeat_access.clone());
    let explainer = Explainer::new(templates);

    // The detection service: one snapshot-handoff session answers both
    // audit questions below from a single pinned epoch, and follows the
    // growing log through `ingest` at the end.
    let session = SharedEngine::new(hospital.db.clone());
    let epoch = session.load();
    let unexplained = explainer.unexplained_rows_at(&spec, &epoch);
    let total = hospital.log_len();
    println!(
        "\n{} of {} accesses unexplained ({:.1}%) — the compliance office's review set shrank by {:.1}x.",
        unexplained.len(),
        total,
        100.0 * unexplained.len() as f64 / total as f64,
        total as f64 / unexplained.len().max(1) as f64,
    );

    // Where did the snoops go?
    let snoops: Vec<u32> = (0..total as u32)
        .filter(|&rid| hospital.reason_of(rid) == AccessReason::Snoop)
        .collect();
    let caught = snoops
        .iter()
        .filter(|rid| unexplained.contains(rid))
        .count();
    println!(
        "Injected snooping accesses: {} — {} remain unexplained (flagged).",
        snoops.len(),
        caught
    );

    println!("\nTop users by unexplained accesses:");
    println!(
        "{:<8} {:>12} {:>18}",
        "user", "unexplained", "distinct patients"
    );
    for s in misuse_summary_at(&spec, &explainer, &epoch)
        .into_iter()
        .take(8)
    {
        println!(
            "{:<8} {:>12} {:>18}",
            s.user.display(hospital.db.pool()).to_string(),
            s.unexplained,
            s.distinct_patients
        );
    }
    println!(
        "\n(Float-pool users — vascular access, anesthesiology — dominate, as the paper found;"
    );
    println!(" their work leaves no database trace, so they are flagged for manual review.)");

    // ---- the detector keeps up with the log ------------------------------
    // A fresh wave of uniformly-random accesses (the paper's fake-log
    // methodology — behaviourally identical to snooping) streams in as two
    // batches. Each ingest publishes a new epoch; re-pinning and re-running
    // the unexplained scan flags the new wave without rebuilding anything.
    println!("\n== Live ingest: two more batches of suspicious accesses ==");
    let users = eba::audit::fake::user_pool(&hospital.db);
    let patients: Vec<_> = (0..hospital.world.n_patients())
        .map(|p| hospital.patient_value(p))
        .collect();
    for round in 0..2u64 {
        let (fake, report) = session.ingest(|db| {
            eba::audit::fake::FakeLog::inject(
                db,
                hospital.t_log,
                &hospital.log_cols,
                &users,
                &patients,
                20,
                hospital.config.days,
                0x5E_u64 + round,
            )
        });
        let epoch = session.load();
        let unexplained = explainer.unexplained_rows_at(&spec, &epoch);
        let caught = fake.rows().filter(|r| unexplained.contains(r)).count();
        println!(
            "epoch {}: +{} injected accesses, {} of them flagged unexplained ({} total unexplained)",
            report.seq,
            report.refresh.delta.new_rows,
            caught,
            unexplained.len()
        );
    }
}
