//! Misuse detection: the paper's secondary application.
//!
//! "If we are able to automatically construct explanations for why accesses
//! occurred, we can conceivably use this information to reduce the set of
//! accesses that must be examined to those that are unexplained."
//!
//! Generates a hospital with injected snooping accesses (the Britney
//! Spears / presidential-passport scenario), mines explanation templates
//! from the log, and shows that (a) the unexplained set is a small fraction
//! of the log, and (b) the snoops land in it.
//!
//! Run with: `cargo run --release --example misuse_detection`

use eba::audit::groups::{collaborative_groups, install_groups};
use eba::audit::handcrafted::HandcraftedTemplates;
use eba::audit::portal::misuse_summary_with;
use eba::audit::{split, Explainer};
use eba::cluster::HierarchyConfig;
use eba::core::{mine_one_way, ExplanationTemplate, LogSpec, MiningConfig};
use eba::synth::{AccessReason, Hospital, SynthConfig};

fn main() {
    let config = SynthConfig {
        n_snoop_accesses: 25,
        ..SynthConfig::small()
    };
    let mut hospital = Hospital::generate(config);
    let spec = LogSpec::conventional(&hospital.db).expect("Log table");

    // Groups from the train period, then mine templates automatically.
    let train = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
    let groups = collaborative_groups(&hospital.db, &train, HierarchyConfig::default(), 500)
        .expect("Users table");
    install_groups(&mut hospital.db, &groups).expect("installs");

    let mining = MiningConfig {
        support_frac: 0.01,
        max_length: 4,
        max_tables: 3,
        ..MiningConfig::default()
    };
    let mined = mine_one_way(
        &hospital.db,
        &spec.with_filters(split::days_first(&hospital.log_cols, 1, 6)),
        &mining,
    );
    println!(
        "Mined {} templates from days 1-6 (support ≥ {} accesses).",
        mined.templates.len(),
        mined.threshold
    );

    // The explainer: mined templates + the hand-crafted decorated repeat
    // template (repeat access is not minable without its temporal
    // decoration — §2.1, explanation (C)).
    let handcrafted = HandcraftedTemplates::build(&hospital.db, &spec).expect("schema");
    let mut templates: Vec<ExplanationTemplate> = mined
        .templates
        .iter()
        .map(|t| ExplanationTemplate::new(t.path.clone()))
        .collect();
    templates.push(handcrafted.repeat_access.clone());
    let explainer = Explainer::new(templates);

    // One warm engine answers both audit questions below.
    let engine = eba::relational::Engine::new(&hospital.db);
    let unexplained = explainer.unexplained_rows_with(&hospital.db, &spec, &engine);
    let total = hospital.log_len();
    println!(
        "\n{} of {} accesses unexplained ({:.1}%) — the compliance office's review set shrank by {:.1}x.",
        unexplained.len(),
        total,
        100.0 * unexplained.len() as f64 / total as f64,
        total as f64 / unexplained.len().max(1) as f64,
    );

    // Where did the snoops go?
    let snoops: Vec<u32> = (0..total as u32)
        .filter(|&rid| hospital.reason_of(rid) == AccessReason::Snoop)
        .collect();
    let caught = snoops
        .iter()
        .filter(|rid| unexplained.contains(rid))
        .count();
    println!(
        "Injected snooping accesses: {} — {} remain unexplained (flagged).",
        snoops.len(),
        caught
    );

    println!("\nTop users by unexplained accesses:");
    println!(
        "{:<8} {:>12} {:>18}",
        "user", "unexplained", "distinct patients"
    );
    for s in misuse_summary_with(&hospital.db, &spec, &explainer, &engine)
        .into_iter()
        .take(8)
    {
        println!(
            "{:<8} {:>12} {:>18}",
            s.user.display(hospital.db.pool()).to_string(),
            s.unexplained,
            s.distinct_patients
        );
    }
    println!(
        "\n(Float-pool users — vascular access, anesthesiology — dominate, as the paper found;"
    );
    println!(" their work leaves no database trace, so they are flagged for manual review.)");
}
