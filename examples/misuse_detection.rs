//! Misuse detection: the paper's secondary application — served live.
//!
//! "If we are able to automatically construct explanations for why accesses
//! occurred, we can conceivably use this information to reduce the set of
//! accesses that must be examined to those that are unexplained."
//!
//! Generates a hospital with injected snooping accesses (the Britney
//! Spears / presidential-passport scenario), mines explanation templates
//! from the log — and then, instead of calling the library directly, runs
//! the whole investigation **against a live `eba-serve` instance over real
//! TCP sockets**: the detector session pins an epoch, reads the
//! unexplained set and the triage queue over the wire, `INGEST`s fresh
//! suspicious batches through the single-writer path, and `REPIN`s to
//! follow the log. A rebuild fallback reported by an ingest is surfaced
//! as a warning instead of being silently dropped.
//!
//! Run with: `cargo run --release --example misuse_detection`

use eba::audit::groups::{collaborative_groups, install_groups};
use eba::audit::handcrafted::HandcraftedTemplates;
use eba::audit::{split, Explainer};
use eba::cluster::HierarchyConfig;
use eba::core::{mine_one_way, ExplanationTemplate, LogSpec, MiningConfig};
use eba::relational::Value;
use eba::server::{AuditService, Client, IngestRow, Server};
use eba::synth::{AccessReason, Hospital, SynthConfig};
use std::collections::HashSet;

fn main() {
    let config = SynthConfig {
        n_snoop_accesses: 25,
        ..SynthConfig::small()
    };
    let mut hospital = Hospital::generate(config);
    let spec = LogSpec::conventional(&hospital.db).expect("Log table");

    // Groups from the train period, then mine templates automatically.
    let train = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
    let groups = collaborative_groups(&hospital.db, &train, HierarchyConfig::default(), 500)
        .expect("Users table");
    install_groups(&mut hospital.db, &groups).expect("installs");

    let mining = MiningConfig {
        support_frac: 0.01,
        max_length: 4,
        max_tables: 3,
        ..MiningConfig::default()
    };
    let mined = mine_one_way(
        &hospital.db,
        &spec.with_filters(split::days_first(&hospital.log_cols, 1, 6)),
        &mining,
    );
    println!(
        "Mined {} templates from days 1-6 (support ≥ {} accesses).",
        mined.templates.len(),
        mined.threshold
    );

    // The explainer: mined templates + the hand-crafted decorated repeat
    // template (repeat access is not minable without its temporal
    // decoration — §2.1, explanation (C)).
    let handcrafted = HandcraftedTemplates::build(&hospital.db, &spec).expect("schema");
    let mut templates: Vec<ExplanationTemplate> = mined
        .templates
        .iter()
        .map(|t| ExplanationTemplate::new(t.path.clone()))
        .collect();
    templates.push(handcrafted.repeat_access.clone());
    let explainer = Explainer::new(templates);

    // ---- the detection service goes live -------------------------------
    // The database, spec and suite move into an `eba-serve` instance on an
    // ephemeral port; everything below talks to it over a real socket.
    let service = AuditService::new(
        hospital.db.clone(),
        spec.clone(),
        hospital.log_cols,
        explainer,
        hospital.config.days,
    );
    let server = Server::spawn(service, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();
    println!("\neba-serve listening on {addr}; detector session connecting...");
    let mut detector = Client::connect(addr).expect("connect");
    println!("server greeting: {}", detector.greeting().head);

    let unexplained = detector.send("UNEXPLAINED").expect("unexplained");
    let count: usize = unexplained.field("unexplained").unwrap().parse().unwrap();
    let total: usize = unexplained.field("of").unwrap().parse().unwrap();
    println!(
        "\n{count} of {total} accesses unexplained ({:.1}%) — the compliance office's review set shrank by {:.1}x.",
        100.0 * count as f64 / total as f64,
        total as f64 / count.max(1) as f64,
    );

    // Where did the snoops go? Match the wire listing's lids against the
    // generator's ground truth.
    let flagged_lids: HashSet<i64> = unexplained
        .body
        .iter()
        .filter_map(|line| line.strip_prefix("lid ")?.split_whitespace().next())
        .filter_map(|lid| lid.parse().ok())
        .collect();
    let snoop_lids: Vec<i64> = (0..hospital.log_len() as u32)
        .filter(|&rid| hospital.reason_of(rid) == AccessReason::Snoop)
        .filter_map(
            |rid| match hospital.db.table(hospital.t_log).row(rid)[hospital.log_cols.lid] {
                Value::Int(lid) => Some(lid),
                _ => None,
            },
        )
        .collect();
    let caught = snoop_lids
        .iter()
        .filter(|l| flagged_lids.contains(l))
        .count();
    println!(
        "Injected snooping accesses: {} — {} remain unexplained (flagged).",
        snoop_lids.len(),
        caught
    );

    println!("\nTop users by unexplained accesses (MISUSE over the wire):");
    println!(
        "{:<8} {:>12} {:>18}",
        "user", "unexplained", "distinct patients"
    );
    let top = detector.send("MISUSE").expect("misuse");
    for line in top.body.iter().take(8) {
        let mut f = line.split_whitespace();
        let user = f.nth(1).unwrap_or("?");
        let unexplained = f.nth(1).unwrap_or("?");
        let patients = f.nth(1).unwrap_or("?");
        println!("{user:<8} {unexplained:>12} {patients:>18}");
    }
    println!(
        "\n(Float-pool users — vascular access, anesthesiology — dominate, as the paper found;"
    );
    println!(" their work leaves no database trace, so they are flagged for manual review.)");

    // ---- the detector keeps up with the log ------------------------------
    // Two fresh waves of uniformly-random accesses (the paper's fake-log
    // methodology — behaviourally identical to snooping) stream in through
    // the protocol's single-writer INGEST path. Each batch publishes a new
    // epoch; the detector REPINs and re-reads the unexplained count. A
    // `rebuilt 1` reply (the incremental refresh was refused and the
    // engine was rebuilt) is surfaced as a warning, never dropped.
    println!("\n== Live ingest: two more batches of suspicious accesses ==");
    let users = eba::audit::fake::user_pool(&hospital.db);
    let patients: Vec<Value> = (0..hospital.world.n_patients())
        .map(|p| hospital.patient_value(p))
        .collect();
    let as_int = |v: &Value| match v {
        Value::Int(i) => *i,
        _ => 0,
    };
    for round in 0..2usize {
        let rows: Vec<IngestRow> = (0..20)
            .map(|i| IngestRow {
                user: as_int(&users[(round * 31 + i * 17) % users.len()]),
                patient: as_int(&patients[(round * 53 + i * 29) % patients.len()]),
                day: Some(1 + ((round + i) % hospital.config.days as usize) as i64),
            })
            .collect();
        let reply = detector.ingest(&rows).expect("ingest");
        for warn in reply.body.iter().filter(|l| l.starts_with("warn ")) {
            eprintln!("!! {warn}");
        }
        let repin = detector.send("REPIN").expect("repin");
        let fresh = detector.send("UNEXPLAINED 0").expect("recount");
        println!(
            "epoch {}: +{} injected accesses (rebuilt {}), {} total unexplained after {}",
            reply.field("seq").unwrap(),
            reply.field("rows").unwrap(),
            reply.field("rebuilt").unwrap(),
            fresh.field("unexplained").unwrap(),
            repin.head.trim_start_matches("OK "),
        );
    }

    let _ = detector.send("QUIT");
    drop(server); // graceful shutdown: joins the in-flight session threads
    println!("\nserver shut down cleanly.");
}
