//! The compliance office's view: daily explanation trends, a triage queue
//! of suspicious users, and per-access investigation of near-misses —
//! recomputed live as the log ingests.
//!
//! The paper's pitch to compliance officers is that explanations "reduce
//! the set of accesses that must be examined to those that are
//! unexplained". This example shows the day-to-day artifacts built on
//! that: a timeline, a triage queue, and a near-miss diagnosis that
//! separates "no data at all" (float staff, truncated records) from "the
//! data points at a *different* user" (the snooping signature).
//!
//! The office runs *while* the hospital works, so the whole dashboard
//! sits on a [`SharedEngine`]: every view below is computed against one
//! pinned epoch (a frozen database + warm engine), and each overnight
//! batch is published with `session.ingest(..)` — the refresh-on-ingest
//! loop at the end never blocks a dashboard that is mid-recomputation.
//! Clock-skewed accesses (a workstation stamping day 0) land in the
//! timeline's explicit overflow bucket instead of silently inflating the
//! compliance rate.
//!
//! Run with: `cargo run --release --example compliance_dashboard`

use eba::audit::groups::{collaborative_groups, install_groups};
use eba::audit::handcrafted::{same_group, EventTable, HandcraftedTemplates};
use eba::audit::investigate::{diagnose, looks_like_snooping};
use eba::audit::portal::misuse_summary_at;
use eba::audit::timeline::{daily_stats_at, Timeline};
use eba::audit::{split, Explainer};
use eba::cluster::HierarchyConfig;
use eba::core::LogSpec;
use eba::relational::{Epoch, SharedEngine, Value};
use eba::synth::{Hospital, SynthConfig};

fn print_timeline(timeline: &Timeline) {
    println!(
        "{:>4} {:>8} {:>10} {:>8}   {:>6} {:>9}",
        "day", "accesses", "explained", "rate", "firsts", "explained"
    );
    for s in &timeline.days {
        println!(
            "{:>4} {:>8} {:>10} {:>7.1}%   {:>6} {:>9}",
            s.day,
            s.total,
            s.explained,
            100.0 * s.explained_rate(),
            s.first_accesses,
            s.first_explained
        );
    }
    if timeline.dropped() > 0 {
        println!(
            "  !! {} accesses outside the reporting window (clock skew?) — {} explained",
            timeline.dropped(),
            timeline.overflow.explained
        );
    }
}

fn main() {
    let config = SynthConfig {
        n_snoop_accesses: 40,
        ..SynthConfig::small()
    };
    let mut hospital = Hospital::generate(config);
    let spec = LogSpec::conventional(&hospital.db).expect("Log table");
    let train = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
    let groups = collaborative_groups(&hospital.db, &train, HierarchyConfig::default(), 500)
        .expect("Users table");
    install_groups(&mut hospital.db, &groups).expect("installs");

    let handcrafted = HandcraftedTemplates::build(&hospital.db, &spec).expect("schema");
    let mut templates: Vec<_> = handcrafted.all().into_iter().cloned().collect();
    for e in EventTable::ALL {
        templates.push(same_group(&hospital.db, &spec, e, Some(1)).expect("Groups installed"));
    }
    let explainer = Explainer::new(templates);

    // The long-running office session: the database moves into a
    // snapshot-handoff cell; every view below pins one epoch, the ingest
    // loop at the end publishes new ones.
    let session = SharedEngine::new(hospital.db.clone());
    let epoch = session.load();

    // ---- 1. the timeline -----------------------------------------------
    println!("== Daily explanation timeline (epoch {}) ==", epoch.seq());
    let timeline = daily_stats_at(
        &spec,
        &hospital.log_cols,
        &explainer,
        hospital.config.days,
        &epoch,
    );
    print_timeline(&timeline);

    // ---- 2. the triage queue -------------------------------------------
    println!("\n== Triage queue (top unexplained users) ==");
    let queue = misuse_summary_at(&spec, &explainer, &epoch);
    for s in queue.iter().take(5) {
        println!(
            "user {:<6} {:>4} unexplained accesses across {:>4} patients",
            s.user.display(epoch.db().pool()).to_string(),
            s.unexplained,
            s.distinct_patients
        );
    }

    // ---- 3. investigation: classify the unexplained ---------------------
    println!("\n== Investigation of unexplained accesses ==");
    let unexplained = explainer.unexplained_rows_at(&spec, &epoch);
    let mut snoop_like = 0usize;
    let mut data_gap = 0usize;
    for &rid in &unexplained {
        let d = diagnose(epoch.db(), &spec, &explainer, rid).expect("valid templates");
        if looks_like_snooping(&d) {
            snoop_like += 1;
        } else {
            data_gap += 1;
        }
    }
    println!(
        "{} unexplained accesses: {} look like snooping (data points at another user), {} are data gaps",
        unexplained.len(),
        snoop_like,
        data_gap
    );

    // Show one concrete investigation, from the same frozen epoch.
    if let Some(&rid) = unexplained.iter().find(|&&rid| {
        let d = diagnose(epoch.db(), &spec, &explainer, rid).expect("valid");
        looks_like_snooping(&d)
    }) {
        let row = epoch.db().table(hospital.t_log).row(rid);
        println!(
            "\nexample: user {} accessed patient {}'s record — closest template verdicts:",
            row[hospital.log_cols.user].display(epoch.db().pool()),
            row[hospital.log_cols.patient].display(epoch.db().pool()),
        );
        for d in diagnose(epoch.db(), &spec, &explainer, rid)
            .expect("valid")
            .iter()
            .take(3)
        {
            println!("  - {}", d.summary());
        }
    }

    // ---- 4. the refresh-on-ingest loop ----------------------------------
    // Two overnight batches arrive while the views above could still be
    // rendering: each ingest publishes a new epoch; the dashboard simply
    // re-pins and recomputes. The second batch includes a workstation
    // with a skewed clock — its accesses surface in the overflow bucket
    // instead of disappearing.
    println!("\n== Overnight ingest: the dashboard follows the log ==");
    let users = eba::audit::fake::user_pool(&hospital.db);
    let patients: Vec<Value> = (0..hospital.world.n_patients())
        .map(|p| hospital.patient_value(p))
        .collect();
    for round in 0..2u64 {
        let skewed = if round == 1 { 7 } else { 0 };
        let (_, report) = session.ingest(|db| {
            eba::audit::fake::FakeLog::inject(
                db,
                hospital.t_log,
                &hospital.log_cols,
                &users,
                &patients,
                150,
                hospital.config.days,
                0xD45_u64 + round,
            );
            // The skewed workstation: same accesses, impossible day stamp.
            let arity = db.table(hospital.t_log).schema().arity();
            for i in 0..skewed {
                let mut row = vec![Value::Null; arity];
                row[hospital.log_cols.lid] = Value::Int(900_000 + i);
                row[hospital.log_cols.date] = Value::Date(0);
                row[hospital.log_cols.user] = users[i as usize % users.len()];
                row[hospital.log_cols.patient] = patients[i as usize % patients.len()];
                row[hospital.log_cols.day] = Value::Int(0);
                row[hospital.log_cols.is_first] = Value::Int(0);
                db.insert(hospital.t_log, row).unwrap();
            }
        });
        // A refused incremental refresh (rebuild fallback) is an
        // operational event the office must hear about, not a flag to
        // silently absorb.
        if let Some(warning) = report.fallback_warning() {
            eprintln!("!! {warning}");
        }
        let epoch: std::sync::Arc<Epoch> = session.load();
        let timeline = daily_stats_at(
            &spec,
            &hospital.log_cols,
            &explainer,
            hospital.config.days,
            &epoch,
        );
        println!(
            "\nepoch {}: +{} rows ingested ({} step maps kept warm across the handoff)",
            report.seq,
            report.refresh.delta.new_rows,
            epoch.engine().cached_step_maps(),
        );
        print_timeline(&timeline);
    }
}
