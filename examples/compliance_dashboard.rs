//! The compliance office's view: daily explanation trends, a triage queue
//! of suspicious users, and per-access investigation of near-misses.
//!
//! The paper's pitch to compliance officers is that explanations "reduce
//! the set of accesses that must be examined to those that are
//! unexplained". This example shows the day-to-day artifacts built on
//! that: a timeline, a triage queue, and — new in this implementation — a
//! near-miss diagnosis that separates "no data at all" (float staff,
//! truncated records) from "the data points at a *different* user" (the
//! snooping signature).
//!
//! Run with: `cargo run --release --example compliance_dashboard`

use eba::audit::groups::{collaborative_groups, install_groups};
use eba::audit::handcrafted::{same_group, EventTable, HandcraftedTemplates};
use eba::audit::investigate::{diagnose, looks_like_snooping};
use eba::audit::portal::misuse_summary_with;
use eba::audit::timeline::daily_stats_with;
use eba::audit::{split, Explainer};
use eba::cluster::HierarchyConfig;
use eba::core::LogSpec;
use eba::relational::Engine;
use eba::synth::{Hospital, SynthConfig};

fn main() {
    let config = SynthConfig {
        n_snoop_accesses: 40,
        ..SynthConfig::small()
    };
    let mut hospital = Hospital::generate(config);
    let spec = LogSpec::conventional(&hospital.db).expect("Log table");
    let train = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
    let groups = collaborative_groups(&hospital.db, &train, HierarchyConfig::default(), 500)
        .expect("Users table");
    install_groups(&mut hospital.db, &groups).expect("installs");

    let handcrafted = HandcraftedTemplates::build(&hospital.db, &spec).expect("schema");
    let mut templates: Vec<_> = handcrafted.all().into_iter().cloned().collect();
    for e in EventTable::ALL {
        templates.push(same_group(&hospital.db, &spec, e, Some(1)).expect("Groups installed"));
    }
    let explainer = Explainer::new(templates);
    // One warm engine serves all three views below (and would follow the
    // log via `Engine::refresh` in a long-running office session).
    let engine = Engine::new(&hospital.db);

    // ---- 1. the timeline -----------------------------------------------
    println!("== Daily explanation timeline ==");
    println!(
        "{:>4} {:>8} {:>10} {:>8}   {:>6} {:>9}",
        "day", "accesses", "explained", "rate", "firsts", "explained"
    );
    for s in daily_stats_with(
        &hospital.db,
        &spec,
        &hospital.log_cols,
        &explainer,
        hospital.config.days,
        &engine,
    ) {
        println!(
            "{:>4} {:>8} {:>10} {:>7.1}%   {:>6} {:>9}",
            s.day,
            s.total,
            s.explained,
            100.0 * s.explained_rate(),
            s.first_accesses,
            s.first_explained
        );
    }

    // ---- 2. the triage queue -------------------------------------------
    println!("\n== Triage queue (top unexplained users) ==");
    let queue = misuse_summary_with(&hospital.db, &spec, &explainer, &engine);
    for s in queue.iter().take(5) {
        println!(
            "user {:<6} {:>4} unexplained accesses across {:>4} patients",
            s.user.display(hospital.db.pool()).to_string(),
            s.unexplained,
            s.distinct_patients
        );
    }

    // ---- 3. investigation: classify the unexplained ---------------------
    println!("\n== Investigation of unexplained accesses ==");
    let unexplained = explainer.unexplained_rows_with(&hospital.db, &spec, &engine);
    let mut snoop_like = 0usize;
    let mut data_gap = 0usize;
    for &rid in &unexplained {
        let d = diagnose(&hospital.db, &spec, &explainer, rid).expect("valid templates");
        if looks_like_snooping(&d) {
            snoop_like += 1;
        } else {
            data_gap += 1;
        }
    }
    println!(
        "{} unexplained accesses: {} look like snooping (data points at another user), {} are data gaps",
        unexplained.len(),
        snoop_like,
        data_gap
    );

    // Show one concrete investigation.
    if let Some(&rid) = unexplained.iter().find(|&&rid| {
        let d = diagnose(&hospital.db, &spec, &explainer, rid).expect("valid");
        looks_like_snooping(&d)
    }) {
        let row = hospital.db.table(hospital.t_log).row(rid);
        println!(
            "\nexample: user {} accessed patient {}'s record — closest template verdicts:",
            row[hospital.log_cols.user].display(hospital.db.pool()),
            row[hospital.log_cols.patient].display(hospital.db.pool()),
        );
        for d in diagnose(&hospital.db, &spec, &explainer, rid)
            .expect("valid")
            .iter()
            .take(3)
        {
            println!("  - {}", d.summary());
        }
    }
}
