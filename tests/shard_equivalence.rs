//! The sharding proof: a differential suite pitting [`ShardedEngine`]
//! at shard counts {1, 2, 4} against the unsharded [`SharedEngine`]
//! oracle, **byte for byte** across the whole audit surface.
//!
//! Every test renders the full audit answer — per-query support and
//! explained global row ids, the unexplained list, the recall/precision
//! confusion counts, the day-bucketed timeline, the misuse triage queue,
//! and per-patient portal reports — to one transcript string, and
//! asserts the scatter-gather transcript equals the oracle's exactly:
//!
//! * under proptest-driven ingest/pin interleavings (random batch sizes,
//!   including empty batches), at every published epoch;
//! * for epoch vectors pinned mid-run: their transcripts must not drift
//!   by a byte while later ingests publish — the single-epoch pinning
//!   guarantee carried over to the vector;
//! * at the degenerate boundaries: shard count 1, every row hashed to
//!   one shard, and partitions with structurally empty shards;
//! * under real reader/writer concurrency (the `tests/common` harness),
//!   where pinned vectors are re-rendered while a writer ingests.

mod common;

use common::AuditWorld;
use eba::audit::{metrics, portal, timeline};
use eba::relational::{
    Database, Epoch, EpochVec, EvalOptions, ShardKey, ShardedEngine, SharedEngine, Value,
};
use proptest::prelude::*;

/// The partition key every test shards by — the spec's patient column,
/// exactly what the serving layer uses.
fn key(world: &AuditWorld) -> ShardKey {
    ShardKey {
        table: world.spec.table,
        col: world.spec.patient_col,
    }
}

/// One patient's portal report: `(global row, lid, date, user, text)`
/// tuples, as rendered into the differential transcripts below.
type PatientReport = Vec<(u32, Value, Value, Value, String)>;

/// Patients whose portal reports the transcript includes (first, middle,
/// last of the pool — enough to cross shard boundaries at any count).
fn report_patients(world: &AuditWorld) -> Vec<Value> {
    let p = &world.patients;
    vec![p[0], p[p.len() / 2], p[p.len() - 1]]
}

/// Renders one shard-agnostic audit transcript from closures producing
/// each view, so the oracle and the scatter-gather path share the exact
/// same rendering (any divergence is then in the *answers*).
#[allow(clippy::too_many_arguments)]
fn render(
    world: &AuditWorld,
    seq: u64,
    log_len: usize,
    per_query: Vec<(usize, Vec<u32>)>,
    unexplained: Vec<u32>,
    confusion: &eba::audit::metrics::Confusion,
    t: &eba::audit::timeline::Timeline,
    misuse: &[portal::SuspectSummary],
    reports: &[PatientReport],
) -> String {
    let mut out = format!("epoch {seq} log {log_len}\n");
    for (i, (support, rows)) in per_query.iter().enumerate() {
        out.push_str(&format!("q{i} support {support} rows {rows:?}\n"));
    }
    out.push_str(&format!("unexplained {unexplained:?}\n"));
    out.push_str(&format!(
        "confusion real {}/{} fake {}/{} with_events {}\n",
        confusion.real_explained,
        confusion.real_total,
        confusion.fake_explained,
        confusion.fake_total,
        confusion.real_with_events
    ));
    for s in &t.days {
        out.push_str(&format!(
            "day {} {} {} {} {}\n",
            s.day, s.total, s.explained, s.first_accesses, s.first_explained
        ));
    }
    out.push_str(&format!(
        "overflow {} {} {} {} dropped {}\n",
        t.overflow.total,
        t.overflow.explained,
        t.overflow.first_accesses,
        t.overflow.first_explained,
        t.dropped()
    ));
    for s in misuse {
        out.push_str(&format!(
            "suspect {:?} {} {}\n",
            s.user, s.unexplained, s.distinct_patients
        ));
    }
    for (p, entries) in report_patients(world).iter().zip(reports) {
        out.push_str(&format!("report {p:?}\n"));
        for (row, lid, date, user, text) in entries {
            out.push_str(&format!("  {row} {lid:?} {date:?} {user:?} {text}\n"));
        }
    }
    out
}

/// The oracle's transcript at one epoch.
fn oracle_transcript(world: &AuditWorld, epoch: &Epoch) -> String {
    let spec = &world.spec;
    let per_query = world
        .suite()
        .iter()
        .map(|q| {
            (
                epoch
                    .engine()
                    .support(epoch.db(), q, EvalOptions::default())
                    .expect("suite evaluates"),
                epoch
                    .engine()
                    .explained_rows(epoch.db(), q, EvalOptions::default())
                    .expect("suite evaluates"),
            )
        })
        .collect();
    let unexplained = world.explainer.unexplained_rows_at(spec, epoch);
    let templates: Vec<_> = world.explainer.templates().iter().collect();
    let confusion = metrics::evaluate_at(spec, &templates, None, None, epoch);
    let t = timeline::daily_stats_at(
        spec,
        &world.hospital.log_cols,
        &world.explainer,
        world.hospital.config.days,
        epoch,
    );
    let misuse = portal::misuse_summary_at(spec, &world.explainer, epoch);
    let reports: Vec<PatientReport> = report_patients(world)
        .iter()
        .map(|&p| {
            portal::patient_report(
                epoch.db(),
                spec,
                &world.hospital.log_cols,
                &world.explainer,
                p,
            )
            .expect("report evaluates")
            .into_iter()
            .map(|e| (e.row, e.lid, e.date, e.user, e.display_text().to_string()))
            .collect()
        })
        .collect();
    render(
        world,
        epoch.seq(),
        epoch.db().table(spec.table).len(),
        per_query,
        unexplained,
        &confusion,
        &t,
        &misuse,
        &reports,
    )
}

/// The scatter-gather transcript at one epoch vector. Row ids are global,
/// so a correct implementation renders byte-identically to the oracle.
fn sharded_transcript(world: &AuditWorld, epochs: &EpochVec) -> String {
    let spec = &world.spec;
    let per_query = world
        .suite()
        .iter()
        .map(|q| {
            (
                epochs
                    .support(q, EvalOptions::default())
                    .expect("suite evaluates"),
                epochs
                    .explained_rows(q, EvalOptions::default())
                    .expect("suite evaluates"),
            )
        })
        .collect();
    let unexplained = world.explainer.unexplained_rows_at_shards(spec, epochs);
    let templates: Vec<_> = world.explainer.templates().iter().collect();
    let confusion = metrics::evaluate_at_shards(spec, &templates, None, None, epochs);
    let t = timeline::daily_stats_at_shards(
        spec,
        &world.hospital.log_cols,
        &world.explainer,
        world.hospital.config.days,
        epochs,
    );
    let misuse = portal::misuse_summary_at_shards(spec, &world.explainer, epochs);
    let reports: Vec<PatientReport> = report_patients(world)
        .iter()
        .map(|&p| {
            portal::patient_report_at_shards(
                spec,
                &world.hospital.log_cols,
                &world.explainer,
                p,
                epochs,
            )
            .expect("report evaluates")
            .into_iter()
            .map(|e| (e.row, e.lid, e.date, e.user, e.display_text().to_string()))
            .collect()
        })
        .collect();
    render(
        world,
        epochs.seq(),
        epochs.global_log_len(),
        per_query,
        unexplained,
        &confusion,
        &t,
        &misuse,
        &reports,
    )
}

/// Ingests `rows` (already valid against the oracle's database, strings
/// re-interned through the batch so shard pools stay aligned) into the
/// sharded engine.
fn ingest_rows(sharded: &ShardedEngine, source: &Database, rows: &[Vec<Value>]) {
    sharded.ingest(|batch| {
        for row in rows {
            let mapped: Vec<Value> = row
                .iter()
                .map(|v| match v {
                    Value::Str(s) => batch.str_value(source.pool().resolve(*s)),
                    other => *other,
                })
                .collect();
            batch.insert_log(mapped).expect("valid log row");
        }
    });
}

/// Drives the oracle and one sharded engine through the same batch
/// sequence, comparing transcripts at every epoch and re-checking every
/// pinned vector at the end (the mid-ingest pinning guarantee).
fn run_differential(world: &AuditWorld, n_shards: usize, batches: &[(usize, u64)]) {
    let oracle = SharedEngine::new(world.hospital.db.clone());
    let sharded = ShardedEngine::new(world.hospital.db.clone(), key(world), n_shards);

    let mut pinned: Vec<(std::sync::Arc<EpochVec>, String)> = Vec::new();
    let expect = oracle_transcript(world, &oracle.load());
    assert_eq!(
        sharded_transcript(world, &sharded.load()),
        expect,
        "{n_shards} shards diverged at the base epoch"
    );
    pinned.push((sharded.load(), expect));

    for (b, &(count, seed)) in batches.iter().enumerate() {
        // The oracle ingests the canonical batch; the sharded engine gets
        // the exact same rows, routed by hash.
        let before = oracle.load().db().table(world.spec.table).len();
        oracle.ingest(|db| world.inject_batch(db, count, seed));
        let epoch = oracle.load();
        let log = epoch.db().table(world.spec.table);
        let rows: Vec<Vec<Value>> = (before..log.len())
            .map(|r| log.row(r as u32).to_vec())
            .collect();
        ingest_rows(&sharded, epoch.db(), &rows);

        let vec = sharded.load();
        assert_eq!(vec.seq(), epoch.seq(), "batch {b}");
        assert_eq!(vec.global_log_len(), log.len(), "batch {b}");
        let expect = oracle_transcript(world, &epoch);
        assert_eq!(
            sharded_transcript(world, &vec),
            expect,
            "{n_shards} shards diverged after batch {b} ({count} rows)"
        );
        pinned.push((vec, expect));
    }

    // Every vector pinned mid-run still answers byte-identically — later
    // publications must not have touched a pinned shard epoch.
    for (i, (vec, expect)) in pinned.iter().enumerate() {
        assert_eq!(
            &sharded_transcript(world, vec),
            expect,
            "{n_shards} shards: the vector pinned at epoch {i} drifted"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline differential: random ingest sequences (sizes include
    /// 0 — an empty publication), every epoch and every mid-run pin
    /// byte-identical to the oracle at shard counts 1, 2, and 4.
    #[test]
    fn sharded_engine_matches_the_oracle_byte_for_byte(
        batches in prop::collection::vec((0usize..18, 0u64..1000), 1..4)
    ) {
        let world = AuditWorld::tiny(41);
        for n_shards in [1usize, 2, 4] {
            run_differential(&world, n_shards, &batches);
        }
    }
}

/// Shard count 1 is *the* single engine: same epochs, same answers, no
/// special-casing anywhere on the read path.
#[test]
fn one_shard_is_the_single_engine() {
    let world = AuditWorld::tiny(43);
    run_differential(&world, 1, &[(12, 7), (0, 8), (5, 9)]);
    let sharded = ShardedEngine::new(world.hospital.db.clone(), key(&world), 1);
    let vec = sharded.load();
    assert_eq!(vec.shard_count(), 1);
    assert_eq!(vec.shards()[0].log_len(), vec.global_log_len());
    // Global ids and local ids coincide.
    for g in [0u32, 1, (vec.global_log_len() - 1) as u32] {
        assert_eq!(vec.locate(g), Some((0, g)));
    }
}

/// Skew torture: every ingested row names the same patient, so one shard
/// takes the whole stream while the others idle — answers still match.
#[test]
fn all_new_rows_in_one_shard_still_match_the_oracle() {
    let world = AuditWorld::tiny(47);
    let oracle = SharedEngine::new(world.hospital.db.clone());
    let sharded = ShardedEngine::new(world.hospital.db.clone(), key(&world), 4);
    let patient = world.patients[0];
    let shard_counts_before: Vec<usize> = sharded
        .load()
        .shards()
        .iter()
        .map(|s| s.log_len())
        .collect();
    let target = {
        let vec = sharded.load();
        vec.shard_of_value(&patient)
    };

    for round in 0..3u64 {
        let before = oracle.load().db().table(world.spec.table).len();
        oracle.ingest(|db| {
            // Hand-rolled skewed batch: distinct lids, one patient.
            let cols = &world.hospital.log_cols;
            let arity = db.table(world.spec.table).schema().arity();
            for i in 0..10u64 {
                let mut row = vec![Value::Null; arity];
                row[cols.lid] = Value::Int(1_000_000 + (round * 100 + i) as i64);
                row[cols.user] = world.users[(i as usize) % world.users.len()];
                row[cols.patient] = patient;
                row[cols.date] = Value::Date((1 + round as i64) * 24 * 60);
                db.insert(world.spec.table, row).expect("valid row");
            }
        });
        let epoch = oracle.load();
        let log = epoch.db().table(world.spec.table);
        let rows: Vec<Vec<Value>> = (before..log.len())
            .map(|r| log.row(r as u32).to_vec())
            .collect();
        ingest_rows(&sharded, epoch.db(), &rows);

        let vec = sharded.load();
        // All 30-so-far new rows landed on the patient's shard; every
        // other shard is exactly its base size.
        for (s, shard) in vec.shards().iter().enumerate() {
            let expected = shard_counts_before[s]
                + if s == target {
                    10 * (round as usize + 1)
                } else {
                    0
                };
            assert_eq!(shard.log_len(), expected, "shard {s} after round {round}");
        }
        assert_eq!(
            sharded_transcript(&world, &vec),
            oracle_transcript(&world, &epoch),
            "skewed round {round} diverged"
        );
    }
}

/// Structurally empty shards (more shards than occupied hash buckets)
/// scatter-gather cleanly: the empty shard contributes nothing and the
/// merged answers still match the oracle.
#[test]
fn empty_shards_answer_like_the_oracle() {
    let world = AuditWorld::tiny(53);
    // Find a shard count that leaves at least one shard empty for this
    // seed (guaranteed to exist once n exceeds the distinct patient
    // count; found much earlier in practice).
    let mut chosen = None;
    for n in 2..=128usize {
        let sharded = ShardedEngine::new(world.hospital.db.clone(), key(&world), n);
        if sharded.load().shards().iter().any(|s| s.log_len() == 0) {
            chosen = Some((n, sharded));
            break;
        }
    }
    let (n, sharded) = chosen.expect("some shard count yields an empty shard");
    let oracle = SharedEngine::new(world.hospital.db.clone());
    assert_eq!(
        sharded_transcript(&world, &sharded.load()),
        oracle_transcript(&world, &oracle.load()),
        "{n} shards (with an empty shard) diverged at the base epoch"
    );

    // Ingest through the empty-shard layout and re-verify.
    let before = oracle.load().db().table(world.spec.table).len();
    oracle.ingest(|db| world.inject_batch(db, 20, 0xE0));
    let epoch = oracle.load();
    let log = epoch.db().table(world.spec.table);
    let rows: Vec<Vec<Value>> = (before..log.len())
        .map(|r| log.row(r as u32).to_vec())
        .collect();
    ingest_rows(&sharded, epoch.db(), &rows);
    assert_eq!(
        sharded_transcript(&world, &sharded.load()),
        oracle_transcript(&world, &epoch),
        "{n} shards (with an empty shard) diverged after ingest"
    );
}

/// The concurrency guarantee at the vector level: reader threads pin
/// epoch vectors and re-render them while a writer publishes — pinned
/// transcripts must be byte-stable, fresh loads must always see a fully
/// published vector (seq, global length, and per-shard lengths agree).
#[test]
fn pinned_vectors_are_byte_stable_under_concurrent_ingest() {
    let world = AuditWorld::tiny(59);
    let n_shards = common::test_shards().max(2);
    let sharded = ShardedEngine::new(world.hospital.db.clone(), key(&world), n_shards);
    let oracle = SharedEngine::new(world.hospital.db.clone());
    let rounds = 4u64;
    let per_batch = 15usize;
    let base_len = world.hospital.log_len();

    // Pre-compute each epoch's oracle transcript so readers can check
    // whatever seq they observe without racing the oracle itself.
    let mut oracle_by_seq = vec![oracle_transcript(&world, &oracle.load())];
    let mut batches: Vec<Vec<Vec<Value>>> = Vec::new();
    for round in 0..rounds {
        let before = oracle.load().db().table(world.spec.table).len();
        oracle.ingest(|db| world.inject_batch(db, per_batch, 0xC0 + round));
        let epoch = oracle.load();
        let log = epoch.db().table(world.spec.table);
        batches.push(
            (before..log.len())
                .map(|r| log.row(r as u32).to_vec())
                .collect(),
        );
        oracle_by_seq.push(oracle_transcript(&world, &epoch));
    }
    let source = oracle.load();

    common::readers_vs_writer(
        3,
        |i, done| {
            let pinned = sharded.load();
            let first = sharded_transcript(&world, &pinned);
            assert_eq!(first, oracle_by_seq[pinned.seq() as usize]);
            common::reader_loop(done, |iter| {
                // The pin never drifts...
                assert_eq!(
                    sharded_transcript(&world, &pinned),
                    first,
                    "reader {i}: pinned vector drifted at iteration {iter}"
                );
                // ...and every fresh load is a complete publication whose
                // transcript matches the oracle at the same seq.
                let vec = sharded.load();
                let seq = vec.seq() as usize;
                assert_eq!(
                    vec.global_log_len(),
                    base_len + seq * per_batch,
                    "torn vector: seq and length disagree"
                );
                assert_eq!(
                    vec.shards().iter().map(|s| s.log_len()).sum::<usize>(),
                    vec.global_log_len(),
                    "torn vector: shard lengths disagree with the total"
                );
                assert_eq!(
                    sharded_transcript(&world, &vec),
                    oracle_by_seq[seq],
                    "reader {i}: live vector diverged from the oracle at seq {seq}"
                );
            });
        },
        || {
            for rows in &batches {
                ingest_rows(&sharded, source.db(), rows);
            }
        },
    );
    assert_eq!(sharded.seq(), rounds);
    assert_eq!(
        sharded_transcript(&world, &sharded.load()),
        oracle_by_seq[rounds as usize]
    );
}
