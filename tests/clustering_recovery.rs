//! Does §4's pipeline recover the planted collaborative structure?
//!
//! The synthetic world plants ground-truth care teams (doctors + nurses +
//! rotating students who co-access the same patients). These tests measure
//! how well the inferred groups align with the plants — the synthetic
//! analogue of the paper's manual inspection of the Cancer Center and
//! Psychiatry groups.

use eba::audit::groups::collaborative_groups;
use eba::audit::split;
use eba::cluster::HierarchyConfig;
use eba::core::LogSpec;
use eba::synth::{Hospital, Role, SynthConfig};

struct Setup {
    hospital: Hospital,
    model: eba::audit::GroupsModel,
}

fn setup() -> Setup {
    let hospital = Hospital::generate(SynthConfig::small());
    let spec = LogSpec::conventional(&hospital.db).unwrap();
    let train = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
    let model =
        collaborative_groups(&hospital.db, &train, HierarchyConfig::default(), 500).unwrap();
    Setup { hospital, model }
}

/// Pairwise co-membership precision/recall of the inferred depth-`d`
/// groups against the planted teams (clinical staff only).
fn pair_scores(s: &Setup, depth: usize) -> (f64, f64) {
    let h = &s.hospital;
    let clinical: Vec<usize> = h
        .world
        .users
        .iter()
        .filter(|u| matches!(u.role, Role::Doctor | Role::Nurse))
        .map(|u| u.index)
        .collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (i, &a) in clinical.iter().enumerate() {
        for &b in clinical.iter().skip(i + 1) {
            let same_team = h.world.users[a].team == h.world.users[b].team;
            let ga = s.model.group_of(h.user_value(a), depth);
            let gb = s.model.group_of(h.user_value(b), depth);
            let same_group = ga.is_some() && ga == gb;
            match (same_team, same_group) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    (precision, recall)
}

#[test]
fn inferred_groups_align_with_planted_teams() {
    let s = setup();
    let (precision, recall) = pair_scores(&s, 1);
    assert!(
        precision > 0.5,
        "pairwise precision {precision:.2} too low at depth 1"
    );
    assert!(
        recall > 0.5,
        "pairwise recall {recall:.2} too low at depth 1"
    );
}

#[test]
fn deeper_levels_are_purer() {
    let s = setup();
    let deepest = s.model.hierarchy.depth_count() - 1;
    if deepest <= 1 {
        return; // hierarchy did not refine further on this data
    }
    let (p1, _) = pair_scores(&s, 1);
    let (pd, _) = pair_scores(&s, deepest);
    assert!(
        pd >= p1 - 0.05,
        "precision should not degrade with depth: {p1:.2} → {pd:.2}"
    );
}

#[test]
fn doctors_and_nurses_of_a_team_share_groups_despite_department_codes() {
    // The paper's key observation: Pediatrics physicians and
    // Nursing-Pediatrics carry different department codes but belong to
    // the same collaborative group.
    let s = setup();
    let h = &s.hospital;
    let mut cross_code_together = 0usize;
    let mut cross_code_total = 0usize;
    for team in &h.world.teams {
        for &d in &team.doctors {
            for &n in &team.nurses {
                cross_code_total += 1;
                let gd = s.model.group_of(h.user_value(d), 1);
                let gn = s.model.group_of(h.user_value(n), 1);
                if gd.is_some() && gd == gn {
                    cross_code_together += 1;
                }
            }
        }
    }
    let frac = cross_code_together as f64 / cross_code_total.max(1) as f64;
    assert!(
        frac > 0.5,
        "only {frac:.2} of doctor-nurse pairs share a group"
    );
}

#[test]
fn rotating_students_cluster_with_their_team_not_each_other() {
    // "It would be incorrect to consider all medical students as their own
    // collaborative group" — students should land with their rotation team.
    let s = setup();
    let h = &s.hospital;
    let students: Vec<usize> = h
        .world
        .users
        .iter()
        .filter(|u| u.role == Role::MedStudent)
        .map(|u| u.index)
        .collect();
    if students.len() < 2 {
        return;
    }
    let mut with_team = 0usize;
    let mut measured = 0usize;
    for &st in &students {
        let Some(team_idx) = h.world.users[st].team else {
            continue;
        };
        let team = &h.world.teams[team_idx];
        let gs = s.model.group_of(h.user_value(st), 1);
        if gs.is_none() {
            continue;
        }
        measured += 1;
        let teammates_same = team
            .doctors
            .iter()
            .chain(&team.nurses)
            .filter(|&&m| s.model.group_of(h.user_value(m), 1) == gs)
            .count();
        if teammates_same * 2 >= team.doctors.len() + team.nurses.len() {
            with_team += 1;
        }
    }
    assert!(
        with_team * 2 >= measured.max(1),
        "only {with_team}/{measured} students clustered with their rotation team"
    );
}

#[test]
fn group_training_is_deterministic() {
    let a = setup();
    let b = setup();
    assert_eq!(
        a.model.hierarchy.assignment(1),
        b.model.hierarchy.assignment(1)
    );
}
