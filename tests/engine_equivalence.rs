//! Differential equivalence: the interned/cached/parallel [`Engine`] must
//! return **byte-identical** `explained_rows` and `support` to the
//! reference row evaluator ([`ChainQuery`]) for every query class —
//! undecorated closed chains, open partial paths, constant-decorated and
//! anchor-decorated chains, and anchor-filtered specs — on randomized
//! databases, and mining must produce the same template set with the
//! engine on and off.
//!
//! The same guarantee covers the engine-backed **audit layer**
//! ([`Explainer::explained_rows_with`] and friends) and survives
//! **incremental appends**: a warm engine brought up to date with
//! [`Engine::refresh`] must keep matching both the per-query path and a
//! freshly-built engine as the database grows.

use eba::audit::handcrafted::{same_group, EventTable, HandcraftedTemplates};
use eba::audit::{metrics, portal, timeline, Explainer};
use eba::core::mining::{mine_one_way, mine_two_way, refine, DecorationCandidate};
use eba::core::{LogSpec, MiningConfig};
use eba::relational::{
    ChainQuery, ChainStep, CmpOp, DataType, Database, Engine, EvalOptions, RefreshError,
    SharedEngine, TableId, Value,
};
use eba::synth::{Hospital, SynthConfig};
use proptest::prelude::*;

mod common;

/// Asserts the engine and the row evaluator agree exactly on one query,
/// under both dedup settings.
fn assert_equivalent(db: &Database, engine: &Engine, q: &ChainQuery, what: &str) {
    for dedup in [true, false] {
        let opts = EvalOptions { dedup };
        let reference = q.explained_rows(db, opts).unwrap();
        let via_engine = engine.explained_rows(db, q, opts).unwrap();
        assert_eq!(
            via_engine, reference,
            "{what}: explained_rows (dedup={dedup})"
        );
        let s_ref = q.support(db, opts).unwrap();
        let s_eng = engine.support(db, q, opts).unwrap();
        assert_eq!(s_eng, s_ref, "{what}: support (dedup={dedup})");
    }
}

/// Every query the synthetic hospital exercises: handcrafted closed
/// templates (incl. the anchor-decorated repeat-access and the
/// constant-decorated group templates), open event predicates, and mined
/// templates.
fn hospital_queries(db: &Database, spec: &LogSpec) -> Vec<(String, ChainQuery)> {
    let mut queries: Vec<(String, ChainQuery)> = Vec::new();
    let handcrafted = HandcraftedTemplates::build(db, spec).unwrap();
    for t in handcrafted.all() {
        queries.push((
            format!("handcrafted len {}", t.length()),
            t.path.to_chain_query(spec),
        ));
    }
    if let Ok(grouped) = same_group(db, spec, EventTable::Appointments, Some(1)) {
        queries.push((
            "same_group depth 1".into(),
            grouped.path.to_chain_query(spec),
        ));
    }
    for (name, path) in eba::audit::handcrafted::event_predicates(db, spec).unwrap() {
        queries.push((format!("open predicate {name}"), path.to_chain_query(spec)));
    }
    let mined = mine_one_way(
        db,
        spec,
        &MiningConfig {
            support_frac: 0.05,
            max_length: 4,
            max_tables: 3,
            ..MiningConfig::default()
        },
    );
    for t in &mined.templates {
        queries.push((
            format!("mined {}", t.key.as_str()),
            t.path.to_chain_query(spec),
        ));
    }
    queries
}

#[test]
fn engine_matches_row_evaluator_on_synthetic_hospitals() {
    for seed in [1u64, 7, 42] {
        let config = SynthConfig {
            seed,
            ..SynthConfig::tiny()
        };
        let h = Hospital::generate(config);
        let spec = LogSpec::conventional(&h.db).unwrap();
        let engine = Engine::new(&h.db);
        for (what, q) in hospital_queries(&h.db, &spec) {
            assert_equivalent(&h.db, &engine, &q, &format!("seed {seed}: {what}"));
        }
    }
}

#[test]
fn engine_matches_under_anchor_filters() {
    let h = Hospital::generate(SynthConfig::tiny());
    let spec = LogSpec::conventional(&h.db).unwrap();
    let date_col = h.db.table(spec.table).schema().col("Date").unwrap();
    // Mine on the first half of the window only.
    let filtered = spec.with_filters(vec![(date_col, CmpOp::Le, Value::Date(4 * 24 * 60))]);
    let engine = Engine::new(&h.db);
    for (what, q) in hospital_queries(&h.db, &filtered) {
        assert_equivalent(&h.db, &engine, &q, &format!("filtered: {what}"));
    }
}

#[test]
fn batch_evaluation_matches_one_by_one() {
    let h = Hospital::generate(SynthConfig::tiny());
    let spec = LogSpec::conventional(&h.db).unwrap();
    let engine = Engine::new(&h.db);
    let queries: Vec<ChainQuery> = hospital_queries(&h.db, &spec)
        .into_iter()
        .map(|(_, q)| q)
        .collect();
    let opts = EvalOptions::default();
    let batch = engine.support_many(&h.db, &queries, opts);
    for (q, got) in queries.iter().zip(batch) {
        assert_eq!(got.unwrap(), q.support(&h.db, opts).unwrap());
    }
}

#[test]
fn engine_backed_audit_layer_matches_per_query_path() {
    for seed in [3u64, 11] {
        let config = SynthConfig {
            seed,
            ..SynthConfig::tiny()
        };
        let h = Hospital::generate(config);
        let spec = LogSpec::conventional(&h.db).unwrap();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let explainer = Explainer::new(t.all().into_iter().cloned().collect());
        let engine = Engine::new(&h.db);
        assert_eq!(
            explainer.explained_rows_with(&h.db, &spec, &engine),
            explainer.explained_rows(&h.db, &spec),
            "seed {seed}: explained sets"
        );
        assert_eq!(
            explainer.unexplained_rows_with(&h.db, &spec, &engine),
            explainer.unexplained_rows(&h.db, &spec),
            "seed {seed}: unexplained sets"
        );
        let suite = t.all();
        assert_eq!(
            metrics::explained_union_with(&h.db, &spec, &suite, &engine),
            metrics::explained_union(&h.db, &spec, &suite),
            "seed {seed}: metrics union"
        );
        assert_eq!(
            metrics::evaluate_with(&h.db, &spec, &suite, None, None, &engine),
            metrics::evaluate(&h.db, &spec, &suite, None, None),
            "seed {seed}: confusion"
        );
        assert_eq!(
            timeline::daily_stats_with(
                &h.db,
                &spec,
                &h.log_cols,
                &explainer,
                h.config.days,
                &engine
            ),
            timeline::daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days),
            "seed {seed}: timeline"
        );
        assert_eq!(
            portal::misuse_summary_with(&h.db, &spec, &explainer, &engine),
            portal::misuse_summary(&h.db, &spec, &explainer),
            "seed {seed}: misuse summary"
        );
    }
}

#[test]
fn engine_backed_audit_survives_incremental_appends() {
    let mut h = Hospital::generate(SynthConfig::tiny());
    let spec = LogSpec::conventional(&h.db).unwrap();
    let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
    let explainer = Explainer::new(t.all().into_iter().cloned().collect());
    let mut engine = Engine::new(&h.db);
    // Warm every cache the suite uses before the appends.
    let _ = explainer.explained_rows_with(&h.db, &spec, &engine);

    let users = eba::audit::fake::user_pool(&h.db);
    let patients: Vec<Value> = (0..h.world.n_patients())
        .map(|p| h.patient_value(p))
        .collect();
    for round in 0..3u64 {
        // Append a batch of log rows (fake accesses are exactly appends)
        // and, in round 1, some event rows too.
        eba::audit::fake::FakeLog::inject(
            &mut h.db,
            h.t_log,
            &h.log_cols,
            &users,
            &patients,
            25,
            h.config.days,
            0xE0_u64 + round,
        );
        if round == 1 {
            let appt = h.db.table_id("Appointments").unwrap();
            let arity = h.db.table(appt).schema().arity();
            let mut row = vec![Value::Null; arity];
            let p_col = h.db.table(appt).schema().col("Patient").unwrap();
            let d_col = h.db.table(appt).schema().col("Doctor").unwrap();
            row[p_col] = patients[0];
            row[d_col] = users[0];
            h.db.insert(appt, row).unwrap();
        }
        let stats = engine.refresh(&h.db).unwrap();
        assert!(stats.delta.new_rows > 0, "round {round}: appends seen");

        // The refreshed warm engine, a fresh engine, and the per-query
        // path must agree exactly.
        let per_query = explainer.explained_rows(&h.db, &spec);
        assert_eq!(
            explainer.explained_rows_with(&h.db, &spec, &engine),
            per_query,
            "round {round}: refreshed engine vs per-query"
        );
        let fresh = Engine::new(&h.db);
        assert_eq!(
            explainer.explained_rows_with(&h.db, &spec, &fresh),
            per_query,
            "round {round}: fresh engine vs per-query"
        );
        assert_eq!(
            explainer.unexplained_rows_with(&h.db, &spec, &engine),
            explainer.unexplained_rows(&h.db, &spec),
            "round {round}: unexplained"
        );
        // And every individual query class still matches.
        for (what, q) in hospital_queries(&h.db, &spec) {
            assert_equivalent(&h.db, &engine, &q, &format!("round {round}: {what}"));
        }
    }
}

#[test]
fn explained_rows_many_matches_one_by_one() {
    let h = Hospital::generate(SynthConfig::tiny());
    let spec = LogSpec::conventional(&h.db).unwrap();
    let engine = Engine::new(&h.db);
    let queries: Vec<ChainQuery> = hospital_queries(&h.db, &spec)
        .into_iter()
        .map(|(_, q)| q)
        .collect();
    let opts = EvalOptions::default();
    let batch = engine.explained_rows_many(&h.db, &queries, opts);
    for (q, got) in queries.iter().zip(batch) {
        assert_eq!(got.unwrap(), q.explained_rows(&h.db, opts).unwrap());
    }
}

#[test]
fn mining_is_identical_with_engine_on_and_off() {
    let h = Hospital::generate(SynthConfig::tiny());
    let spec = LogSpec::conventional(&h.db).unwrap();
    let base = MiningConfig {
        support_frac: 0.02,
        max_length: 4,
        max_tables: 3,
        ..MiningConfig::default()
    };
    let engine_off = MiningConfig {
        opt_engine: false,
        ..base.clone()
    };
    let on = mine_one_way(&h.db, &spec, &base);
    let off = mine_one_way(&h.db, &spec, &engine_off);
    assert_eq!(on.key_set(), off.key_set());
    assert_eq!(on.threshold, off.threshold);
    for (a, b) in on.templates.iter().zip(&off.templates) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.support, b.support);
    }
    // Identical support-query/cache accounting, engine or not.
    assert_eq!(on.stats.support_queries(), off.stats.support_queries());
    assert_eq!(on.stats.cache_hits(), off.stats.cache_hits());

    let two_on = mine_two_way(&h.db, &spec, &base);
    let two_off = mine_two_way(&h.db, &spec, &engine_off);
    assert_eq!(two_on.key_set(), two_off.key_set());

    // Decoration refinement picks the same pinned values and supports.
    if let Ok(candidate) = DecorationCandidate::group_depths(&h.db, 3) {
        let refined_on = refine(&h.db, &spec, &on.templates, &candidate, on.threshold, &base);
        let refined_off = refine(
            &h.db,
            &spec,
            &off.templates,
            &candidate,
            off.threshold,
            &engine_off,
        );
        assert_eq!(refined_on.len(), refined_off.len());
        for (a, b) in refined_on.iter().zip(&refined_off) {
            assert_eq!(a.base_key, b.base_key);
            assert_eq!(a.pinned, b.pinned);
            assert_eq!(a.support, b.support);
        }
    }
}

// --------------------------------------------------------------- proptest

/// A random two-hop world (same shape as `props.rs`): Log(Lid, User,
/// Patient), Event(Patient, Actor), Team(Member, Buddy), with NULLs mixed
/// in so the null-handling paths are exercised too — plus a second batch
/// of log/event rows appended later to exercise incremental refresh.
#[derive(Debug, Clone)]
struct RandomWorld {
    log_rows: Vec<(i64, i64, i64)>,
    event_rows: Vec<(i64, i64, bool)>, // bool: actor is NULL
    team_rows: Vec<(i64, i64)>,
    log_appends: Vec<(i64, i64, i64)>,
    event_appends: Vec<(i64, i64, bool)>,
}

fn random_world() -> impl Strategy<Value = RandomWorld> {
    (
        prop::collection::vec((0..40i64, 0..6i64, 0..8i64), 1..25),
        prop::collection::vec((0..8i64, 0..6i64, 0..10i64), 0..25),
        prop::collection::vec((0..6i64, 0..6i64), 0..15),
        prop::collection::vec((0..40i64, 0..9i64, 0..12i64), 0..15),
        prop::collection::vec((0..12i64, 0..9i64, 0..10i64), 0..15),
    )
        .prop_map(
            |(mut log_rows, event_rows, team_rows, mut log_appends, event_appends)| {
                for (i, r) in log_rows.iter_mut().enumerate() {
                    r.0 = i as i64;
                }
                for (i, r) in log_appends.iter_mut().enumerate() {
                    r.0 = (log_rows.len() + i) as i64;
                }
                RandomWorld {
                    log_rows,
                    event_rows: event_rows
                        .into_iter()
                        .map(|(p, a, n)| (p, a, n == 0))
                        .collect(),
                    team_rows,
                    log_appends,
                    event_appends: event_appends
                        .into_iter()
                        .map(|(p, a, n)| (p, a, n == 0))
                        .collect(),
                }
            },
        )
}

fn materialize(w: &RandomWorld) -> (Database, TableId, TableId, TableId) {
    let mut db = Database::new();
    let log = db
        .create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
    let event = db
        .create_table(
            "Event",
            &[("Patient", DataType::Int), ("Actor", DataType::Int)],
        )
        .unwrap();
    let team = db
        .create_table(
            "Team",
            &[("Member", DataType::Int), ("Buddy", DataType::Int)],
        )
        .unwrap();
    for &(lid, user, patient) in &w.log_rows {
        db.insert(
            log,
            vec![Value::Int(lid), Value::Int(user), Value::Int(patient)],
        )
        .unwrap();
    }
    for &(p, a, null_actor) in &w.event_rows {
        let actor = if null_actor {
            Value::Null
        } else {
            Value::Int(a)
        };
        db.insert(event, vec![Value::Int(p), actor]).unwrap();
    }
    for &(m, b) in &w.team_rows {
        db.insert(team, vec![Value::Int(m), Value::Int(b)]).unwrap();
    }
    (db, log, event, team)
}

/// The query classes every random-world property exercises: undecorated
/// closed/open chains, two-hop, anchor-filtered, constant-decorated, and
/// anchor-dependent decorated.
fn random_world_query_classes(
    log: TableId,
    event: TableId,
    team: TableId,
) -> Vec<(&'static str, ChainQuery)> {
    let one_hop = ChainQuery {
        log,
        lid_col: 0,
        start_col: 2,
        steps: vec![ChainStep::new(event, 0, 1)],
        close_col: Some(1),
        anchor_filters: vec![],
    };
    let open = ChainQuery {
        close_col: None,
        ..one_hop.clone()
    };
    let two_hop = ChainQuery {
        log,
        lid_col: 0,
        start_col: 2,
        steps: vec![ChainStep::new(event, 0, 1), ChainStep::new(team, 0, 1)],
        close_col: Some(1),
        anchor_filters: vec![],
    };
    let filtered = ChainQuery {
        anchor_filters: vec![(1, CmpOp::Ge, Value::Int(3))],
        ..one_hop.clone()
    };
    let decorated = {
        let mut q = one_hop.clone();
        q.steps[0].filters.push(eba::relational::StepFilter {
            col: 1,
            op: CmpOp::Lt,
            rhs: eba::relational::Rhs::Const(Value::Int(3)),
        });
        q
    };
    let anchor_dep = {
        let mut q = one_hop.clone();
        q.steps[0].filters.push(eba::relational::StepFilter {
            col: 1,
            op: CmpOp::Le,
            rhs: eba::relational::Rhs::AnchorCol(1),
        });
        q
    };
    vec![
        ("one_hop", one_hop),
        ("open", open),
        ("two_hop", two_hop),
        ("filtered", filtered),
        ("decorated", decorated),
        ("anchor_dep", anchor_dep),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engine_matches_on_random_worlds(w in random_world()) {
        let (db, log, event, team) = materialize(&w);
        let engine = Engine::new(&db);
        let queries = random_world_query_classes(log, event, team);
        for (what, q) in &queries {
            for dedup in [true, false] {
                let opts = EvalOptions { dedup };
                prop_assert_eq!(
                    engine.explained_rows(&db, q, opts).unwrap(),
                    q.explained_rows(&db, opts).unwrap(),
                    "{} (dedup={})", what, dedup
                );
                prop_assert_eq!(
                    engine.support(&db, q, opts).unwrap(),
                    q.support(&db, opts).unwrap(),
                    "{} (dedup={})", what, dedup
                );
            }
        }

        // Append the second batch and refresh: the warm engine must keep
        // matching the row evaluator on the grown database.
        let mut db = db;
        let mut engine = engine;
        for &(lid, user, patient) in &w.log_appends {
            db.insert(
                log,
                vec![Value::Int(lid), Value::Int(user), Value::Int(patient)],
            )
            .unwrap();
        }
        for &(p, a, null_actor) in &w.event_appends {
            let actor = if null_actor {
                Value::Null
            } else {
                Value::Int(a)
            };
            db.insert(event, vec![Value::Int(p), actor]).unwrap();
        }
        engine.refresh(&db).unwrap();
        for (what, q) in &queries {
            for dedup in [true, false] {
                let opts = EvalOptions { dedup };
                prop_assert_eq!(
                    engine.explained_rows(&db, q, opts).unwrap(),
                    q.explained_rows(&db, opts).unwrap(),
                    "after refresh: {} (dedup={})", what, dedup
                );
                prop_assert_eq!(
                    engine.support(&db, q, opts).unwrap(),
                    q.support(&db, opts).unwrap(),
                    "after refresh: {} (dedup={})", what, dedup
                );
            }
        }
    }

    /// Satellite property (PR 4): `RefreshError`'s **read-only pre-pass**
    /// invariant. A refused refresh — `TableShrank` from refreshing
    /// against a database with fewer rows, `CatalogShrank` against one
    /// with fewer tables — must leave the engine answering *identically*
    /// to before the failed call, for every query class, and a subsequent
    /// refresh against the right database must still succeed.
    #[test]
    fn failed_refresh_prepass_leaves_the_engine_intact(w in random_world()) {
        let (db, log, event, team) = materialize(&w);
        // Grow a copy: the generated appends plus one guaranteed row, so
        // the original is always strictly shorter.
        let mut grown = db.clone();
        for &(lid, user, patient) in &w.log_appends {
            grown
                .insert(log, vec![Value::Int(lid), Value::Int(user), Value::Int(patient)])
                .unwrap();
        }
        grown
            .insert(log, vec![Value::Int(1_000_000), Value::Int(0), Value::Int(0)])
            .unwrap();
        let queries = random_world_query_classes(log, event, team);
        let opts = EvalOptions::default();
        let answers = |engine: &Engine, db: &Database| -> Vec<(Vec<_>, usize)> {
            queries
                .iter()
                .map(|(_, q)| {
                    (
                        engine.explained_rows(db, q, opts).unwrap(),
                        engine.support(db, q, opts).unwrap(),
                    )
                })
                .collect()
        };

        // TableShrank: a warm engine over the grown database refuses to
        // refresh against the shorter original...
        let mut engine = Engine::new(&grown);
        let before = answers(&engine, &grown);
        let err = engine.refresh(&db).unwrap_err();
        prop_assert!(matches!(err, RefreshError::TableShrank { .. }), "{:?}", err);
        // ...and keeps answering exactly as before the failed call.
        prop_assert_eq!(&answers(&engine, &grown), &before, "TableShrank left damage");
        // A refresh against the right database still works afterwards.
        prop_assert!(engine.refresh(&grown).unwrap().delta.is_empty());
        prop_assert_eq!(&answers(&engine, &grown), &before, "no-op refresh changed answers");

        // CatalogShrank: an engine over a database with one extra table
        // refuses to refresh against one without it — same invariant.
        let mut wider = grown.clone();
        let extra = wider
            .create_table("Extra", &[("Patient", DataType::Int), ("Y", DataType::Int)])
            .unwrap();
        wider.insert(extra, vec![Value::Int(1), Value::Int(2)]).unwrap();
        let mut engine = Engine::new(&wider);
        let before = answers(&engine, &wider);
        let err = engine.refresh(&grown).unwrap_err();
        prop_assert!(matches!(err, RefreshError::CatalogShrank { .. }), "{:?}", err);
        prop_assert_eq!(&answers(&engine, &wider), &before, "CatalogShrank left damage");
        prop_assert!(engine.refresh(&wider).unwrap().delta.is_empty());
    }
}

// ------------------------------------------------ concurrent snapshot handoff

/// The tentpole guarantee: N reader threads query a [`SharedEngine`] while
/// the writer appends + publishes. Every answer a reader observes must be
/// exactly the answer of *some published epoch* — enforced by (a) epochs
/// being internally consistent (engine result == row-evaluator result over
/// the epoch's own frozen database), (b) sequence numbers moving only
/// forward per reader, and (c) all observers agreeing on each epoch's
/// contents (same seq ⇒ same log length).
#[test]
fn shared_engine_readers_always_observe_a_published_epoch() {
    let world = common::AuditWorld::tiny(SynthConfig::tiny().seed);
    let spec = &world.spec;
    let suite = world.suite();
    // Seal the seed data so the initial epoch already owns sealed
    // (Arc-shared) row segments — the segment-sharing assertions below
    // then cover real sharing, not empty prefixes.
    let shared = SharedEngine::new({
        let mut db = world.hospital.db.clone();
        db.seal();
        db
    });
    let rounds = 4u64;
    let epochs = common::EpochLog::new();
    // Pin down the initial epoch before any thread runs: under a loaded
    // scheduler the writer can publish seq 1 before a reader's first
    // load, and seq 0 would otherwise go unobserved.
    epochs.observe(0, shared.load().db().table(spec.table).len());
    // A pinned session: its epoch must answer byte-identically for the
    // whole run even though every newer epoch shares its sealed
    // segments (catches in-place mutation of a shared chunk).
    let pinned = shared.load();
    let pinned_answers: Vec<Vec<eba::relational::RowId>> = suite
        .iter()
        .map(|q| {
            pinned
                .engine()
                .explained_rows(pinned.db(), q, EvalOptions::default())
                .unwrap()
        })
        .collect();
    assert!(
        !pinned
            .db()
            .table(spec.table)
            .sealed_row_segments()
            .is_empty(),
        "sealed seed data spans at least one segment"
    );

    common::readers_vs_writer(
        3,
        |_, done| {
            let mut last_seq = 0u64;
            common::reader_loop(done, |checked| {
                let epoch = shared.load();
                assert!(epoch.seq() >= last_seq, "epoch went backwards");
                last_seq = epoch.seq();
                epochs.observe(epoch.seq(), epoch.db().table(spec.table).len());
                // The answer must be the published epoch's answer: the
                // engine agrees with the reference row evaluator over
                // the epoch's own frozen database, for the whole suite.
                let q = &suite[checked % suite.len()];
                assert_eq!(
                    epoch
                        .engine()
                        .explained_rows(epoch.db(), q, EvalOptions::default())
                        .unwrap(),
                    q.explained_rows(epoch.db(), EvalOptions::default())
                        .unwrap(),
                    "epoch {} inconsistent",
                    epoch.seq()
                );
                // Segmented storage: the current epoch shares the pinned
                // epoch's sealed log segments by pointer...
                common::assert_sealed_segments_shared(
                    pinned.db().table(spec.table),
                    epoch.db().table(spec.table),
                    "pinned epoch vs current",
                );
                // ...and the pinned epoch's answers stay byte-stable.
                assert_eq!(
                    pinned
                        .engine()
                        .explained_rows(pinned.db(), q, EvalOptions::default())
                        .unwrap(),
                    pinned_answers[checked % suite.len()],
                    "pinned epoch answer drifted under concurrent ingests"
                );
            });
        },
        || {
            for round in 0..rounds {
                let (_, report) = shared.ingest(|db| {
                    world.inject_batch(db, 25, 0xF00 + round);
                });
                assert_eq!(report.seq, round + 1);
                assert!(report.rebuilt.is_none());
                epochs.observe(report.seq, shared.load().db().table(spec.table).len());
            }
        },
    );

    // Every published epoch was observed with a strictly growing log.
    epochs.assert_log_grew_each_epoch(rounds);
    // And the final epoch matches the per-query path on its own database.
    let last = shared.load();
    assert_eq!(last.seq(), rounds);
    assert_eq!(
        world.explainer.explained_rows_at(spec, &last),
        world.explainer.explained_rows(last.db(), spec)
    );
}

/// Regression (mutex-poison death spiral): a deliberately panicking query
/// must not poison the engine — the same warm session keeps returning
/// exact answers afterwards, on both the one-shot and the batch path.
#[test]
fn panicking_query_leaves_the_session_answering() {
    let mut h = Hospital::generate(SynthConfig::tiny());
    let spec = LogSpec::conventional(&h.db).unwrap();
    let engine = Engine::new(&h.db);
    let queries = hospital_queries(&h.db, &spec);
    let opts = EvalOptions::default();
    // Warm the session.
    for (_, q) in &queries {
        let _ = engine.explained_rows(&h.db, q, opts).unwrap();
    }
    // A query over a table the engine's snapshot has never seen panics
    // (stale-snapshot misuse). It must not take the session down.
    let extra =
        h.db.create_table(
            "PanicBait",
            &[("Patient", DataType::Int), ("X", DataType::Int)],
        )
        .unwrap();
    h.db.insert(extra, vec![Value::Int(1), Value::Int(2)])
        .unwrap();
    let stale = ChainQuery {
        log: spec.table,
        lid_col: spec.lid_col,
        start_col: spec.patient_col,
        steps: vec![ChainStep::new(extra, 0, 1)],
        close_col: None,
        anchor_filters: vec![],
    };
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.explained_rows(&h.db, &stale, opts)
    }));
    assert!(caught.is_err(), "stale-snapshot query panics");

    // Every query class still answers exactly — no poisoned locks, no
    // torn scratch state.
    for (what, q) in &queries {
        assert_equivalent(&h.db, &engine, q, &format!("after panic: {what}"));
    }
    let batch: Vec<ChainQuery> = queries.iter().map(|(_, q)| q.clone()).collect();
    for (q, got) in batch.iter().zip(engine.support_many(&h.db, &batch, opts)) {
        assert_eq!(got.unwrap(), q.support(&h.db, opts).unwrap());
    }
}

/// Regression (abort-on-shrink): refreshing against a database where a
/// table shrank returns a typed error instead of taking the process down,
/// and the engine keeps answering from its intact snapshot.
#[test]
fn refresh_against_shrunk_database_is_an_error_not_an_abort() {
    let h = Hospital::generate(SynthConfig::tiny());
    let spec = LogSpec::conventional(&h.db).unwrap();
    // Engine over a grown copy; refreshing against the shorter original
    // is exactly the "wrong database" misuse.
    let mut grown = h.db.clone();
    let users = eba::audit::fake::user_pool(&grown);
    let patients: Vec<Value> = (0..h.world.n_patients())
        .map(|p| h.patient_value(p))
        .collect();
    eba::audit::fake::FakeLog::inject(
        &mut grown,
        h.t_log,
        &h.log_cols,
        &users,
        &patients,
        10,
        h.config.days,
        7,
    );
    let mut engine = Engine::new(&grown);
    let q = hospital_queries(&grown, &spec).remove(0).1;
    let expected = engine
        .explained_rows(&grown, &q, EvalOptions::default())
        .unwrap();
    let err = engine.refresh(&h.db).unwrap_err();
    assert!(matches!(err, RefreshError::TableShrank { .. }));
    assert_eq!(
        engine
            .explained_rows(&grown, &q, EvalOptions::default())
            .unwrap(),
        expected,
        "engine unchanged after refused refresh"
    );
    // And a refresh against the right database still works afterwards.
    assert!(engine.refresh(&grown).unwrap().delta.is_empty());
}

#[test]
fn engine_rejects_what_the_evaluator_rejects() {
    let h = Hospital::generate(SynthConfig::tiny());
    let spec = LogSpec::conventional(&h.db).unwrap();
    let engine = Engine::new(&h.db);
    let bad = ChainQuery {
        log: spec.table,
        lid_col: spec.lid_col,
        start_col: 999,
        steps: vec![],
        close_col: None,
        anchor_filters: vec![],
    };
    assert!(engine.support(&h.db, &bad, EvalOptions::default()).is_err());
    assert!(bad.support(&h.db, EvalOptions::default()).is_err());
}
