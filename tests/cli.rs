//! End-to-end tests of the `eba` command-line binary: synthesize a data
//! set to CSV, then mine / explain / report / investigate it — the full
//! "bring your own log" workflow a deployment would script.

use std::path::PathBuf;
use std::process::{Command, Output};

fn eba(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_eba"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn data_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eba-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn synth(dir: &std::path::Path, extra: &[&str]) {
    let mut args = vec!["synth", "--out", dir.to_str().unwrap(), "--scale", "tiny"];
    args.extend_from_slice(extra);
    let out = eba(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("Log.csv").exists());
    assert!(dir.join("Users.csv").exists());
}

#[test]
fn synth_then_mine_round_trips() {
    let dir = data_dir("mine");
    synth(&dir, &[]);
    let out = eba(&["mine", "--data", dir.to_str().unwrap(), "--groups"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("mined"), "{text}");
    // The classic appointment template is always found.
    assert!(
        text.contains("Appointments(Patient→Doctor)"),
        "missing appointment template:\n{text}"
    );
    // Group templates appear because --groups installed them.
    assert!(text.contains("Groups"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mine_prints_sql_on_request() {
    let dir = data_dir("sql");
    synth(&dir, &[]);
    let out = eba(&[
        "mine",
        "--data",
        dir.to_str().unwrap(),
        "--max-length",
        "2",
        "--sql",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("SELECT L.Lid, L.Patient, L.User"), "{text}");
    assert!(text.contains("WHERE L.Patient = T1.Patient"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_handles_found_and_missing_lids() {
    let dir = data_dir("explain");
    synth(&dir, &[]);
    let out = eba(&["explain", "--data", dir.to_str().unwrap(), "--lid", "1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("log record 1:"), "{text}");
    // Either an explanation or a near-miss diagnosis is printed.
    assert!(
        text.contains("[len ") || text.contains("closest template verdicts"),
        "{text}"
    );
    let out = eba(&[
        "explain",
        "--data",
        dir.to_str().unwrap(),
        "--lid",
        "999999",
    ]);
    assert!(!out.status.success(), "missing lid must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no log record"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_lists_patient_accesses() {
    let dir = data_dir("report");
    synth(&dir, &[]);
    // Patient ids start at 10000 in the synthetic world.
    let out = eba(&[
        "report",
        "--data",
        dir.to_str().unwrap(),
        "--patient",
        "10000",
        "--groups",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(
        text.contains("access report for patient 10000") || text.contains("no accesses recorded"),
        "{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn investigate_summarizes_unexplained() {
    let dir = data_dir("investigate");
    synth(&dir, &["--snoops", "10"]);
    let out = eba(&[
        "investigate",
        "--data",
        dir.to_str().unwrap(),
        "--groups",
        "--top",
        "3",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("unexplained"), "{text}");
    assert!(text.contains("look like snooping"), "{text}");
    assert!(text.contains("top users"), "{text}");
    // The listing is capped at --top 3; a deeper suspect queue must be
    // called out explicitly instead of silently cut.
    let listed = text
        .lines()
        .filter(|l| l.trim_start().starts_with("user "))
        .count();
    assert!(listed <= 3, "{text}");
    if listed == 3 {
        // 10 planted snoops: the queue is deeper than three users.
        assert!(text.contains("more rows"), "{text}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mapping_mode_round_trips_through_csv() {
    let dir = data_dir("mapping");
    synth(&dir, &["--mapping"]);
    assert!(dir.join("Mapping.csv").exists());
    let out = eba(&["mine", "--data", dir.to_str().unwrap(), "--max-length", "3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    // Consult templates route through the mapping (length 3).
    assert!(text.contains("Mapping(AuditId→CaregiverId)"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kills the child on drop, so a failing assertion cannot leak a live
/// `eba serve` process (and its bound port) past the test run.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_and_client_round_trip_over_a_real_port() {
    use std::io::BufRead;

    let dir = data_dir("serve");
    synth(&dir, &[]);
    // `--addr 127.0.0.1:0` picks an ephemeral port; the server announces
    // it on stdout as `listening on <addr>`.
    let mut server = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_eba"))
            .args([
                "serve",
                "--data",
                dir.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("server spawns"),
    );
    let mut line = String::new();
    std::io::BufReader::new(server.0.stdout.take().expect("piped stdout"))
        .read_line(&mut line)
        .expect("announcement line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();

    // A successful command prints the framed reply and exits zero.
    let out = eba(&["client", "--addr", &addr, "--send", "METRICS"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("OK metrics epoch 0"), "{text}");
    assert!(text.contains("anchor_total "), "{text}");
    assert!(text.contains("recall "), "{text}");

    // An ERR reply exits non-zero (scripts can branch on it).
    let out = eba(&["client", "--addr", &addr, "--send", "FROB"]);
    assert!(!out.status.success(), "ERR reply must exit non-zero");
    assert!(stdout(&out).contains("ERR bad-request"), "{}", stdout(&out));

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns `eba serve` with the given extra args and returns the child
/// plus the announced address.
fn spawn_serve(dir: &std::path::Path, extra: &[&str]) -> (KillOnDrop, String) {
    use std::io::BufRead;

    let mut args = vec![
        "serve",
        "--data",
        dir.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
    ];
    args.extend_from_slice(extra);
    let mut server = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_eba"))
            .args(&args)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("server spawns"),
    );
    let mut line = String::new();
    std::io::BufReader::new(server.0.stdout.take().expect("piped stdout"))
        .read_line(&mut line)
        .expect("announcement line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    (server, addr)
}

/// The durability smoke at full distance: a served process is SIGKILLed
/// with an acknowledged history *and* an unfinished `INGEST` batch still
/// on the wire; the restarted process must recover exactly the
/// acknowledged rows and report it over `RECOVERY`.
#[test]
fn sigkill_mid_ingest_recovers_every_acknowledged_batch() {
    use eba::server::protocol::IngestRow;
    use eba::server::Client;

    let dir = data_dir("kill");
    synth(&dir, &[]);
    let pile = dir.join("log.pile");
    let pile_args = ["--pile", pile.to_str().unwrap()];

    let (server, addr) = spawn_serve(&dir, &pile_args);
    let mut client = Client::connect(&addr).expect("client connects");
    let base: u64 = client
        .send("METRICS")
        .unwrap()
        .body_field("anchor_total")
        .expect("anchor_total line")
        .parse()
        .unwrap();

    // Five acknowledged batches of two rows each...
    for b in 0..5i64 {
        let rows: Vec<IngestRow> = (0..2)
            .map(|i| IngestRow {
                user: 1 + b,
                patient: 10000 + i,
                day: Some(1 + b),
            })
            .collect();
        let reply = client.ingest(&rows).expect("ingest reply");
        assert!(reply.is_ok(), "{}", reply.head);
    }
    // ...then a batch that never finishes: the header promises three rows
    // but only one is sent before the process dies mid-protocol.
    client
        .send_raw(b"INGEST 3\n1 10000 1\n")
        .expect("partial batch");
    drop(server); // SIGKILL, no shutdown path runs

    let (_server2, addr2) = spawn_serve(&dir, &pile_args);
    let mut client = Client::connect(&addr2).expect("client reconnects");
    let recovered: u64 = client
        .send("METRICS")
        .unwrap()
        .body_field("anchor_total")
        .expect("anchor_total line")
        .parse()
        .unwrap();
    assert_eq!(
        recovered,
        base + 10,
        "exactly the acknowledged rows survive the kill — no more, no less"
    );
    let reply = client.send("RECOVERY").unwrap();
    assert!(
        reply.head.starts_with("OK recovery durable"),
        "{}",
        reply.head
    );
    assert_eq!(reply.field("dropped"), Some("0"), "{}", reply.head);
    let batches: u64 = reply
        .field("batches")
        .expect("batches field")
        .parse()
        .unwrap();
    assert_eq!(batches, 5, "{}", reply.head);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = eba(&["mine"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--data is required"), "{err}");
    let out = eba(&["nonsense"]);
    assert!(!out.status.success());
    let out = eba(&["help"]);
    assert!(out.status.success());
}
