//! The fused-scan proof: the single-pass suite driver
//! ([`Engine::eval_suite`]) plus the compressed row-set algebra
//! ([`RowSet`]) must be **byte-identical** to the old per-template path
//! across the whole audit surface — per-query explained rows, the suite
//! union, the unexplained residue, recall/precision confusion counts, and
//! the day-bucketed timeline — at shard counts {1, 4}, including:
//!
//! * the empty template set (an empty fused pass over any database);
//! * overflow-day and NULL-dated rows (the timeline's overflow bucket);
//! * proptest-driven random worlds mixing NULLs, anchor filters,
//!   constant decorations, and anchor-dependent decorations, where the
//!   row-set algebra (union/intersect/difference/rank) is checked
//!   against a sorted-`Vec` reference over the *actual* evaluated sets.

mod common;

use common::AuditWorld;
use eba::audit::{metrics, portal, timeline};
use eba::relational::{
    ChainQuery, ChainStep, CmpOp, DataType, Database, Engine, EvalOptions, RowId, RowSet, ShardKey,
    ShardedEngine, TableId, Value,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The old per-template reference: one `explained_rows` call per query,
/// exactly what `eval_suite` fuses into a single scan.
fn per_template_reference(
    engine: &Engine,
    db: &Database,
    queries: &[ChainQuery],
    opts: EvalOptions,
) -> Vec<Vec<RowId>> {
    queries
        .iter()
        .map(|q| engine.explained_rows(db, q, opts).expect("valid query"))
        .collect()
}

#[test]
fn fused_suite_matches_the_per_template_path_on_the_hospital() {
    for seed in [5u64, 23] {
        let world = AuditWorld::tiny(seed);
        let db = &world.hospital.db;
        let engine = Engine::new(db);
        let suite = world.suite();
        for dedup in [true, false] {
            let opts = EvalOptions { dedup };
            let reference = per_template_reference(&engine, db, &suite, opts);
            let fused = engine.eval_suite(db, &suite, opts);
            assert_eq!(fused.len(), suite.len());
            for (i, (set, expect)) in fused.into_iter().zip(&reference).enumerate() {
                let set = set.expect("valid query");
                assert_eq!(
                    &set.to_vec(),
                    expect,
                    "seed {seed} q{i} (dedup={dedup}): fused set diverged"
                );
                // The compressed set agrees with itself on every probe.
                assert_eq!(set.len(), expect.len());
                for &r in expect {
                    assert!(set.contains(r));
                }
            }
            // The fused union equals the set-union of the references.
            let union: BTreeSet<RowId> = reference.iter().flatten().copied().collect();
            let union_vec: Vec<RowId> = union.into_iter().collect();
            assert_eq!(
                engine
                    .explained_union_rowset(db, &suite, opts)
                    .expect("valid suite")
                    .to_vec(),
                union_vec,
                "seed {seed} (dedup={dedup}): fused union diverged"
            );
            let mut via_hashset: Vec<RowId> = engine
                .explained_union(db, &suite, opts)
                .expect("valid")
                .into_iter()
                .collect();
            via_hashset.sort_unstable();
            assert_eq!(via_hashset, union_vec);
        }
    }
}

#[test]
fn empty_template_set_is_an_empty_fused_pass() {
    let world = AuditWorld::tiny(11);
    let db = &world.hospital.db;
    let engine = Engine::new(db);
    let none: Vec<ChainQuery> = Vec::new();
    let opts = EvalOptions::default();
    assert!(engine.eval_suite(db, &none, opts).is_empty());
    let union = engine.explained_union_rowset(db, &none, opts).unwrap();
    assert!(union.is_empty());
    assert_eq!(union.to_vec(), Vec::<RowId>::new());
    // An explainer with no templates explains nothing and leaves every
    // anchor row unexplained — through the warm fused path too.
    let empty = eba::audit::Explainer::new(Vec::new());
    assert!(empty
        .explained_rows_with(db, &world.spec, &engine)
        .is_empty());
    assert_eq!(
        empty.unexplained_rows_with(db, &world.spec, &engine),
        metrics::anchor_rows(db, &world.spec)
    );
    // And the sharded fused path agrees at both CI shard counts.
    let key = ShardKey {
        table: world.spec.table,
        col: world.spec.patient_col,
    };
    for n in [1usize, 4] {
        let shards = ShardedEngine::new(world.hospital.db.clone(), key, n).load();
        assert!(shards.eval_suite(&none, opts).is_empty());
        assert!(shards
            .explained_union_rowset(&none, opts)
            .unwrap()
            .is_empty());
        assert_eq!(
            empty.unexplained_rows_at_shards(&world.spec, &shards),
            metrics::anchor_rows(db, &world.spec),
            "{n} shards"
        );
    }
}

/// Renders the audit surface to one transcript string — per-query rows,
/// union, unexplained, confusion, timeline — so the fused/warm path and
/// the cold per-query path are compared byte for byte.
fn audit_transcript(
    world: &AuditWorld,
    per_query: &[Vec<RowId>],
    explained_union: &[RowId],
    unexplained: &[RowId],
    confusion: &metrics::Confusion,
    t: &timeline::Timeline,
    misuse: &[portal::SuspectSummary],
) -> String {
    let mut out = String::new();
    for (i, rows) in per_query.iter().enumerate() {
        out.push_str(&format!("q{i} rows {rows:?}\n"));
    }
    out.push_str(&format!("union {explained_union:?}\n"));
    out.push_str(&format!("unexplained {unexplained:?}\n"));
    out.push_str(&format!(
        "confusion real {}/{} fake {}/{} with_events {}\n",
        confusion.real_explained,
        confusion.real_total,
        confusion.fake_explained,
        confusion.fake_total,
        confusion.real_with_events
    ));
    for s in &t.days {
        out.push_str(&format!(
            "day {} {} {} {} {}\n",
            s.day, s.total, s.explained, s.first_accesses, s.first_explained
        ));
    }
    out.push_str(&format!(
        "overflow {} {} {} {} dropped {}\n",
        t.overflow.total,
        t.overflow.explained,
        t.overflow.first_accesses,
        t.overflow.first_explained,
        t.dropped()
    ));
    for s in misuse {
        out.push_str(&format!(
            "suspect {:?} {} {}\n",
            s.user, s.unexplained, s.distinct_patients
        ));
    }
    let _ = world;
    out
}

/// The cold per-query transcript: no engine anywhere on the path.
fn cold_transcript(world: &AuditWorld) -> String {
    let db = &world.hospital.db;
    let spec = &world.spec;
    let per_query: Vec<Vec<RowId>> = world
        .suite()
        .iter()
        .map(|q| q.explained_rows(db, EvalOptions::default()).unwrap())
        .collect();
    let templates: Vec<_> = world.explainer.templates().iter().collect();
    let mut union: Vec<RowId> = metrics::explained_union(db, spec, &templates)
        .into_iter()
        .collect();
    union.sort_unstable();
    audit_transcript(
        world,
        &per_query,
        &union,
        &world.explainer.unexplained_rows(db, spec),
        &metrics::evaluate(db, spec, &templates, None, None),
        &timeline::daily_stats(
            db,
            spec,
            &world.hospital.log_cols,
            &world.explainer,
            world.hospital.config.days,
        ),
        &portal::misuse_summary(db, spec, &world.explainer),
    )
}

/// The warm fused transcript over an engine.
fn fused_transcript(world: &AuditWorld, engine: &Engine) -> String {
    let db = &world.hospital.db;
    let spec = &world.spec;
    let per_query: Vec<Vec<RowId>> = engine
        .eval_suite(db, &world.suite(), EvalOptions::default())
        .into_iter()
        .map(|s| s.unwrap().to_vec())
        .collect();
    let templates: Vec<_> = world.explainer.templates().iter().collect();
    audit_transcript(
        world,
        &per_query,
        &metrics::explained_union_rowset_with(db, spec, &templates, engine).to_vec(),
        &world.explainer.unexplained_rows_with(db, spec, engine),
        &metrics::evaluate_with(db, spec, &templates, None, None, engine),
        &timeline::daily_stats_with(
            db,
            spec,
            &world.hospital.log_cols,
            &world.explainer,
            world.hospital.config.days,
            engine,
        ),
        &portal::misuse_summary_with(db, spec, &world.explainer, engine),
    )
}

/// The sharded fused transcript over an epoch vector.
fn sharded_fused_transcript(world: &AuditWorld, shards: &eba::relational::EpochVec) -> String {
    let spec = &world.spec;
    let per_query: Vec<Vec<RowId>> = shards
        .eval_suite(&world.suite(), EvalOptions::default())
        .into_iter()
        .map(|s| s.unwrap().to_vec())
        .collect();
    let templates: Vec<_> = world.explainer.templates().iter().collect();
    audit_transcript(
        world,
        &per_query,
        &metrics::explained_union_rowset_at_shards(spec, &templates, shards).to_vec(),
        &world.explainer.unexplained_rows_at_shards(spec, shards),
        &metrics::evaluate_at_shards(spec, &templates, None, None, shards),
        &timeline::daily_stats_at_shards(
            spec,
            &world.hospital.log_cols,
            &world.explainer,
            world.hospital.config.days,
            shards,
        ),
        &portal::misuse_summary_at_shards(spec, &world.explainer, shards),
    )
}

#[test]
fn fused_transcripts_are_byte_identical_with_overflow_day_rows() {
    let mut world = AuditWorld::tiny(31);
    // Plant rows the timeline cannot bucket: a date past the reporting
    // window, a negative date, and a NULL date — all must land in the
    // overflow bucket identically on every path.
    {
        let cols = &world.hospital.log_cols;
        let spec_table = world.spec.table;
        let arity = world.hospital.db.table(spec_table).schema().arity();
        let user = world.users[0];
        let patient = world.patients[0];
        for (i, date) in [
            Value::Date((world.hospital.config.days as i64 + 400) * 24 * 60),
            Value::Date(-5),
            Value::Null,
        ]
        .into_iter()
        .enumerate()
        {
            let mut row = vec![Value::Null; arity];
            row[cols.lid] = Value::Int(9_000_000 + i as i64);
            row[cols.user] = user;
            row[cols.patient] = patient;
            row[cols.date] = date;
            world
                .hospital
                .db
                .insert(spec_table, row)
                .expect("valid row");
        }
    }
    let expect = cold_transcript(&world);
    assert!(
        expect.contains("overflow 3")
            || world.hospital.config.days == 0
            || expect.lines().any(|l| l.starts_with("overflow ")),
        "the planted rows reached the overflow bucket:\n{expect}"
    );
    let engine = Engine::new(&world.hospital.db);
    assert_eq!(fused_transcript(&world, &engine), expect, "warm fused path");
    let key = ShardKey {
        table: world.spec.table,
        col: world.spec.patient_col,
    };
    for n in [1usize, 4] {
        let shards = ShardedEngine::new(world.hospital.db.clone(), key, n).load();
        assert_eq!(
            sharded_fused_transcript(&world, &shards),
            expect,
            "{n} shards fused path"
        );
    }
}

// --------------------------------------------------------------- proptest

/// A random two-hop world (same shape as `engine_equivalence.rs`):
/// Log(Lid, User, Patient), Event(Patient, Actor), Team(Member, Buddy),
/// NULL actors mixed in.
#[derive(Debug, Clone)]
struct RandomWorld {
    log_rows: Vec<(i64, i64, i64)>,
    event_rows: Vec<(i64, i64, bool)>,
    team_rows: Vec<(i64, i64)>,
}

fn random_world() -> impl Strategy<Value = RandomWorld> {
    (
        prop::collection::vec((0..40i64, 0..6i64, 0..8i64), 1..30),
        prop::collection::vec((0..8i64, 0..6i64, 0..10i64), 0..25),
        prop::collection::vec((0..6i64, 0..6i64), 0..15),
    )
        .prop_map(|(mut log_rows, event_rows, team_rows)| {
            for (i, r) in log_rows.iter_mut().enumerate() {
                r.0 = i as i64;
            }
            RandomWorld {
                log_rows,
                event_rows: event_rows
                    .into_iter()
                    .map(|(p, a, n)| (p, a, n == 0))
                    .collect(),
                team_rows,
            }
        })
}

fn materialize(w: &RandomWorld) -> (Database, TableId, TableId, TableId) {
    let mut db = Database::new();
    let log = db
        .create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
    let event = db
        .create_table(
            "Event",
            &[("Patient", DataType::Int), ("Actor", DataType::Int)],
        )
        .unwrap();
    let team = db
        .create_table(
            "Team",
            &[("Member", DataType::Int), ("Buddy", DataType::Int)],
        )
        .unwrap();
    for &(lid, user, patient) in &w.log_rows {
        db.insert(
            log,
            vec![Value::Int(lid), Value::Int(user), Value::Int(patient)],
        )
        .unwrap();
    }
    for &(p, a, null_actor) in &w.event_rows {
        let actor = if null_actor {
            Value::Null
        } else {
            Value::Int(a)
        };
        db.insert(event, vec![Value::Int(p), actor]).unwrap();
    }
    for &(m, b) in &w.team_rows {
        db.insert(team, vec![Value::Int(m), Value::Int(b)]).unwrap();
    }
    (db, log, event, team)
}

/// The full query-class zoo the fused driver buckets: grouped
/// (non-anchor-dependent) chains, open chains, two-hop, anchor-filtered,
/// constant-decorated, and the per-row anchor-dependent class.
fn query_classes(log: TableId, event: TableId, team: TableId) -> Vec<ChainQuery> {
    let one_hop = ChainQuery {
        log,
        lid_col: 0,
        start_col: 2,
        steps: vec![ChainStep::new(event, 0, 1)],
        close_col: Some(1),
        anchor_filters: vec![],
    };
    let open = ChainQuery {
        close_col: None,
        ..one_hop.clone()
    };
    let two_hop = ChainQuery {
        log,
        lid_col: 0,
        start_col: 2,
        steps: vec![ChainStep::new(event, 0, 1), ChainStep::new(team, 0, 1)],
        close_col: Some(1),
        anchor_filters: vec![],
    };
    let filtered = ChainQuery {
        anchor_filters: vec![(1, CmpOp::Ge, Value::Int(3))],
        ..one_hop.clone()
    };
    let decorated = {
        let mut q = one_hop.clone();
        q.steps[0].filters.push(eba::relational::StepFilter {
            col: 1,
            op: CmpOp::Lt,
            rhs: eba::relational::Rhs::Const(Value::Int(3)),
        });
        q
    };
    let anchor_dep = {
        let mut q = one_hop.clone();
        q.steps[0].filters.push(eba::relational::StepFilter {
            col: 1,
            op: CmpOp::Le,
            rhs: eba::relational::Rhs::AnchorCol(1),
        });
        q
    };
    vec![one_hop, open, two_hop, filtered, decorated, anchor_dep]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fused driver equals the per-template path per slot and in
    /// union, on random worlds, under both dedup settings — and the
    /// row-set algebra over the evaluated sets equals a sorted-Vec
    /// reference.
    #[test]
    fn fused_driver_and_rowset_algebra_match_references(w in random_world()) {
        let (db, log, event, team) = materialize(&w);
        let engine = Engine::new(&db);
        let queries = query_classes(log, event, team);
        for dedup in [true, false] {
            let opts = EvalOptions { dedup };
            let reference: Vec<Vec<RowId>> = queries
                .iter()
                .map(|q| q.explained_rows(&db, opts).unwrap())
                .collect();
            let fused = engine.eval_suite(&db, &queries, opts);
            let mut sets = Vec::new();
            for (i, (set, expect)) in fused.into_iter().zip(&reference).enumerate() {
                let set = set.unwrap();
                prop_assert_eq!(&set.to_vec(), expect, "q{} (dedup={})", i, dedup);
                sets.push(set);
            }
            // Union: fused vs BTreeSet reference.
            let union_ref: Vec<RowId> = reference
                .iter()
                .flatten()
                .copied()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            prop_assert_eq!(
                engine.explained_union_rowset(&db, &queries, opts).unwrap().to_vec(),
                union_ref.clone(),
                "union (dedup={})", dedup
            );
            // Algebra over the actual evaluated sets: pairwise
            // intersect/difference and rank against sorted-Vec math.
            for a in 0..sets.len() {
                for b in (a + 1)..sets.len() {
                    let va: BTreeSet<RowId> = reference[a].iter().copied().collect();
                    let vb: BTreeSet<RowId> = reference[b].iter().copied().collect();
                    let inter: Vec<RowId> = va.intersection(&vb).copied().collect();
                    let diff: Vec<RowId> = va.difference(&vb).copied().collect();
                    prop_assert_eq!(sets[a].intersect(&sets[b]).to_vec(), inter);
                    prop_assert_eq!(sets[a].difference(&sets[b]).to_vec(), diff);
                }
                for (below, &r) in reference[a].iter().enumerate() {
                    prop_assert_eq!(sets[a].rank(r), below);
                }
            }
            // The unexplained residue as a bitmap difference equals the
            // filter-based complement over all log rows.
            let all = RowSet::from_sorted_vec(
                &(0..db.table(log).len() as RowId).collect::<Vec<_>>(),
            );
            let union_set = RowSet::from_sorted_vec(&union_ref);
            let residue: Vec<RowId> = (0..db.table(log).len() as RowId)
                .filter(|r| !union_ref.contains(r))
                .collect();
            prop_assert_eq!(all.difference(&union_set).to_vec(), residue);
        }
    }

    /// The sharded fused path equals the unsharded fused path (and hence
    /// the reference) at shard counts {1, 4}, including the empty suite.
    #[test]
    fn sharded_fused_path_matches_at_one_and_four_shards(w in random_world()) {
        let (db, log, event, team) = materialize(&w);
        let engine = Engine::new(&db);
        let queries = query_classes(log, event, team);
        let opts = EvalOptions::default();
        let expect: Vec<Vec<RowId>> = engine
            .eval_suite(&db, &queries, opts)
            .into_iter()
            .map(|s| s.unwrap().to_vec())
            .collect();
        let union = engine.explained_union_rowset(&db, &queries, opts).unwrap().to_vec();
        let key = ShardKey { table: log, col: 2 };
        for n in [1usize, 4] {
            let shards = ShardedEngine::new(db.clone(), key, n).load();
            let got: Vec<Vec<RowId>> = shards
                .eval_suite(&queries, opts)
                .into_iter()
                .map(|s| s.unwrap().to_vec())
                .collect();
            prop_assert_eq!(&got, &expect, "{} shards", n);
            prop_assert_eq!(
                shards.explained_union_rowset(&queries, opts).unwrap().to_vec(),
                union.clone(),
                "{} shards union", n
            );
            prop_assert!(shards.eval_suite(&[], opts).is_empty(), "{} shards empty suite", n);
        }
    }
}
