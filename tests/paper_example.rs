//! End-to-end check of the paper's worked example (Figures 2–3, Examples
//! 2.1–3.3): the exact database, templates, supports, SQL shapes, and
//! natural-language strings.

use eba::core::{
    mine_bridge, mine_one_way, mine_two_way, ExplanationTemplate, LogSpec, MiningConfig, Path,
};
use eba::relational::{DataType, Database, Value};

/// The Figure 3 database: two appointments, two doctors in Pediatrics, two
/// log records (Dave→Alice, Dave→Bob).
fn figure3() -> (Database, LogSpec) {
    let mut db = Database::new();
    db.create_table(
        "Log",
        &[
            ("Lid", DataType::Int),
            ("Date", DataType::Date),
            ("User", DataType::Str),
            ("Patient", DataType::Str),
        ],
    )
    .unwrap();
    db.create_table(
        "Appointments",
        &[
            ("Patient", DataType::Str),
            ("Date", DataType::Date),
            ("Doctor", DataType::Str),
        ],
    )
    .unwrap();
    db.create_table(
        "Doctor_Info",
        &[("Doctor", DataType::Str), ("Department", DataType::Str)],
    )
    .unwrap();
    let (alice, bob) = (db.str_value("Alice"), db.str_value("Bob"));
    let (dave, mike) = (db.str_value("Dave"), db.str_value("Mike"));
    let ped = db.str_value("Pediatrics");
    let appt = db.table_id("Appointments").unwrap();
    let info = db.table_id("Doctor_Info").unwrap();
    let log = db.table_id("Log").unwrap();
    db.insert(appt, vec![alice, Value::Date(1), dave]).unwrap();
    db.insert(appt, vec![bob, Value::Date(2), mike]).unwrap();
    db.insert(info, vec![mike, ped]).unwrap();
    db.insert(info, vec![dave, ped]).unwrap();
    db.insert(log, vec![Value::Int(1), Value::Date(1), dave, alice])
        .unwrap();
    db.insert(log, vec![Value::Int(2), Value::Date(2), dave, bob])
        .unwrap();
    db.add_fk("Log", "Patient", "Appointments", "Patient")
        .unwrap();
    db.add_fk("Appointments", "Doctor", "Log", "User").unwrap();
    db.add_fk("Appointments", "Doctor", "Doctor_Info", "Doctor")
        .unwrap();
    db.add_fk("Doctor_Info", "Doctor", "Log", "User").unwrap();
    db.allow_self_join("Doctor_Info", "Department").unwrap();
    let spec = LogSpec::conventional(&db).unwrap();
    (db, spec)
}

fn template_a(db: &Database, spec: &LogSpec) -> ExplanationTemplate {
    ExplanationTemplate::new(
        Path::handcrafted(db, spec, &[("Appointments", "Patient", "Doctor")]).unwrap(),
    )
    .described("[L.Patient] had an appointment with [L.User] on [T1.Date].")
}

fn template_b(db: &Database, spec: &LogSpec) -> ExplanationTemplate {
    ExplanationTemplate::new(
        Path::handcrafted(
            db,
            spec,
            &[
                ("Appointments", "Patient", "Doctor"),
                ("Doctor_Info", "Doctor", "Department"),
                ("Doctor_Info", "Department", "Doctor"),
            ],
        )
        .unwrap(),
    )
    .described(
        "[L.Patient] had an appointment with [T1.Doctor] on [T1.Date], and [L.User] and \
         [T1.Doctor] work together in the [T2.Department] department.",
    )
}

#[test]
fn example_3_1_supports() {
    let (db, spec) = figure3();
    assert_eq!(template_a(&db, &spec).support(&db, &spec).unwrap(), 1);
    assert_eq!(template_b(&db, &spec).support(&db, &spec).unwrap(), 2);
}

#[test]
fn example_2_2_natural_language() {
    let (db, spec) = figure3();
    let a = template_a(&db, &spec);
    let inst = a.instances(&db, &spec, 0, 4).unwrap();
    assert_eq!(inst.len(), 1);
    let text = a.render(&db, &spec, 0, &inst[0]);
    // The paper renders "Alice had an appointment with Dave on 1/1/2010";
    // our toy dates render as day offsets.
    assert!(
        text.starts_with("Alice had an appointment with Dave on"),
        "{text}"
    );

    let b = template_b(&db, &spec);
    let inst = b.instances(&db, &spec, 1, 4).unwrap();
    assert_eq!(inst.len(), 1);
    let text = b.render(&db, &spec, 1, &inst[0]);
    assert!(text.contains("Bob had an appointment with Mike"), "{text}");
    assert!(
        text.contains("Dave and Mike work together in the Pediatrics department"),
        "{text}"
    );
}

#[test]
fn template_b_sql_matches_the_papers_query_shape() {
    let (db, spec) = figure3();
    let sql = template_b(&db, &spec).to_sql(&db, &spec);
    for fragment in [
        "FROM Log L, Appointments T1, Doctor_Info T2, Doctor_Info T3",
        "L.Patient = T1.Patient",
        "T1.Doctor = T2.Doctor",
        "T2.Department = T3.Department",
        "T3.Doctor = L.User",
    ] {
        assert!(sql.contains(fragment), "missing `{fragment}` in:\n{sql}");
    }
}

#[test]
fn multiple_instances_rank_ascending_by_length() {
    let (mut db, spec) = figure3();
    // A second Alice–Dave appointment: L1 gains a second instance of (A).
    let appt = db.table_id("Appointments").unwrap();
    let alice = db.str_value("Alice");
    let dave = db.str_value("Dave");
    db.insert(appt, vec![alice, Value::Date(9), dave]).unwrap();
    let explainer =
        eba::audit::Explainer::new(vec![template_b(&db, &spec), template_a(&db, &spec)]);
    let ranked = explainer.explain(&db, &spec, 0, 8).unwrap();
    assert!(ranked.len() >= 3, "two instances of (A) + one of (B)");
    assert_eq!(ranked[0].length, 2);
    assert!(ranked.last().unwrap().length >= ranked[0].length);
}

#[test]
fn all_three_miners_find_a_and_b() {
    let (db, spec) = figure3();
    let config = MiningConfig {
        support_frac: 0.5,
        max_length: 4,
        max_tables: 3,
        ..MiningConfig::default()
    };
    let one = mine_one_way(&db, &spec, &config);
    let two = mine_two_way(&db, &spec, &config);
    let bridged = mine_bridge(&db, &spec, &config, 2).unwrap();
    assert_eq!(one.key_set(), two.key_set());
    assert_eq!(one.key_set(), bridged.key_set());
    // Template (A): length 2, support 1; template (B): length 4, support 2.
    assert!(one.of_length(2).any(|t| t.support == 1));
    assert!(one.of_length(4).any(|t| t.support == 2));
}

#[test]
fn example_1_1_style_report() {
    // The introduction's Figure 1: a patient-visible report where each
    // access row carries a snippet of text.
    let (db, spec) = figure3();
    let explainer =
        eba::audit::Explainer::new(vec![template_a(&db, &spec), template_b(&db, &spec)]);
    let alice = Value::Str(db.pool().get("Alice").unwrap());
    // Reuse the log-columns struct shape from synth: Lid=0, Date=1, User=2.
    let texts: Vec<String> = db
        .table(spec.table)
        .rows_with(spec.patient_col, alice)
        .into_iter()
        .map(|rid| {
            explainer
                .explain(&db, &spec, rid, 1)
                .unwrap()
                .first()
                .map(|e| e.text.clone())
                .unwrap_or_else(|| "unexplained".into())
        })
        .collect();
    assert_eq!(texts.len(), 1);
    assert!(texts[0].contains("appointment"));
}
