//! Differential storage-equivalence suite — the headline test of the
//! segmented-storage refactor.
//!
//! `eba_relational` stores append-only tables (and the engine's interned
//! columns) as immutable `Arc`-shared segments plus a small mutable tail,
//! so that epoch publication (`Database::clone` + `Engine::fork`) costs
//! `O(batch)` instead of `O(database)`. This suite proves three things
//! about that storage, differentially against a **flat oracle** — the
//! same code driven with an effectively unbounded segment capacity, so
//! every row lives in one flat tail exactly like the pre-segmentation
//! layout:
//!
//! 1. **Answer equivalence**: under proptest-random interleavings of
//!    `ingest` / `seal` / `fork` / `refresh`, every query class returns
//!    byte-identical `explained_rows` and `support` on segmented storage
//!    (engine path *and* row-evaluator path) as on a flat rebuild of the
//!    same logical contents — and raw cells, index probes, and iteration
//!    agree too.
//! 2. **Structural sharing**: sealed segments are shared **by pointer**
//!    (`Arc::ptr_eq`) between consecutive epochs — in the database's row
//!    heaps and in the engine snapshot's interned columns — and pinned
//!    epochs stay byte-stable while newer epochs reuse their segments.
//! 3. **`O(batch)` publication**: the copy meter
//!    ([`segment::copied_bytes`]) shows the bytes an epoch publication
//!    copies stay flat as the database grows ~10×, and are ≥5× below
//!    what flat storage would copy.

use eba::relational::segment::{copied_bytes, reset_copied_bytes};
use eba::relational::{
    ChainQuery, ChainStep, CmpOp, DataType, Database, Engine, EvalOptions, RefreshError, Rhs,
    SharedEngine, StepFilter, TableId, Value,
};
use proptest::prelude::*;
use std::sync::Arc;

mod common;

/// Tiny segment capacity so a handful of rows spans several sealed
/// segments.
const SEG_ROWS: usize = 8;

/// "Flat" capacity: everything stays in one mutable tail, reproducing the
/// pre-segmentation storage layout through the same code path.
const FLAT_ROWS: usize = 1 << 30;

/// Department codes used for `Str` cells. Interned in this order into
/// every database, so symbols (and therefore `Value`s) agree across the
/// segmented side and every flat oracle rebuild.
const DEPTS: [&str; 3] = ["Peds", "Rad", "ER"];

#[derive(Debug, Clone, Copy, PartialEq)]
struct LogRow {
    lid: i64,
    user: i64,
    patient: i64,
    dept: usize, // index into DEPTS; usize::MAX encodes NULL
    date: i64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct EventRow {
    patient: i64,
    actor: i64, // -1 encodes NULL
    tag: usize, // index into DEPTS
}

/// The logical contents both sides must agree on — the oracle of truth.
#[derive(Debug, Clone, Default)]
struct FlatOracle {
    log: Vec<LogRow>,
    event: Vec<EventRow>,
    team: Vec<(i64, i64)>,
}

struct World {
    db: Database,
    log: TableId,
    event: TableId,
    team: TableId,
    depts: [Value; 3],
}

/// Creates the three-table schema with the given segment capacity,
/// pre-interning the department strings in a fixed order.
fn make_world(seg_rows: usize) -> World {
    let mut db = Database::new();
    db.set_segment_rows(seg_rows);
    let depts = DEPTS.map(|d| db.str_value(d));
    let log = db
        .create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
                ("Dept", DataType::Str),
                ("Date", DataType::Date),
            ],
        )
        .unwrap();
    let event = db
        .create_table(
            "Event",
            &[
                ("Patient", DataType::Int),
                ("Actor", DataType::Int),
                ("Tag", DataType::Str),
            ],
        )
        .unwrap();
    let team = db
        .create_table(
            "Team",
            &[("Member", DataType::Int), ("Buddy", DataType::Int)],
        )
        .unwrap();
    World {
        db,
        log,
        event,
        team,
        depts,
    }
}

fn log_values(w: &World, r: &LogRow) -> Vec<Value> {
    vec![
        Value::Int(r.lid),
        Value::Int(r.user),
        Value::Int(r.patient),
        if r.dept == usize::MAX {
            Value::Null
        } else {
            w.depts[r.dept % DEPTS.len()]
        },
        Value::Date(r.date),
    ]
}

fn event_values(w: &World, r: &EventRow) -> Vec<Value> {
    vec![
        Value::Int(r.patient),
        if r.actor < 0 {
            Value::Null
        } else {
            Value::Int(r.actor)
        },
        w.depts[r.tag % DEPTS.len()],
    ]
}

impl FlatOracle {
    /// Materializes the oracle contents into a fresh **flat** database
    /// (single-tail storage) — the reference the segmented side must
    /// match byte-for-byte.
    fn rebuild(&self) -> World {
        let mut w = make_world(FLAT_ROWS);
        for r in &self.log {
            let values = log_values(&w, r);
            w.db.insert(w.log, values).unwrap();
        }
        for r in &self.event {
            let values = event_values(&w, r);
            w.db.insert(w.event, values).unwrap();
        }
        for &(m, b) in &self.team {
            w.db.insert(w.team, vec![Value::Int(m), Value::Int(b)])
                .unwrap();
        }
        w
    }
}

/// Every query class the engine distinguishes: closed/open chains,
/// two-hop, anchor-filtered (with a `Str` filter), constant-decorated,
/// and anchor-dependent decorated.
fn query_classes(w: &World) -> Vec<(&'static str, ChainQuery)> {
    let one_hop = ChainQuery {
        log: w.log,
        lid_col: 0,
        start_col: 2,
        steps: vec![ChainStep::new(w.event, 0, 1)],
        close_col: Some(1),
        anchor_filters: vec![],
    };
    let open = ChainQuery {
        close_col: None,
        ..one_hop.clone()
    };
    let two_hop = ChainQuery {
        steps: vec![ChainStep::new(w.event, 0, 1), ChainStep::new(w.team, 0, 1)],
        ..one_hop.clone()
    };
    let filtered = ChainQuery {
        anchor_filters: vec![(4, CmpOp::Ge, Value::Date(3)), (3, CmpOp::Eq, w.depts[0])],
        ..one_hop.clone()
    };
    let decorated = {
        let mut q = one_hop.clone();
        q.steps[0].filters.push(StepFilter {
            col: 2,
            op: CmpOp::Eq,
            rhs: Rhs::Const(w.depts[1]),
        });
        q
    };
    let anchor_dep = {
        let mut q = one_hop.clone();
        q.steps[0].filters.push(StepFilter {
            col: 1,
            op: CmpOp::Le,
            rhs: Rhs::AnchorCol(1),
        });
        q
    };
    vec![
        ("one_hop", one_hop),
        ("open", open),
        ("two_hop", two_hop),
        ("filtered", filtered),
        ("decorated", decorated),
        ("anchor_dep", anchor_dep),
    ]
}

/// Asserts the segmented side and a flat oracle rebuild agree on raw
/// storage (cells, iteration, index probes) and on every query class
/// through both the engine and the reference row evaluator.
fn assert_equivalent(seg: &World, engine: &Engine, oracle: &FlatOracle, what: &str) {
    let flat = oracle.rebuild();
    for (tid, flat_tid) in [
        (seg.log, flat.log),
        (seg.event, flat.event),
        (seg.team, flat.team),
    ] {
        let a = seg.db.table(tid);
        let b = flat.db.table(flat_tid);
        assert_eq!(a.len(), b.len(), "{what}: row count of {}", a.name());
        for (rid, row) in a.iter() {
            assert_eq!(row, b.row(rid), "{what}: {} row {rid}", a.name());
        }
        // Index probes agree (both in ascending row order).
        for col in 0..a.schema().arity() {
            for probe in [
                Value::Int(1),
                Value::Int(3),
                seg.depts[0],
                Value::Null,
                Value::Date(4),
            ] {
                if probe.data_type() == Some(a.schema().col_type(col)) || probe.is_null() {
                    assert_eq!(
                        a.rows_with(col, probe),
                        b.rows_with(col, probe),
                        "{what}: {} rows_with({col})",
                        a.name()
                    );
                }
            }
        }
    }
    let opts = EvalOptions::default();
    for (name, q) in query_classes(seg) {
        let flat_rows = q.explained_rows(&flat.db, opts).unwrap();
        assert_eq!(
            q.explained_rows(&seg.db, opts).unwrap(),
            flat_rows,
            "{what}: {name} row evaluator on segmented storage"
        );
        assert_eq!(
            engine.explained_rows(&seg.db, &q, opts).unwrap(),
            flat_rows,
            "{what}: {name} engine on segmented storage"
        );
        assert_eq!(
            engine.support(&seg.db, &q, opts).unwrap(),
            q.support(&flat.db, opts).unwrap(),
            "{what}: {name} support"
        );
    }
}

// ------------------------------------------------------------ proptest ops

/// One step of a random storage interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Append a batch of log + event (+ maybe team) rows, then refresh.
    Ingest {
        log: Vec<(i64, i64, u8, i64)>, // (user, patient, dept-or-null, date)
        event: Vec<(i64, i64, u8)>,    // (patient, actor-or-null, tag)
        team: Vec<(i64, i64)>,
    },
    /// Seal every table's tail (share boundary moves; contents must not).
    Seal,
    /// Replace the engine with a fork of itself (the publication path).
    Fork,
    /// Bring the engine up to date (also exercised implicitly by Ingest).
    Refresh,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The offline proptest shim has no `prop_oneof`; a selector integer
    // picks the op (weighted toward ingests), payloads ride along.
    (
        0u8..7,
        prop::collection::vec((0..6i64, 0..8i64, 0u8..5, 0..9i64), 0..7),
        prop::collection::vec((0..8i64, -1i64..6, 0u8..3), 0..7),
        prop::collection::vec((0..6i64, 0..6i64), 0..3),
    )
        .prop_map(|(sel, log, event, team)| match sel {
            0..=3 => Op::Ingest { log, event, team },
            4 => Op::Seal,
            5 => Op::Fork,
            _ => Op::Refresh,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: random interleavings of
    /// ingest/seal/fork/refresh leave segmented storage byte-identical
    /// to the flat oracle — storage, indexes, and every query class.
    #[test]
    fn segmented_storage_matches_the_flat_oracle(ops in prop::collection::vec(op_strategy(), 1..10)) {
        let mut seg = make_world(SEG_ROWS);
        let mut oracle = FlatOracle::default();
        let mut engine = Engine::new(&seg.db);
        let mut next_lid = 0i64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Ingest { log, event, team } => {
                    for &(user, patient, dept, date) in log {
                        let row = LogRow {
                            lid: next_lid,
                            user,
                            patient,
                            dept: if dept == 4 { usize::MAX } else { dept as usize },
                            date,
                        };
                        next_lid += 1;
                        let values = log_values(&seg, &row);
                        seg.db.insert(seg.log, values).unwrap();
                        oracle.log.push(row);
                    }
                    for &(patient, actor, tag) in event {
                        let row = EventRow { patient, actor, tag: tag as usize };
                        let values = event_values(&seg, &row);
                        seg.db.insert(seg.event, values).unwrap();
                        oracle.event.push(row);
                    }
                    for &(m, b) in team {
                        seg.db.insert(seg.team, vec![Value::Int(m), Value::Int(b)]).unwrap();
                        oracle.team.push((m, b));
                    }
                    engine.refresh(&seg.db).unwrap();
                }
                Op::Seal => seg.db.seal(),
                Op::Fork => engine = engine.fork(),
                Op::Refresh => {
                    engine.refresh(&seg.db).unwrap();
                }
            }
            // Cheap invariant after every op; the full differential
            // check runs at the end (and after every fork, where a
            // publication bug would surface).
            if matches!(op, Op::Fork | Op::Seal) || i + 1 == ops.len() {
                engine.refresh(&seg.db).unwrap();
                assert_equivalent(&seg, &engine, &oracle, &format!("after op {i} ({op:?})"));
            }
        }
        // A cold engine over the final segmented database agrees too.
        let cold = Engine::new(&seg.db);
        assert_equivalent(&seg, &cold, &oracle, "cold engine at end");
    }

    /// Satellite: a refused refresh (`TableShrank` / `CatalogShrank`)
    /// leaves a **segmented** engine answering byte-identically, and the
    /// `SharedEngine` full-rebuild fallback publishes answers
    /// byte-identical to a from-scratch engine.
    #[test]
    fn refused_refresh_and_rebuild_fallback_on_segmented_storage(
        rows in prop::collection::vec((0..6i64, 0..8i64, 0u8..5, 0..9i64), 1..20),
        extra in prop::collection::vec((0..6i64, 0..8i64, 0u8..5, 0..9i64), 1..10),
    ) {
        let mut seg = make_world(SEG_ROWS);
        let mut next_lid = 0i64;
        let mut push = |seg: &mut World, batch: &[(i64, i64, u8, i64)]| {
            for &(user, patient, dept, date) in batch {
                let row = LogRow {
                    lid: next_lid,
                    user,
                    patient,
                    dept: if dept == 4 { usize::MAX } else { dept as usize },
                    date,
                };
                next_lid += 1;
                let values = log_values(seg, &row);
                seg.db.insert(seg.log, values).unwrap();
            }
        };
        push(&mut seg, &rows);
        seg.db.insert(seg.event, vec![Value::Int(1), Value::Int(2), seg.depts[0]]).unwrap();
        seg.db.seal();
        let shorter = seg.db.clone();
        push(&mut seg, &extra);

        let opts = EvalOptions::default();
        let queries = query_classes(&seg);
        let answers = |engine: &Engine, db: &Database| -> Vec<(Vec<u32>, usize)> {
            queries
                .iter()
                .map(|(_, q)| {
                    (
                        engine.explained_rows(db, q, opts).unwrap(),
                        engine.support(db, q, opts).unwrap(),
                    )
                })
                .collect()
        };

        // TableShrank on segmented storage: engine intact, byte-identical.
        let mut engine = Engine::new(&seg.db);
        let before = answers(&engine, &seg.db);
        let err = engine.refresh(&shorter).unwrap_err();
        prop_assert!(matches!(err, RefreshError::TableShrank { .. }), "{err:?}");
        prop_assert_eq!(&answers(&engine, &seg.db), &before, "TableShrank left damage");
        prop_assert!(engine.refresh(&seg.db).unwrap().delta.is_empty());

        // CatalogShrank: same invariant.
        let mut wider = seg.db.clone();
        let w_extra = wider
            .create_table("Extra", &[("Patient", DataType::Int), ("Y", DataType::Int)])
            .unwrap();
        wider.insert(w_extra, vec![Value::Int(1), Value::Int(2)]).unwrap();
        let mut engine = Engine::new(&wider);
        let before = answers(&engine, &wider);
        let err = engine.refresh(&seg.db).unwrap_err();
        prop_assert!(matches!(err, RefreshError::CatalogShrank { .. }), "{err:?}");
        prop_assert_eq!(&answers(&engine, &wider), &before, "CatalogShrank left damage");

        // SharedEngine rebuild fallback: a mutator that *replaces* state
        // (shrinking the log) refuses the incremental path; the published
        // epoch must answer byte-identically to a from-scratch engine
        // over the same database, and the warning must fire.
        let shared = SharedEngine::new(seg.db.clone());
        let pinned = shared.load();
        let pinned_before = answers(pinned.engine(), pinned.db());
        let replacement = shorter.clone();
        let (_, report) = shared.ingest(move |db| *db = replacement);
        prop_assert!(report.rebuilt.is_some(), "replacement must refuse the incremental path");
        let warning = report.fallback_warning().expect("fallback warns");
        prop_assert!(warning.contains("rebuilding"), "{warning}");
        let epoch = shared.load();
        let fresh = Engine::new(epoch.db());
        prop_assert_eq!(
            answers(epoch.engine(), epoch.db()),
            answers(&fresh, epoch.db()),
            "rebuilt epoch diverges from a from-scratch engine"
        );
        // The pinned pre-fallback epoch is untouched.
        prop_assert_eq!(answers(pinned.engine(), pinned.db()), pinned_before);
    }
}

// ------------------------------------------------- sharing & publication

/// Fills the world with enough rows to span several sealed segments.
fn populated_world() -> World {
    let mut w = make_world(SEG_ROWS);
    for i in 0..40i64 {
        let row = LogRow {
            lid: i,
            user: i % 5,
            patient: i % 7,
            dept: (i % 3) as usize,
            date: i % 9,
        };
        let values = log_values(&w, &row);
        w.db.insert(w.log, values).unwrap();
    }
    for i in 0..20i64 {
        let row = EventRow {
            patient: i % 7,
            actor: i % 5,
            tag: (i % 3) as usize,
        };
        let values = event_values(&w, &row);
        w.db.insert(w.event, values).unwrap();
    }
    for i in 0..10i64 {
        w.db.insert(w.team, vec![Value::Int(i % 5), Value::Int((i + 1) % 5)])
            .unwrap();
    }
    w
}

#[test]
fn sealed_segments_are_pointer_shared_across_epochs() {
    let w = populated_world();
    let queries = query_classes(&w);
    let opts = EvalOptions::default();
    let shared = SharedEngine::new(w.db.clone());

    // Warm the epoch's caches, then pin it and record its answers.
    let pinned = shared.load();
    let pinned_answers: Vec<Vec<u32>> = queries
        .iter()
        .map(|(_, q)| {
            pinned
                .engine()
                .explained_rows(pinned.db(), q, opts)
                .unwrap()
        })
        .collect();
    assert!(
        !pinned.db().table(w.log).sealed_row_segments().is_empty(),
        "the populated world spans sealed segments"
    );

    let mut prev = shared.load();
    for round in 0..6i64 {
        shared.ingest(|db| {
            for i in 0..5 {
                let lid = 1000 + round * 5 + i;
                db.insert(
                    w.log,
                    vec![
                        Value::Int(lid),
                        Value::Int(lid % 5),
                        Value::Int(lid % 7),
                        Value::Null,
                        Value::Date(lid % 9),
                    ],
                )
                .unwrap();
            }
        });
        let next = shared.load();
        for tid in [w.log, w.event, w.team] {
            // Database row segments: every sealed segment of the prior
            // epoch is present by pointer in the successor.
            common::assert_sealed_segments_shared(
                prev.db().table(tid),
                next.db().table(tid),
                &format!("round {round}, table {}", prev.db().table(tid).name()),
            );
            // Engine snapshot columns likewise.
            let a = prev.engine().snapshot().table(tid);
            let b = next.engine().snapshot().table(tid);
            for (c, (ca, cb)) in a.cols.iter().zip(&b.cols).enumerate() {
                for (i, (sa, sb)) in ca
                    .sealed_segments()
                    .iter()
                    .zip(cb.sealed_segments())
                    .enumerate()
                {
                    assert!(
                        Arc::ptr_eq(sa, sb),
                        "round {round}: snapshot col {c} segment {i} copied, not shared"
                    );
                }
            }
        }
        prev = next;
    }

    // The pinned epoch answered from segments now shared with six newer
    // epochs — its answers must be byte-identical to what it said before
    // any of them existed (catches in-place mutation of a shared chunk).
    for ((name, q), before) in queries.iter().zip(&pinned_answers) {
        assert_eq!(
            &pinned
                .engine()
                .explained_rows(pinned.db(), q, opts)
                .unwrap(),
            before,
            "pinned epoch answer drifted: {name}"
        );
    }
    // And the latest epoch matches a flat oracle of everything ingested.
    let latest = shared.load();
    let fresh = Engine::new(latest.db());
    for (name, q) in &queries {
        assert_eq!(
            latest
                .engine()
                .explained_rows(latest.db(), q, opts)
                .unwrap(),
            fresh.explained_rows(latest.db(), q, opts).unwrap(),
            "latest epoch diverges from a fresh engine: {name}"
        );
    }
}

#[test]
fn publication_copies_scale_with_the_batch_not_the_database() {
    let w = populated_world();
    let shared = SharedEngine::new(w.db.clone());
    // Warm the caches the way a live auditor would.
    let opts = EvalOptions::default();
    for (_, q) in query_classes(&w) {
        let epoch = shared.load();
        let _ = epoch.engine().explained_rows(epoch.db(), &q, opts).unwrap();
    }

    let batch = |round: i64| {
        move |db: &mut Database| {
            for i in 0..8i64 {
                let lid = 10_000 + round * 8 + i;
                db.insert(
                    w.log,
                    vec![
                        Value::Int(lid),
                        Value::Int(lid % 5),
                        Value::Int(lid % 7),
                        Value::Null,
                        Value::Date(lid % 9),
                    ],
                )
                .unwrap();
            }
        }
    };

    // Publication cost of one batch on the small database (median of a
    // few rounds, so tail-fill phase doesn't skew a single reading).
    let cost_of = |shared: &SharedEngine, round: &mut i64, rounds: i64| -> u64 {
        let mut costs = Vec::new();
        for _ in 0..rounds {
            reset_copied_bytes();
            shared.ingest(batch(*round));
            costs.push(copied_bytes());
            *round += 1;
        }
        costs.sort_unstable();
        costs[costs.len() / 2]
    };
    let mut round = 0i64;
    let small_cost = cost_of(&shared, &mut round, 5);

    // Grow the database ~10x, then measure the same batch again.
    let before_rows = shared.load().db().table(w.log).len();
    for _ in 0..110 {
        shared.ingest(batch(round));
        round += 1;
    }
    let grown_rows = shared.load().db().table(w.log).len();
    assert!(
        grown_rows >= before_rows * 10,
        "{before_rows} -> {grown_rows}"
    );
    let large_cost = cost_of(&shared, &mut round, 5);

    // O(batch): the 10x database publishes the same batch for (nearly)
    // the same copied bytes. Allow 3x slack for tail-fill phase noise.
    assert!(
        large_cost <= small_cost.max(1) * 3,
        "publication copies grew with the database: {small_cost} -> {large_cost} bytes"
    );

    // >=5x below what flat storage would copy per epoch: every Value
    // cell (database clone) plus every interned u32 cell (engine fork).
    let epoch = shared.load();
    let mut flat_bytes = 0u64;
    for tid in [w.log, w.event, w.team] {
        let t = epoch.db().table(tid);
        flat_bytes += (t.len() * t.schema().arity()) as u64 * std::mem::size_of::<Value>() as u64;
        let it = epoch.engine().snapshot().table(tid);
        flat_bytes += (it.n_rows * it.cols.len()) as u64 * 4;
    }
    assert!(
        large_cost * 5 <= flat_bytes,
        "expected >=5x reduction: segmented {large_cost} vs flat {flat_bytes} bytes"
    );
}
