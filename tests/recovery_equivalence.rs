//! The durability proof: a differential kill-and-restart suite over the
//! segment pile.
//!
//! Every test drives the same deterministic ingest workload twice — once
//! through a purely in-memory [`SharedEngine`] (the oracle) and once
//! through an engine whose persist hook appends to a [`DurableStore`] —
//! then "crashes" (tears the store's media mid-write with [`FaultAfter`],
//! or just drops the store), "restarts" (re-opens the surviving bytes),
//! replays the recovered batches one publication at a time, and asserts
//! **byte-identical** audit answers (`explained_rows`, `support`, and the
//! recall/precision confusion counts) for every surviving epoch against
//! the oracle's transcript of the same epoch.
//!
//! The contract under test, for every torn byte budget:
//!
//! * recovery never panics and never fails on a torn tail — it truncates
//!   to the last valid record and reports what it dropped;
//! * the recovered batches are a **prefix** of the batches sent (no holes,
//!   no reordering, no invented rows);
//! * under [`Durability::Strict`] that prefix covers every batch whose
//!   append was acknowledged — a crash loses only unacknowledged work;
//! * replaying the prefix reproduces the oracle's answers bit for bit.
//!
//! A separate corruption matrix feeds the opener truncated, bit-flipped,
//! zero-length, future-versioned, and alien files: each lands in a typed
//! error or a clean truncate-and-report, never a panic.

mod common;

use common::AuditWorld;
use eba::audit::metrics;
use eba::relational::pile::{default_checkpoint_rows, plain_batch, replay_into};
use eba::relational::{
    Batch, Durability, DurableStore, Epoch, EvalOptions, FaultAfter, Media, PileError, PlainValue,
    SharedEngine, SharedMem, Value,
};
use std::path::PathBuf;

const BATCHES: usize = 6;
const BATCH_ROWS: usize = 3;
/// Small enough that the six-batch workload checkpoints several times, so
/// the byte-budget sweep tears pile records as well as WAL records.
const CHECKPOINT_ROWS: usize = 4;

// ---------------------------------------------------------------- harness

/// The full audit answer for one epoch, rendered to text: per suite query
/// the support count and the exact explained row ids, plus the confusion
/// counts behind recall/precision. Two epochs answer identically iff
/// their transcripts are byte-identical.
fn transcript(world: &AuditWorld, epoch: &Epoch) -> String {
    let mut out = String::new();
    for (i, q) in world.suite().iter().enumerate() {
        let rows = epoch
            .engine()
            .explained_rows(epoch.db(), q, EvalOptions::default())
            .expect("suite query evaluates");
        let support = epoch
            .engine()
            .support(epoch.db(), q, EvalOptions::default())
            .expect("suite query evaluates");
        out.push_str(&format!("q{i} support {support} rows {rows:?}\n"));
    }
    let templates: Vec<_> = world.explainer.templates().iter().collect();
    let c = metrics::evaluate_at(&world.spec, &templates, None, None, epoch);
    out.push_str(&format!(
        "confusion real {}/{} fake {}/{} with_events {}\n",
        c.real_explained, c.real_total, c.fake_explained, c.fake_total, c.real_with_events
    ));
    out
}

/// [`transcript`] over a sharded service's pinned epoch **vector** — the
/// scatter-gather answers must render byte-identically to the
/// single-epoch transcript of the same logical database.
fn transcript_shards(world: &AuditWorld, epochs: &eba::relational::EpochVec) -> String {
    let mut out = String::new();
    for (i, q) in world.suite().iter().enumerate() {
        let rows = epochs
            .explained_rows(q, EvalOptions::default())
            .expect("suite query evaluates");
        let support = epochs
            .support(q, EvalOptions::default())
            .expect("suite query evaluates");
        out.push_str(&format!("q{i} support {support} rows {rows:?}\n"));
    }
    let templates: Vec<_> = world.explainer.templates().iter().collect();
    let c = metrics::evaluate_at_shards(&world.spec, &templates, None, None, epochs);
    out.push_str(&format!(
        "confusion real {}/{} fake {}/{} with_events {}\n",
        c.real_explained, c.real_total, c.fake_explained, c.fake_total, c.real_with_events
    ));
    out
}

/// Seed for batch `b` — shared by the oracle and the durable run so both
/// ingest identical rows.
fn batch_seed(b: usize) -> u64 {
    0xFA11 + b as u64
}

/// The oracle: ingest every batch through a volatile engine and record
/// the transcript after each publication. `out[k]` is the answer after
/// `k` batches (`out[0]` is the base epoch).
fn oracle_transcripts(world: &AuditWorld) -> Vec<String> {
    let shared = SharedEngine::new(world.hospital.db.clone());
    let mut out = vec![transcript(world, &shared.load())];
    for b in 0..BATCHES {
        shared.ingest(|db| world.inject_batch(db, BATCH_ROWS, batch_seed(b)));
        out.push(transcript(world, &shared.load()));
    }
    out
}

/// Ingests the workload through an engine whose persist hook appends to a
/// [`DurableStore`] over the given media, stopping at the first error —
/// the simulated crash. Returns how many batches were acknowledged
/// (persisted *and* published). With a torn media budget this can be
/// anything from 0 to [`BATCHES`].
fn durable_run(
    world: &AuditWorld,
    pile_media: Box<dyn Media>,
    wal_media: Box<dyn Media>,
    policy: Durability,
) -> usize {
    let Ok((mut store, recovered, _)) =
        DurableStore::open_on(pile_media, wal_media, "sweep", policy, CHECKPOINT_ROWS)
    else {
        return 0; // the tear hit the file headers — nothing was ever acked
    };
    assert!(recovered.is_empty(), "the sweep starts from empty media");
    let shared = SharedEngine::new(world.hospital.db.clone());
    let mut acked = 0;
    for b in 0..BATCHES {
        let result = shared.ingest_with(
            |db| {
                let first = db.table(world.spec.table).len() as u64;
                world.inject_batch(db, BATCH_ROWS, batch_seed(b));
                first
            },
            |db, &first, seq| {
                let table = db.table(world.spec.table);
                let rows: Vec<Vec<Value>> = (first..table.len() as u64)
                    .map(|r| table.row(r as u32).to_vec())
                    .collect();
                let name = table.schema().name.clone();
                store.append(plain_batch(db, seq, &name, first, &rows))
            },
        );
        match result {
            Ok(_) => acked += 1,
            Err(_) => break, // crash: the engine published nothing for this batch
        }
    }
    acked
}

/// The restart: re-open the surviving bytes (no fault injection — the
/// crash already happened), replay the recovered batches one publication
/// at a time, and return the per-epoch transcripts plus how many batches
/// recovery produced.
fn recover_and_replay(
    world: &AuditWorld,
    pile: &SharedMem,
    wal: &SharedMem,
) -> (Vec<String>, usize) {
    let (_store, batches, report) = DurableStore::open_on(
        Box::new(pile.clone()),
        Box::new(wal.clone()),
        "restart",
        Durability::Strict,
        CHECKPOINT_ROWS,
    )
    .expect("recovery tolerates torn tails; it must not fail");
    assert_eq!(report.batches(), batches.len(), "{}", report.summary());
    let shared = SharedEngine::new(world.hospital.db.clone());
    let mut transcripts = vec![transcript(world, &shared.load())];
    for batch in &batches {
        shared.ingest(|db| {
            replay_into(db, std::slice::from_ref(batch)).expect("recovered batches replay")
        });
        transcripts.push(transcript(world, &shared.load()));
    }
    (transcripts, batches.len())
}

// ------------------------------------------------- the differential sweep

/// Clean shutdown first: the untorn store recovers everything and the
/// replayed engine answers byte-identically to the oracle at every epoch.
#[test]
fn clean_restart_reproduces_every_epoch_byte_identically() {
    let world = AuditWorld::tiny(11);
    let oracle = oracle_transcripts(&world);
    let (pile, wal) = (SharedMem::new(), SharedMem::new());
    let acked = durable_run(
        &world,
        Box::new(pile.clone()),
        Box::new(wal.clone()),
        Durability::Strict,
    );
    assert_eq!(acked, BATCHES, "no faults: every batch is acknowledged");

    let (transcripts, recovered) = recover_and_replay(&world, &pile, &wal);
    assert_eq!(recovered, BATCHES);
    assert_eq!(
        transcripts, oracle,
        "every recovered epoch answers exactly like the oracle"
    );
}

/// The headline fault-injection sweep: tear the media at byte budgets
/// spanning the whole write history. For every tear point, restart and
/// assert the prefix + acknowledged-durability + byte-identity contract.
#[test]
fn torn_writes_recover_an_acknowledged_prefix_with_identical_answers() {
    let world = AuditWorld::tiny(11);
    let oracle = oracle_transcripts(&world);

    // Size the sweep from an untorn run's footprint.
    let (pile, wal) = (SharedMem::new(), SharedMem::new());
    durable_run(
        &world,
        Box::new(pile.clone()),
        Box::new(wal.clone()),
        Durability::Strict,
    );
    let footprint = (pile.bytes().len() + wal.bytes().len()) as u64;
    assert!(footprint > 0);

    let sweep: Vec<u64> = (0..32)
        .map(|i| footprint * i / 31)
        .chain([1, 7, 13, 12, 24]) // header-sized and mid-header tears
        .collect();
    let mut partial_recoveries = 0usize;
    for budget in sweep {
        let (pile, wal) = (SharedMem::new(), SharedMem::new());
        // Each file gets its own budget: WAL tears exercise the per-batch
        // path, pile tears the checkpoint path, small budgets the headers.
        let acked = durable_run(
            &world,
            Box::new(FaultAfter::new(pile.clone(), budget)),
            Box::new(FaultAfter::new(wal.clone(), budget)),
            Durability::Strict,
        );
        let (transcripts, recovered) = recover_and_replay(&world, &pile, &wal);

        // Strict policy: an acknowledged batch is on disk before the
        // reply, so recovery covers at least the acked prefix. (It may
        // cover more: a record can land fully and only its fsync fail.)
        assert!(
            recovered >= acked,
            "budget {budget}: acked {acked} batches but recovered only {recovered}"
        );
        assert!(recovered <= BATCHES, "budget {budget}: invented batches");
        assert_eq!(
            transcripts,
            oracle[..=recovered],
            "budget {budget}: recovered epochs must answer like the oracle prefix"
        );
        if recovered < BATCHES {
            partial_recoveries += 1;
        }
    }
    assert!(
        partial_recoveries > 0,
        "the sweep never produced a torn state — budgets are miscalibrated"
    );
}

/// Relaxed fsync weakens *which* prefix survives (acknowledged batches in
/// the un-checkpointed tail may be lost), but never the prefix property
/// itself: whatever is recovered still answers byte-identically.
#[test]
fn relaxed_policy_still_recovers_a_consistent_prefix() {
    let world = AuditWorld::tiny(23);
    let oracle = oracle_transcripts(&world);
    let (pile, wal) = (SharedMem::new(), SharedMem::new());
    durable_run(
        &world,
        Box::new(pile.clone()),
        Box::new(wal.clone()),
        Durability::Relaxed,
    );
    let footprint = (pile.bytes().len() + wal.bytes().len()) as u64;
    for budget in [footprint / 5, footprint / 2, footprint - 9] {
        let (pile, wal) = (SharedMem::new(), SharedMem::new());
        durable_run(
            &world,
            Box::new(FaultAfter::new(pile.clone(), budget)),
            Box::new(FaultAfter::new(wal.clone(), budget)),
            Durability::Relaxed,
        );
        let (transcripts, recovered) = recover_and_replay(&world, &pile, &wal);
        assert!(recovered <= BATCHES);
        assert_eq!(
            transcripts,
            oracle[..=recovered],
            "budget {budget}: relaxed recovery still yields an exact oracle prefix"
        );
    }
}

// ------------------------------------------------- the corruption matrix

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eba-recovery-{name}-{}", std::process::id()))
}

/// Removes the pile and its WAL sidecar if a previous run left them.
fn clean(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(DurableStore::wal_path(path));
}

/// Writes `n` small single-table batches through a store on real files,
/// then drops it (simulating a kill between syscalls is the sweep's job —
/// here we corrupt the bytes by hand afterwards).
fn seed_store(path: &PathBuf, n: usize) {
    clean(path);
    let (mut store, _, _) =
        DurableStore::open(path, Durability::Strict, default_checkpoint_rows()).unwrap();
    for b in 0..n as u64 {
        store
            .append(Batch {
                seq: b + 1,
                table: "Log".into(),
                first_row: b * 2,
                rows: vec![
                    vec![PlainValue::Int(b as i64), PlainValue::Str(format!("u{b}"))],
                    vec![PlainValue::Int(-1), PlainValue::Null],
                ],
            })
            .unwrap();
    }
}

#[test]
fn truncated_wal_recovers_the_prefix_and_reports_the_drop() {
    let path = scratch("truncated-wal");
    seed_store(&path, 4);
    let wal = DurableStore::wal_path(&path);
    let len = std::fs::metadata(&wal).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(len - 5)
        .unwrap();

    let (_, batches, report) =
        DurableStore::open(&path, Durability::Strict, default_checkpoint_rows()).unwrap();
    assert_eq!(batches.len(), 3, "the torn fourth record is dropped");
    assert!(report.wal_truncated_bytes > 0, "{}", report.summary());
    assert!(report.lost_data(), "the drop is reported, not silent");
    clean(&path);
}

#[test]
fn bit_flipped_record_truncates_at_the_corruption_and_reports_it() {
    let path = scratch("bit-flip");
    seed_store(&path, 4);
    let wal = DurableStore::wal_path(&path);
    let mut bytes = std::fs::read(&wal).unwrap();
    // Flip one payload bit in the third record's region (past the 12-byte
    // header and two ~40-byte records), far from the frame lengths.
    let at = bytes.len() - 20;
    bytes[at] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();

    let (_, batches, report) =
        DurableStore::open(&path, Durability::Strict, default_checkpoint_rows()).unwrap();
    assert!(
        batches.len() < 4,
        "the corrupted record and everything after it are dropped"
    );
    assert!(report.lost_data(), "{}", report.summary());
    // The survivors are still the exact prefix.
    for (i, b) in batches.iter().enumerate() {
        assert_eq!(b.first_row, i as u64 * 2);
    }
    clean(&path);
}

#[test]
fn zero_length_files_open_as_an_empty_store() {
    let path = scratch("zero-len");
    clean(&path);
    std::fs::write(&path, b"").unwrap();
    std::fs::write(DurableStore::wal_path(&path), b"").unwrap();
    let (store, batches, report) =
        DurableStore::open(&path, Durability::Strict, default_checkpoint_rows()).unwrap();
    assert!(batches.is_empty());
    assert!(!report.lost_data());
    drop(store);
    clean(&path);
}

#[test]
fn future_format_version_is_a_typed_error_not_a_panic() {
    let path = scratch("future-version");
    clean(&path);
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"EBAPILE1");
    bytes.extend_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let err = DurableStore::open(&path, Durability::Strict, default_checkpoint_rows())
        .err()
        .expect("a future format version must refuse to open");
    match err {
        PileError::UnsupportedVersion {
            found, supported, ..
        } => {
            assert_eq!(found, 99);
            assert_eq!(supported, 1);
        }
        other => panic!("expected UnsupportedVersion, got {other}"),
    }
    clean(&path);
}

#[test]
fn alien_file_is_rejected_as_not_a_store() {
    let path = scratch("alien");
    clean(&path);
    std::fs::write(&path, b"#!/bin/sh\necho this is not a pile\n").unwrap();
    let err = DurableStore::open(&path, Durability::Strict, default_checkpoint_rows())
        .err()
        .expect("an alien file must refuse to open");
    assert!(
        matches!(err, PileError::NotAStore { .. }),
        "expected NotAStore, got {err}"
    );
    clean(&path);
}

#[test]
fn crc_valid_garbage_payload_is_a_typed_corruption_error() {
    let path = scratch("crc-valid-garbage");
    clean(&path);
    // A frame whose CRC checks out but whose payload is not a batch: the
    // scanner accepts the record, the decoder must refuse with `Corrupt`
    // (truncating would hide an encoder bug, not a crash).
    let payload = b"\x01garbage that is not a batch encoding";
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"EBAPILE1");
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&eba::relational::wal::crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    std::fs::write(&path, &bytes).unwrap();
    let err = DurableStore::open(&path, Durability::Strict, default_checkpoint_rows())
        .err()
        .expect("an undecodable CRC-valid record must be a typed error");
    assert!(
        matches!(err, PileError::Corrupt { .. }),
        "expected Corrupt, got {err}"
    );
    clean(&path);
}

// -------------------------------------------- real files, real service

/// The same differential restart check through the public service layer
/// and the on-disk files the CLI uses: ingest through
/// [`eba::server::AuditService`], drop it, restart over the same pile,
/// and compare the full transcript with a never-restarted oracle service.
#[test]
fn durable_service_restart_matches_a_never_restarted_oracle() {
    use eba::server::protocol::IngestRow;
    use eba::server::AuditService;

    let path = scratch("service");
    clean(&path);
    let rows = |base: i64| -> Vec<IngestRow> {
        (0..3)
            .map(|i| IngestRow {
                user: 1 + (base + i) % 7,
                patient: 1 + (base * 3 + i) % 11,
                day: Some(1 + (base + i) % 5),
            })
            .collect()
    };

    // Oracle: one service, never restarted.
    let world = AuditWorld::tiny(31);
    let oracle =
        AuditService::from_hospital(eba::synth::Hospital::generate(eba::synth::SynthConfig {
            seed: 31,
            ..eba::synth::SynthConfig::tiny()
        }));
    for b in 0..4 {
        oracle.ingest_rows(&rows(b)).unwrap();
    }

    // Durable twin: restart after every ingest.
    for b in 0..4 {
        let h = eba::synth::Hospital::generate(eba::synth::SynthConfig {
            seed: 31,
            ..eba::synth::SynthConfig::tiny()
        });
        let svc = AuditService::from_hospital_durable(h, &path, Durability::Strict).unwrap();
        assert!(!svc.recovery_report().unwrap().lost_data());
        svc.ingest_rows(&rows(b)).unwrap();
    }
    let h = eba::synth::Hospital::generate(eba::synth::SynthConfig {
        seed: 31,
        ..eba::synth::SynthConfig::tiny()
    });
    let survivor = AuditService::from_hospital_durable(h, &path, Durability::Strict).unwrap();
    assert_eq!(survivor.recovery_report().unwrap().batches(), 4);

    let oracle_answers = transcript_shards(&world, &oracle.sharded().load());
    assert_eq!(
        transcript_shards(&world, &survivor.sharded().load()),
        oracle_answers,
        "a service restarted after every batch answers exactly like one that never died"
    );

    // The durable layout is shard-agnostic: the pile records batches in
    // global row order, so reopening the same bytes at *other* shard
    // counts recovers the same acknowledged history and the same answers
    // — and the recovery report names every shard's slice of it.
    for n in [2, 5] {
        let h = eba::synth::Hospital::generate(eba::synth::SynthConfig {
            seed: 31,
            ..eba::synth::SynthConfig::tiny()
        });
        let resharded =
            AuditService::from_hospital_durable_sharded(h, &path, Durability::Strict, n).unwrap();
        let report = resharded.recovery_report().unwrap();
        assert_eq!(report.batches(), 4, "{n} shards");
        assert_eq!(
            report
                .notes
                .iter()
                .filter(|note| note.starts_with("shard "))
                .count(),
            n,
            "recovery reports every shard: {:?}",
            report.notes
        );
        assert_eq!(resharded.shard_count(), n);
        assert_eq!(
            transcript_shards(&world, &resharded.sharded().load()),
            oracle_answers,
            "reopening at {n} shards changed the recovered answers"
        );
    }
    clean(&path);
}
