//! The reproduction's shape claims must hold across random seeds, not just
//! the checked-in one — otherwise the "reproduced shapes" would be seed
//! flukes. This sweep rebuilds the (tiny) scenario under several seeds and
//! re-asserts the core orderings of Figures 8/9/12/14.

use eba::experiments::{fig_events, fig_groups, fig_handcrafted, fig_predictive, Scenario};
use eba::synth::SynthConfig;

fn scenario_with_seed(seed: u64) -> Scenario {
    Scenario::build(SynthConfig {
        seed,
        ..SynthConfig::tiny()
    })
}

const SEEDS: [u64; 3] = [7, 1234, 987_654_321];

#[test]
fn event_coverage_always_exceeds_handcrafted_recall() {
    for seed in SEEDS {
        let s = scenario_with_seed(seed);
        let coverage = fig_events::fig08(&s).value("All", 0).unwrap();
        let recall = fig_handcrafted::fig09(&s).value("All w/Dr.", 0).unwrap();
        assert!(
            recall < coverage,
            "seed {seed}: recall {recall} ≥ coverage {coverage}"
        );
        assert!(coverage > 0.4, "seed {seed}: coverage {coverage}");
    }
}

#[test]
fn group_depth_tradeoff_holds_across_seeds() {
    for seed in SEEDS {
        let s = scenario_with_seed(seed);
        let fig = fig_groups::fig12(&s);
        let d0r = fig.value("Depth 0", 1).unwrap();
        let d1r = fig.value("Depth 1", 1).unwrap();
        let d0p = fig.value("Depth 0", 0).unwrap();
        let d1p = fig.value("Depth 1", 0).unwrap();
        assert!(d0r >= d1r - 1e-9, "seed {seed}: depth-0 recall not maximal");
        assert!(
            d1p >= d0p - 1e-9,
            "seed {seed}: depth-1 precision {d1p} below depth-0 {d0p}"
        );
        // Groups beat department codes on recall.
        let dept = fig.value("Same Dept.", 1).unwrap();
        assert!(
            d1r >= dept - 1e-9,
            "seed {seed}: dept codes {dept} beat groups {d1r}"
        );
    }
}

#[test]
fn mined_recall_rises_with_length_across_seeds() {
    for seed in SEEDS {
        let s = scenario_with_seed(seed);
        let fig = fig_predictive::fig14(&s);
        let lengths: Vec<_> = fig
            .rows
            .iter()
            .filter(|r| r.label.starts_with("Length"))
            .collect();
        assert!(lengths.len() >= 2, "seed {seed}");
        let first = lengths.first().unwrap().values[1].unwrap();
        let last = lengths.last().unwrap().values[1].unwrap();
        assert!(
            last >= first,
            "seed {seed}: recall fell with length ({first} → {last})"
        );
    }
}

#[test]
fn repeat_accesses_dominate_single_categories_across_seeds() {
    for seed in SEEDS {
        let s = scenario_with_seed(seed);
        let fig = fig_handcrafted::fig07(&s);
        let repeat = fig.value("Repeat Access", 0).unwrap();
        for label in ["Appt w/Dr.", "Visit w/Dr.", "Doc. w/Dr."] {
            let v = fig.value(label, 0).unwrap();
            assert!(
                repeat >= v,
                "seed {seed}: {label} ({v}) exceeded repeats ({repeat})"
            );
        }
    }
}
