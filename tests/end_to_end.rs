//! Full-pipeline integration tests: synthesize → cluster → install groups →
//! mine → explain → audit, checking the paper's qualitative claims hold.

use eba::audit::groups::{collaborative_groups, install_groups};
use eba::audit::handcrafted::{same_group, EventTable, HandcraftedTemplates};
use eba::audit::{metrics, split, Explainer};
use eba::cluster::HierarchyConfig;
use eba::core::{mine_one_way, ExplanationTemplate, LogSpec, MiningConfig};
use eba::synth::{AccessReason, Hospital, SynthConfig};

fn pipeline(config: SynthConfig) -> (Hospital, LogSpec, Explainer) {
    let mut hospital = Hospital::generate(config);
    let spec = LogSpec::conventional(&hospital.db).unwrap();
    let train = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
    let groups =
        collaborative_groups(&hospital.db, &train, HierarchyConfig::default(), 500).unwrap();
    install_groups(&mut hospital.db, &groups).unwrap();

    let handcrafted = HandcraftedTemplates::build(&hospital.db, &spec).unwrap();
    let mut templates: Vec<ExplanationTemplate> = handcrafted.all().into_iter().cloned().collect();
    for e in EventTable::ALL {
        templates.push(same_group(&hospital.db, &spec, e, Some(1)).unwrap());
    }
    (hospital, spec, Explainer::new(templates))
}

#[test]
fn most_accesses_are_explained() {
    let (hospital, spec, explainer) = pipeline(SynthConfig::small());
    let explained = explainer.explained_rows(&hospital.db, &spec);
    let frac = explained.len() as f64 / hospital.log_len() as f64;
    // The paper's headline is >94% on complete data; our synthetic world
    // has a deliberate unexplainable residue (floats + truncation).
    assert!(frac > 0.80, "only {frac:.3} of accesses explained");
}

#[test]
fn explainability_matches_ground_truth_labels() {
    let (hospital, spec, explainer) = pipeline(SynthConfig::small());
    let explained = explainer.explained_rows(&hospital.db, &spec);
    let mut by_reason: std::collections::HashMap<AccessReason, (usize, usize)> =
        std::collections::HashMap::new();
    for rid in 0..hospital.log_len() as u32 {
        let entry = by_reason.entry(hospital.reason_of(rid)).or_default();
        entry.1 += 1;
        if explained.contains(&rid) {
            entry.0 += 1;
        }
    }
    // Direct-care accesses are almost all explained.
    for reason in [
        AccessReason::PrimaryCare,
        AccessReason::DocumentAuthor,
        AccessReason::ConsultOrder,
        AccessReason::MedicationAdmin,
        AccessReason::Repeat,
    ] {
        if let Some(&(expl, total)) = by_reason.get(&reason) {
            let frac = expl as f64 / total.max(1) as f64;
            assert!(frac > 0.65, "{reason:?}: only {expl}/{total} explained");
        }
    }
    // Float assists are mostly unexplained (they have no recorded reason;
    // only coincidences and their own repeats are covered).
    let &(fl_expl, fl_total) = by_reason.get(&AccessReason::FloatAssist).unwrap();
    assert!(
        (fl_expl as f64) < 0.5 * fl_total as f64,
        "floats over-explained: {fl_expl}/{fl_total}"
    );
}

#[test]
fn snoops_surface_as_unexplained() {
    let config = SynthConfig {
        n_snoop_accesses: 30,
        ..SynthConfig::small()
    };
    let (hospital, spec, explainer) = pipeline(config);
    let unexplained: std::collections::HashSet<u32> = explainer
        .unexplained_rows(&hospital.db, &spec)
        .into_iter()
        .collect();
    let snoops: Vec<u32> = (0..hospital.log_len() as u32)
        .filter(|&r| hospital.reason_of(r) == AccessReason::Snoop)
        .collect();
    let caught = snoops.iter().filter(|r| unexplained.contains(r)).count();
    // Most snoops are flagged; a few coincide with legitimate relationships
    // (exactly the residual risk the paper acknowledges).
    assert!(
        caught * 2 > snoops.len(),
        "only {caught}/{} snoops flagged",
        snoops.len()
    );
    // And the review set is much smaller than the log.
    assert!(unexplained.len() * 4 < hospital.log_len());
}

#[test]
fn mined_templates_include_supported_handcrafted_ones() {
    // §5.3.3: "our mining algorithms were able to discover all the
    // supported hand-crafted explanation templates".
    let (hospital, spec, _) = pipeline(SynthConfig::small());
    let mining_spec = spec.with_filters(split::days_first(&hospital.log_cols, 1, 6));
    let config = MiningConfig {
        support_frac: 0.01,
        max_length: 4,
        max_tables: 3,
        ..MiningConfig::default()
    };
    let mined = mine_one_way(&hospital.db, &mining_spec, &config);
    let mined_keys = mined.key_set();

    let handcrafted = HandcraftedTemplates::build(&hospital.db, &spec).unwrap();
    let mut expected: Vec<(&str, ExplanationTemplate)> = vec![
        ("Appt w/Dr.", handcrafted.appt_with_dr.clone()),
        ("Doc. w/Dr.", handcrafted.doc_with_dr.clone()),
        ("Lab result", handcrafted.lab_result.clone()),
        ("Med. signed", handcrafted.med_sign.clone()),
        ("Radiology read", handcrafted.rad_read.clone()),
    ];
    for e in EventTable::ALL {
        expected.push((
            "group (any depth)",
            same_group(&hospital.db, &spec, e, None).unwrap(),
        ));
    }
    for (name, t) in expected {
        let q = t.path.to_chain_query(&mining_spec);
        let support = q.support(&hospital.db, Default::default()).unwrap();
        if support < mined.threshold {
            continue; // below threshold (like the paper's visit template)
        }
        let key = eba::core::canonical::canonical_key(&t.path, &mining_spec);
        assert!(
            mined_keys.contains(&key),
            "supported hand-crafted template `{name}` (support {support}) was not mined"
        );
    }
}

#[test]
fn evaluation_metrics_are_consistent() {
    let (hospital, spec, explainer) = pipeline(SynthConfig::tiny());
    let day7 = spec.with_filters(split::days_first(&hospital.log_cols, 7, 7));
    let refs: Vec<&ExplanationTemplate> = explainer.templates().iter().collect();
    let c = metrics::evaluate(&hospital.db, &day7, &refs, None, None);
    assert_eq!(c.fake_total, 0);
    assert!(c.real_explained <= c.real_total);
    assert!((0.0..=1.0).contains(&c.recall()));
    assert!((0.0..=1.0).contains(&c.precision()));
}

#[test]
fn determinism_across_identical_runs() {
    let a = pipeline(SynthConfig::tiny());
    let b = pipeline(SynthConfig::tiny());
    assert_eq!(a.0.log_len(), b.0.log_len());
    let ra = a.2.explained_rows(&a.0.db, &a.1);
    let rb = b.2.explained_rows(&b.0.db, &b.1);
    assert_eq!(ra, rb);
}
