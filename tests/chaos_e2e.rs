//! The network chaos suite: `eba-serve` under connection storms, torn
//! frames, half-written batches, stalled peers, and writer saturation.
//!
//! Every fault is injected at the byte level — raw sockets and the
//! [`common::chaos::ChaosProxy`] — and the invariants are the overload
//! contract from the limits design:
//!
//! * **zero silent drops**: every rejected connection or batch gets a
//!   typed `ERR busy` / `ERR toolong` / `ERR overloaded` reply;
//! * **zero leaked workers**: every torn/stalled session is reaped;
//! * **acked ⊆ durable**: an acknowledged `INGEST` survives on disk, a
//!   cut-off one leaves no trace, a torn *reply* is atomic (all or
//!   nothing in the published log — never a partial batch);
//! * **reads never degrade**: pinned sessions stay byte-identical
//!   through every storm.

use eba::relational::pile::default_checkpoint_rows;
use eba::relational::{Durability, DurableStore, Value};
use eba::server::{
    AuditService, Client, ClientConfig, IngestRow, RetryPolicy, Server, ServerConfig,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

mod common;

use common::chaos::{ChaosProxy, Plan};

/// Polls `cond` until it holds or the deadline passes.
fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for: {what}");
}

/// A batch whose rows carry a recognizable user marker, so the published
/// log and the reopened pile can be audited for exactly which batches
/// made it in.
fn marked_batch(marker: i64, rows: usize) -> Vec<IngestRow> {
    (0..rows)
        .map(|i| IngestRow {
            user: marker + i as i64,
            patient: 10_000 + i as i64,
            day: Some(1 + (i as i64 % 3)),
        })
        .collect()
}

/// How many rows of `marked_batch(marker, rows)` are in the published
/// log.
fn marker_rows_published(service: &AuditService, marker: i64, rows: usize) -> usize {
    let epochs = service.sharded().load();
    let user_col = service.cols.user;
    epochs
        .shards()
        .iter()
        .map(|shard| {
            let log = shard.db().table(service.spec.table);
            (0..log.len() as u32)
                .filter(|&rid| {
                    let Value::Int(u) = log.row(rid)[user_col] else {
                        return false;
                    };
                    u >= marker && u < marker + rows as i64
                })
                .count()
        })
        .sum()
}

/// Tentpole invariant 1: a connection storm at 4× the cap. Every
/// over-cap connection gets a typed `ERR busy` (with a retry hint) and a
/// close — never a silent drop — the cap is never exceeded, the pinned
/// session stays byte-identical throughout, the shed lands on the
/// operator record, and every slot is reclaimed afterwards.
#[test]
fn connection_storm_gets_typed_busy_and_leaks_nothing() {
    const CAP: usize = 6;
    const STORM: usize = 24;
    let config = ServerConfig {
        max_connections: CAP,
        ..ServerConfig::default()
    };
    let server =
        Server::spawn_with(AuditService::tiny_synthetic(3), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    // The pinned observer occupies one slot before the storm.
    let mut pinned = Client::connect(addr).expect("pinned session");
    let baseline = pinned.send("METRICS").expect("metrics").render();

    let admitted: Mutex<Vec<Client>> = Mutex::new(Vec::new());
    let busy = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..STORM {
            s.spawn(|| match Client::connect(addr) {
                Ok(client) => admitted.lock().unwrap().push(client),
                Err(e) => {
                    // The refusal is typed, hinted, and never silent.
                    let text = e.to_string();
                    assert!(text.contains("ERR busy "), "untyped rejection: {text}");
                    assert!(text.contains("retry-after-ms"), "{text}");
                    busy.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    let mut admitted = admitted.into_inner().unwrap();
    // Admitted sessions hold their slots for the whole storm, so the cap
    // is exact: CAP - 1 storm connections in, the rest typed away.
    assert_eq!(admitted.len(), CAP - 1, "cap overrun or under-admission");
    assert_eq!(busy.load(Ordering::SeqCst), STORM - (CAP - 1));
    assert_eq!(server.live_sessions(), CAP);

    // Reads never degraded: the pinned session is byte-identical and
    // every admitted session answers.
    assert_eq!(pinned.send("METRICS").expect("metrics").render(), baseline);
    for c in &mut admitted {
        assert_eq!(c.send("PING").expect("ping").head, "OK pong");
    }
    // The storm is on the operator record.
    assert!(
        server
            .service()
            .warnings()
            .iter()
            .any(|w| w.contains("connection shed at the cap")),
        "shed storm left no operator trace"
    );

    // Every slot comes back once the storm connections close.
    drop(admitted);
    eventually("storm slots reclaimed", || server.live_sessions() == 1);
    let mut after = Client::connect(addr).expect("slot free after the storm");
    assert_eq!(after.send("PING").expect("ping").head, "OK pong");
    assert_eq!(pinned.send("METRICS").expect("metrics").render(), baseline);
}

/// Tentpole invariant 2: byte-level network faults against a durable
/// server. Torn reply frames, requests cut mid-`INGEST`, and stalled
/// links never corrupt state: acknowledged batches are fully published
/// and fully on disk, cut batches leave no trace, torn-reply batches are
/// atomic, and every faulted session is reaped.
#[test]
fn byte_level_faults_never_corrupt_durable_state() {
    let dir = std::env::temp_dir().join(format!("eba-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pile = dir.join("pile.seg");

    let service = AuditService::from_hospital_durable(
        common::AuditWorld::tiny(71).hospital,
        &pile,
        Durability::Strict,
    )
    .expect("open durable store");
    let config = ServerConfig {
        // Short deadlines so cut-off sessions die inside the test.
        read_timeout: Some(Duration::from_secs(1)),
        write_timeout: Some(Duration::from_secs(1)),
        ..ServerConfig::default()
    };
    let mut server = Server::spawn_with(service, "127.0.0.1:0", config).expect("bind");
    let proxy = ChaosProxy::spawn(server.local_addr()).expect("proxy");

    const ROWS: usize = 12;
    let marker = |round: usize| 900_000 + (round as i64) * 1_000;
    let mut acked: Vec<usize> = Vec::new(); // rounds whose reply said OK
    let mut cut: Vec<usize> = Vec::new(); // rounds cut client→server
    let mut torn: Vec<usize> = Vec::new(); // rounds torn server→client

    for round in 0..8usize {
        let rows = marked_batch(marker(round), ROWS);
        match round % 4 {
            // Clean forwarding: the ack is authoritative.
            0 => {
                proxy.push_plan(Plan::Clean);
                let mut c = Client::connect(proxy.addr()).expect("clean connect");
                let reply = c.ingest(&rows).expect("clean ingest");
                assert!(reply.is_ok(), "{}", reply.head);
                acked.push(round);
            }
            // The reply stream tears right after the greeting: the
            // server may have acked, the client cannot know — the batch
            // must land atomically (all rows or none).
            1 => {
                proxy.push_plan(Plan::TearReplyAfter(40));
                let mut c = Client::connect(proxy.addr()).expect("torn connect");
                let _ = c.ingest(&rows); // Err or truncated — both fine
                torn.push(round);
            }
            // The request stream is cut mid-batch: the server saw the
            // header and a fragment of the rows. Nothing may publish.
            2 => {
                proxy.push_plan(Plan::CutRequestAfter(15));
                let mut c = Client::connect(proxy.addr()).expect("cut connect");
                let _ = c.ingest(&rows);
                cut.push(round);
            }
            // A congested path: replies arrive late but intact, and the
            // session survives.
            _ => {
                proxy.push_plan(Plan::StallRepliesFor(Duration::from_millis(300)));
                let mut c = Client::connect(proxy.addr()).expect("stalled connect");
                let reply = c.ingest(&rows).expect("stalled ingest still answers");
                assert!(reply.is_ok(), "{}", reply.head);
                acked.push(round);
            }
        }
    }

    // Every faulted session is reaped — no leaked workers.
    eventually("faulted sessions reaped", || server.live_sessions() == 0);

    // Published-state audit, straight off the served epoch.
    let service = server.service().clone();
    for &round in &acked {
        assert_eq!(
            marker_rows_published(&service, marker(round), ROWS),
            ROWS,
            "acked round {round} must be fully published"
        );
    }
    for &round in &cut {
        assert_eq!(
            marker_rows_published(&service, marker(round), ROWS),
            0,
            "cut round {round} must publish nothing"
        );
    }
    for &round in &torn {
        let got = marker_rows_published(&service, marker(round), ROWS);
        assert!(
            got == 0 || got == ROWS,
            "torn round {round} published a partial batch: {got}/{ROWS}"
        );
    }
    // No panic ever crossed the session barrier.
    assert!(
        !service
            .warnings()
            .iter()
            .any(|w| w.contains("ERR internal") || w.contains("panic")),
        "{:?}",
        service.warnings()
    );

    // Durability audit: reopen the pile cold. Acked ⊆ durable, and the
    // on-disk rows agree exactly with what was published.
    server.shutdown();
    drop(server);
    let (_store, batches, report) =
        DurableStore::open(&pile, Durability::Strict, default_checkpoint_rows())
            .expect("reopen pile");
    assert!(report.warnings().is_empty(), "{:?}", report.warnings());
    let durable_rows: usize = batches.iter().map(|b| b.rows.len()).sum();
    let published_markers: usize = (0..8)
        .map(|r| marker_rows_published(&service, marker(r), ROWS))
        .sum();
    assert_eq!(
        durable_rows, published_markers,
        "published and durable logs disagree"
    );
    assert!(
        durable_rows >= acked.len() * ROWS,
        "an acknowledged batch is missing from disk"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole invariant 3: a peer that requests replies and never reads
/// them cannot wedge a worker. The write-side deadline fires, the
/// session is torn down with the reason on the operator record, and the
/// server keeps serving everyone else.
#[test]
fn slow_reader_is_torn_down_with_a_logged_reason() {
    let config = ServerConfig {
        read_timeout: Some(Duration::from_secs(30)),
        write_timeout: Some(Duration::from_millis(500)),
        ..ServerConfig::default()
    };
    let server =
        Server::spawn_with(AuditService::tiny_synthetic(3), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    // The slow reader: pipelines thousands of large-reply requests and
    // never reads a byte back. Kernel buffers fill, the server's reply
    // write stalls, its deadline fires.
    let slow = std::net::TcpStream::connect(addr).expect("connect");
    // The TCP handshake completes before the accept loop registers the
    // session — wait for the registration, or the "torn down" polls
    // below could pass vacuously against a not-yet-live session.
    eventually("slow session registered", || server.live_sessions() == 1);
    slow.set_write_timeout(Some(Duration::from_millis(200)))
        .expect("cfg");
    {
        use std::io::Write;
        let mut w = &slow;
        let request = b"UNEXPLAINED\n".repeat(5_000);
        // Our own send also jams once the server stops reading — that is
        // the point, not a failure.
        let _ = w.write_all(&request);
        let _ = w.flush();
    }

    // The teardown reason lands on the operator record, and the worker
    // is reaped — not wedged, not leaked.
    eventually("write-stall warning recorded", || {
        server
            .service()
            .warnings()
            .iter()
            .any(|w| w.contains("stalled past the deadline"))
    });
    eventually("slow reader torn down", || server.live_sessions() == 0);
    drop(slow);

    // The server shrugged it off.
    let mut fresh = Client::connect(addr).expect("still accepting");
    assert!(fresh.send("METRICS").expect("metrics").is_ok());
}

/// Tentpole invariant 4: writer saturation sheds *writes* with a typed
/// `ERR overloaded` + retry hint, reads never degrade, and a client
/// using the retry policy lands the batch once the writer drains.
#[test]
fn saturated_writer_sheds_typed_and_retry_lands_the_batch() {
    let config = ServerConfig {
        max_ingest_queue: 1,
        ..ServerConfig::default()
    };
    let server =
        Server::spawn_with(AuditService::tiny_synthetic(9), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let service = server.service().clone();

    let mut pinned = Client::connect(addr).expect("pinned reader");
    let baseline = pinned.send("METRICS").expect("metrics").render();

    // Several large library-path ingests pile onto the single-writer
    // path (the library path queues, it never sheds), holding it
    // saturated for a long, deterministic window.
    const WRITERS: usize = 6;
    const BIG: usize = 60_000;
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let service = service.clone();
            std::thread::spawn(move || {
                service
                    .ingest_rows(&marked_batch(1_000_000 + (t as i64) * 100_000, BIG))
                    .expect("library ingest")
            })
        })
        .collect();
    eventually("writer path saturated", || service.ingest_in_flight() >= 2);

    // A wire ingest while the writer is busy: shed, typed, hinted.
    let mut shed_client = Client::connect(addr).expect("shed client");
    let reply = shed_client
        .ingest(&marked_batch(600_000, 5))
        .expect("a shed is a reply, not a dead socket");
    assert!(reply.head.starts_with("ERR overloaded "), "{}", reply.head);
    assert!(reply.head.contains("retry-after-ms"), "{}", reply.head);
    assert!(reply.head.contains("nothing published"), "{}", reply.head);
    assert_eq!(
        marker_rows_published(&service, 600_000, 5),
        0,
        "a shed batch must publish nothing"
    );
    assert!(service.shed_ingest_count() >= 1);
    assert!(
        service.warnings().iter().any(|w| w.contains("ingest shed")),
        "{:?}",
        service.warnings()
    );

    // Reads never degrade under writer saturation: the pinned session is
    // byte-identical and a fresh session answers immediately.
    assert_eq!(pinned.send("METRICS").expect("metrics").render(), baseline);
    let mut fresh = Client::connect(addr).expect("fresh reader");
    assert!(fresh.send("UNEXPLAINED 3").expect("unexplained").is_ok());

    // The session that was shed is still usable, and the retry policy
    // lands the batch once the writer drains.
    let retry_config = ClientConfig {
        retry: RetryPolicy {
            retries: 60,
            base: Duration::from_millis(50),
            cap: Duration::from_millis(500),
        },
        ..ClientConfig::default()
    };
    let mut retrier = Client::connect_with(addr, retry_config).expect("retrier");
    let reply = retrier
        .ingest_with_retry(&marked_batch(600_000, 5))
        .expect("retry loop");
    assert!(reply.is_ok(), "retries exhausted: {}", reply.head);
    for w in writers {
        w.join().expect("library ingest thread");
    }
    for t in 0..WRITERS {
        assert_eq!(
            marker_rows_published(&service, 1_000_000 + (t as i64) * 100_000, BIG),
            BIG,
            "library batch {t} lost rows"
        );
    }
    assert_eq!(marker_rows_published(&service, 600_000, 5), 5);
    assert_eq!(service.ingest_in_flight(), 0, "gauge leaked a slot");
}
