//! §5.3.3's key claim, as an integration test on realistic data: the
//! one-way, two-way, and bridged algorithms — under every optimization
//! configuration — produce the same template set.

use eba::audit::split;
use eba::core::{mine_bridge, mine_one_way, mine_two_way, LogSpec, MiningConfig};
use eba::experiments::Scenario;
use eba::synth::SynthConfig;

fn scenario() -> Scenario {
    Scenario::build(SynthConfig::tiny())
}

fn base_config() -> MiningConfig {
    MiningConfig {
        support_frac: 0.01,
        max_length: 4,
        max_tables: 3,
        ..MiningConfig::default()
    }
}

#[test]
fn all_algorithms_agree_on_synthetic_hospital() {
    let s = scenario();
    let spec = s.train_spec();
    let config = base_config();
    let one = mine_one_way(&s.hospital.db, &spec, &config);
    let two = mine_two_way(&s.hospital.db, &spec, &config);
    assert_eq!(one.key_set(), two.key_set(), "one-way vs two-way");
    for ell in [2, 3, 4] {
        let bridged = mine_bridge(&s.hospital.db, &spec, &config, ell).unwrap();
        assert_eq!(one.key_set(), bridged.key_set(), "one-way vs bridge-{ell}");
    }
    assert!(!one.templates.is_empty());
}

#[test]
fn optimizations_never_change_the_mined_set() {
    let s = scenario();
    let spec = s.train_spec();
    let reference = mine_one_way(&s.hospital.db, &spec, &base_config());
    for cache in [false, true] {
        for dedup in [false, true] {
            for skip in [false, true] {
                let config = MiningConfig {
                    opt_cache: cache,
                    opt_dedup: dedup,
                    opt_skip: skip,
                    ..base_config()
                };
                let r = mine_one_way(&s.hospital.db, &spec, &config);
                assert_eq!(
                    r.key_set(),
                    reference.key_set(),
                    "cache={cache} dedup={dedup} skip={skip}"
                );
            }
        }
    }
}

#[test]
fn supports_agree_across_algorithms() {
    let s = scenario();
    let spec = s.train_spec();
    let config = base_config();
    let one = mine_one_way(&s.hospital.db, &spec, &config);
    let bridged = mine_bridge(&s.hospital.db, &spec, &config, 3).unwrap();
    let by_key: std::collections::HashMap<_, _> = bridged
        .templates
        .iter()
        .map(|t| (t.key.clone(), t.support))
        .collect();
    for t in &one.templates {
        assert_eq!(
            by_key.get(&t.key),
            Some(&t.support),
            "support mismatch for {:?}",
            t.key
        );
    }
}

#[test]
fn cache_shrinks_support_queries() {
    // The canonical-form cache pays off when the same selection-condition
    // set is reached along different traversal orders — in two-way mining
    // the forward and backward frontiers rediscover every closed template,
    // so cache hits are guaranteed there (one-way chains each shape once).
    let s = scenario();
    let spec = s.train_spec();
    let with_cache = mine_two_way(&s.hospital.db, &spec, &base_config());
    let without = mine_two_way(
        &s.hospital.db,
        &spec,
        &MiningConfig {
            opt_cache: false,
            ..base_config()
        },
    );
    assert!(with_cache.stats.cache_hits() > 0);
    assert!(
        with_cache.stats.support_queries() < without.stats.support_queries(),
        "cache did not reduce evaluations: {} vs {}",
        with_cache.stats.support_queries(),
        without.stats.support_queries()
    );
}

#[test]
fn skip_optimization_defers_nonselective_paths() {
    let s = scenario();
    let spec = s.train_spec();
    let with_skip = mine_one_way(&s.hospital.db, &spec, &base_config());
    let skipped: usize = with_skip.stats.per_length.iter().map(|l| l.skipped).sum();
    assert!(skipped > 0, "expected some paths to be skipped");
}

#[test]
fn threshold_monotonicity_of_results() {
    // Raising the support threshold can only shrink the mined set.
    let s = scenario();
    let spec = s.train_spec();
    let loose = mine_one_way(&s.hospital.db, &spec, &base_config());
    let strict = mine_one_way(
        &s.hospital.db,
        &spec,
        &MiningConfig {
            support_frac: 0.10,
            ..base_config()
        },
    );
    assert!(strict.templates.len() <= loose.templates.len());
    let loose_keys = loose.key_set();
    for key in strict.key_set() {
        assert!(loose_keys.contains(&key), "strict set must be a subset");
    }
}

#[test]
fn longer_limits_extend_results_monotonically() {
    let s = scenario();
    let spec = s.train_spec();
    let short = mine_one_way(
        &s.hospital.db,
        &spec,
        &MiningConfig {
            max_length: 2,
            ..base_config()
        },
    );
    let long = mine_one_way(
        &s.hospital.db,
        &spec,
        &MiningConfig {
            max_length: 4,
            ..base_config()
        },
    );
    let long_keys = long.key_set();
    for key in short.key_set() {
        assert!(long_keys.contains(&key), "length-2 set must be contained");
    }
    assert!(long.templates.len() >= short.templates.len());
}

#[test]
fn mining_spec_filters_change_the_denominator() {
    let s = scenario();
    let all: LogSpec = s.spec.clone();
    let day1 = s
        .spec
        .with_filters(split::days_first(&s.hospital.log_cols, 1, 1));
    let r_all = mine_one_way(&s.hospital.db, &all, &base_config());
    let r_day1 = mine_one_way(&s.hospital.db, &day1, &base_config());
    assert!(r_day1.anchor_lids < r_all.anchor_lids);
    assert!(r_day1.threshold <= r_all.threshold);
}
