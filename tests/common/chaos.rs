//! A fault-injecting TCP proxy for the network chaos suite.
//!
//! The proxy sits between a test client and a real `eba-serve` listener
//! and applies one [`Plan`] per accepted connection: forwarding cleanly,
//! tearing the server→client stream mid-frame, cutting the
//! client→server stream mid-request, or stalling replies. Faults are
//! injected at the byte level — the server under test sees an ordinary
//! peer that misbehaves exactly the way real networks do.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What one proxied connection does to its traffic.
#[derive(Debug, Clone, Copy)]
pub enum Plan {
    /// Forward both directions untouched.
    Clean,
    /// Forward server→client replies for `n` bytes, then sever both
    /// directions: the client sees a torn reply frame.
    TearReplyAfter(usize),
    /// Forward client→server requests for `n` bytes, then sever both
    /// directions: the server sees a request cut off mid-line (or
    /// mid-`INGEST` batch).
    CutRequestAfter(usize),
    /// Hold every server→client byte for the given pause before
    /// delivering it — a slow, congested path.
    StallRepliesFor(Duration),
}

/// A listening proxy that pops one [`Plan`] per accepted connection
/// (falling back to [`Plan::Clean`] when the queue is empty).
pub struct ChaosProxy {
    addr: SocketAddr,
    plans: Arc<Mutex<VecDeque<Plan>>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Spawns the proxy on an ephemeral port, forwarding to `upstream`.
    pub fn spawn(upstream: SocketAddr) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let plans: Arc<Mutex<VecDeque<Plan>>> = Arc::new(Mutex::new(VecDeque::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let plans = plans.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(client) = conn else { continue };
                    let plan = plans.lock().unwrap().pop_front().unwrap_or(Plan::Clean);
                    let Ok(server) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    run_connection(client, server, plan);
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            plans,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address test clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queues the plan for the next accepted connection.
    pub fn push_plan(&self, plan: Plan) {
        self.plans.lock().unwrap().push_back(plan);
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop so the thread observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Starts the two pump threads for one proxied connection. The pumps are
/// detached: they die when either side closes or the fault budget runs
/// out, and the severing `shutdown(Both)` on their peers guarantees that
/// happens promptly.
fn run_connection(client: TcpStream, server: TcpStream, plan: Plan) {
    let (c2s_budget, s2c_budget, stall) = match plan {
        Plan::Clean => (usize::MAX, usize::MAX, None),
        Plan::TearReplyAfter(n) => (usize::MAX, n, None),
        Plan::CutRequestAfter(n) => (n, usize::MAX, None),
        Plan::StallRepliesFor(pause) => (usize::MAX, usize::MAX, Some(pause)),
    };
    {
        let (from, to) = (client.try_clone(), server.try_clone());
        if let (Ok(from), Ok(to)) = (from, to) {
            std::thread::spawn(move || pump(from, to, c2s_budget, None));
        }
    }
    std::thread::spawn(move || pump(server, client, s2c_budget, stall));
}

/// Copies bytes `from → to` until EOF, an error, or `budget` bytes have
/// been forwarded — at which point both sockets are severed in both
/// directions (the "torn frame" the chaos suite is about). `stall`
/// delays each chunk before forwarding it.
fn pump(mut from: TcpStream, mut to: TcpStream, mut budget: usize, stall: Option<Duration>) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if let Some(pause) = stall {
            std::thread::sleep(pause);
        }
        let send = n.min(budget);
        if to.write_all(&buf[..send]).is_err() {
            break;
        }
        budget -= send;
        if budget == 0 {
            // Fault budget exhausted: tear the connection, both sides,
            // both directions, right now.
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
