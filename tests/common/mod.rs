//! Shared scaffolding for the concurrency suites: the synthetic audit
//! world, the readers-vs-writer thread harness, and the epoch-agreement
//! log. Used by both the library-level stress test
//! (`tests/engine_equivalence.rs`) and the socket-level server suite
//! (`tests/server_e2e.rs`) — the same invariants, checked at two layers.

#![allow(dead_code)] // each test binary uses the subset it needs

pub mod chaos;

use eba::audit::handcrafted::HandcraftedTemplates;
use eba::audit::Explainer;
use eba::core::LogSpec;
use eba::relational::{ChainQuery, StringPool, Table, Value};
use eba::synth::{Hospital, SynthConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Shard count the concurrency suites run at, from `EBA_TEST_SHARDS`
/// (CI runs the workspace at both `1` and `4`); defaults to 1, so a
/// plain `cargo test` exercises the degenerate single-shard engine.
/// `AuditService` constructors read the same variable through
/// [`eba::server::default_shard_count`], so the library- and socket-level
/// suites agree on the partition layout without threading a parameter.
pub fn test_shards() -> usize {
    std::env::var("EBA_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// The standard concurrency-test world: a tiny synthetic hospital, its
/// conventional log spec, the hand-crafted template suite, and the
/// user/patient pools an ingesting writer samples from.
pub struct AuditWorld {
    pub hospital: Hospital,
    pub spec: LogSpec,
    pub explainer: Explainer,
    pub users: Vec<Value>,
    pub patients: Vec<Value>,
}

impl AuditWorld {
    /// Builds the world at `tiny` scale with the given seed.
    pub fn tiny(seed: u64) -> AuditWorld {
        let config = SynthConfig {
            seed,
            ..SynthConfig::tiny()
        };
        let hospital = Hospital::generate(config);
        let spec = LogSpec::conventional(&hospital.db).expect("synthetic Log table");
        let t = HandcraftedTemplates::build(&hospital.db, &spec).expect("CareWeb schema");
        let explainer = Explainer::new(t.all().into_iter().cloned().collect());
        let users = eba::audit::fake::user_pool(&hospital.db);
        let patients: Vec<Value> = (0..hospital.world.n_patients())
            .map(|p| hospital.patient_value(p))
            .collect();
        AuditWorld {
            hospital,
            spec,
            explainer,
            users,
            patients,
        }
    }

    /// The suite lowered to chain queries, in template order.
    pub fn suite(&self) -> Vec<ChainQuery> {
        self.explainer
            .templates()
            .iter()
            .map(|t| t.path.to_chain_query(&self.spec))
            .collect()
    }

    /// Appends one batch of fake accesses to `db` (the writer's ingest
    /// payload; deterministic per `seed`).
    pub fn inject_batch(&self, db: &mut eba::relational::Database, count: usize, seed: u64) {
        eba::audit::fake::FakeLog::inject(
            db,
            self.hospital.t_log,
            &self.hospital.log_cols,
            &self.users,
            &self.patients,
            count,
            self.hospital.config.days,
            seed,
        );
    }
}

/// Observations of published epochs, keyed by sequence number: whoever
/// sees an epoch first records its log length, and every later observer
/// of the same seq must agree — epochs are immutable, so disagreement
/// means a torn snapshot.
#[derive(Default)]
pub struct EpochLog {
    observed: Mutex<HashMap<u64, usize>>,
}

impl EpochLog {
    pub fn new() -> EpochLog {
        EpochLog::default()
    }

    /// Records one observation of epoch `seq` with `log_len` rows.
    pub fn observe(&self, seq: u64, log_len: usize) {
        let mut map = self.observed.lock().unwrap();
        let prior = map.insert(seq, log_len);
        assert!(
            prior.is_none_or(|len| len == log_len),
            "seq {seq}: observers disagree on the epoch's log length \
             ({prior:?} vs {log_len})"
        );
    }

    /// Asserts that exactly epochs `0..=rounds` were observed and that
    /// the log grew strictly with every publication.
    pub fn assert_log_grew_each_epoch(self, rounds: u64) {
        let map = self.observed.into_inner().unwrap();
        let mut lens: Vec<(u64, usize)> = map.into_iter().collect();
        lens.sort_unstable();
        assert_eq!(lens.len() as u64, rounds + 1, "every epoch was observed");
        for w in lens.windows(2) {
            assert!(w[0].1 < w[1].1, "log grows with every epoch: {lens:?}");
        }
    }
}

/// Asserts the segmented-storage epoch-sharing invariant: every sealed
/// row segment `older` had is present — **by pointer** (`Arc::ptr_eq`) —
/// at the same position in `newer`. A pinned old epoch and the freshly
/// published one thus share all but the newest rows; a failure means a
/// publication copied (or worse, mutated a clone of) sealed data.
pub fn assert_sealed_segments_shared(older: &Table, newer: &Table, what: &str) {
    let old_segs = older.sealed_row_segments();
    let new_segs = newer.sealed_row_segments();
    assert!(
        old_segs.len() <= new_segs.len(),
        "{what}: the newer epoch lost sealed segments ({} -> {})",
        old_segs.len(),
        new_segs.len()
    );
    for (i, (a, b)) in old_segs.iter().zip(new_segs).enumerate() {
        assert!(
            Arc::ptr_eq(a, b),
            "{what}: sealed segment {i} was copied instead of shared"
        );
    }
}

/// The same invariant for the string interner: every sealed symbol
/// segment and every sealed lookup layer of `older` is present by
/// pointer in `newer`. Interned strings dominate a long-lived log's
/// heap, so a publication that silently copied the pool would turn the
/// `O(batch)` epoch cost into `O(total strings)` without any row-segment
/// assertion noticing.
pub fn assert_interner_shared(older: &StringPool, newer: &StringPool, what: &str) {
    let old_segs = older.sealed_segments();
    let new_segs = newer.sealed_segments();
    assert!(
        old_segs.len() <= new_segs.len(),
        "{what}: the newer pool lost sealed symbol segments ({} -> {})",
        old_segs.len(),
        new_segs.len()
    );
    for (i, (a, b)) in old_segs.iter().zip(new_segs).enumerate() {
        assert!(
            Arc::ptr_eq(a, b),
            "{what}: interner symbol segment {i} was copied instead of shared"
        );
    }
    let old_layers = older.lookup_layers();
    let new_layers = newer.lookup_layers();
    assert!(
        old_layers.len() <= new_layers.len(),
        "{what}: the newer pool lost lookup layers ({} -> {})",
        old_layers.len(),
        new_layers.len()
    );
    for (i, (a, b)) in old_layers.iter().zip(new_layers).enumerate() {
        assert!(
            Arc::ptr_eq(a, b),
            "{what}: interner lookup layer {i} was copied instead of shared"
        );
    }
}

/// Runs `readers` concurrent reader loops against one writer: each
/// reader is called with the shared done flag and must keep observing
/// until it is set (observing at least once *after* it is set, so the
/// final epoch is always covered); the writer runs to completion on the
/// harness thread, then the flag flips. Panics in any thread fail the
/// test.
pub fn readers_vs_writer(
    readers: usize,
    reader: impl Fn(usize, &AtomicBool) + Sync,
    writer: impl FnOnce(),
) {
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for i in 0..readers {
            let done = &done;
            let reader = &reader;
            scope.spawn(move || reader(i, done));
        }
        writer();
        done.store(true, Ordering::Relaxed);
    });
}

/// The canonical reader loop shape: `body` runs once per iteration until
/// the done flag is observed set, and exactly once more afterwards (the
/// pre-read snapshot of the flag decides the exit, so the iteration that
/// sees `done` still runs in full).
pub fn reader_loop(done: &AtomicBool, mut body: impl FnMut(usize)) {
    let mut iterations = 0usize;
    loop {
        let finished = done.load(Ordering::Relaxed);
        body(iterations);
        iterations += 1;
        if finished {
            break;
        }
    }
    assert!(iterations > 0);
}
