//! The streaming proof: the **maintained** explained/unexplained
//! partition — advanced inside ingest by delta evaluation — must be
//! *byte-identical* to a cold from-scratch materialization at every
//! published epoch, and the server-push feed built on it must behave
//! over real sockets.
//!
//! Library layer (differential, shards {1, 4}):
//!
//! * proptest-driven ingest schedules (batch sizes include 0 — an empty
//!   publication): after every batch, the live engine's maintained
//!   partition renders byte-for-byte equal to a brand-new engine that
//!   pins the same suite cold over the same database — anchors,
//!   explained, unexplained, the `UNEXPLAINED` page shape, and the
//!   `METRICS` confusion line all match;
//!
//! Socket layer (`SUBSCRIBE`/`EVENT` over real TCP):
//!
//! * exactly one `EVENT unexplained` frame per publish that produced
//!   fresh unexplained rows, with per-publish seq/new counts;
//! * a subscriber that stops reading is shed — the writer's ingest path
//!   never stalls, the backlog drains, and the stalled session gets one
//!   `ERR slow-consumer` frame before close;
//! * epoch-pinned sessions answer byte-identically while the push feed
//!   fans out around them.

use eba::audit::metrics;
use eba::relational::{Database, Maintained, ShardKey, ShardedEngine, SharedEngine, Value};
use eba::server::{AuditService, Client, IngestRow, Server, EVENT_QUEUE_CAP};
use proptest::prelude::*;

mod common;
use common::AuditWorld;

/// The partition key the serving layer shards by: the log's patient
/// column.
fn key(world: &AuditWorld) -> ShardKey {
    ShardKey {
        table: world.spec.table,
        col: world.spec.patient_col,
    }
}

/// Renders one maintained partition in the serving layer's answer
/// shapes: the `UNEXPLAINED` head + full listing, and the `METRICS`
/// lines derived from the same sets. Both sides of the differential go
/// through this exact function, so any byte divergence is in the
/// *partition*, not the rendering.
fn render_maintained(m: &Maintained, seq: u64) -> String {
    let mut out = format!(
        "unexplained {} of {} epoch {seq}\n",
        m.unexplained.len(),
        m.anchors.len()
    );
    for rid in m.unexplained.iter() {
        out.push_str(&format!("row {rid}\n"));
    }
    let c = metrics::confusion_from_maintained(m);
    out.push_str(&format!(
        "metrics anchor_total {} explained {} unexplained {} log {}\n",
        c.real_total,
        c.real_explained,
        c.real_total - c.real_explained,
        m.log_len
    ));
    out.push_str(&format!("explained_set {:?}\n", m.explained.to_vec()));
    out
}

/// Cold oracle: a brand-new sharded engine over the same database pins
/// the same suite from scratch (pinning materializes the partition with
/// the from-scratch path, not the incremental one).
fn cold_maintained(
    db: &Database,
    world: &AuditWorld,
    n_shards: usize,
) -> std::sync::Arc<Maintained> {
    let cold = ShardedEngine::new(db.clone(), key(world), n_shards);
    let pin = cold.pin_suite(world.explainer.suite_pin(&world.spec));
    let vec = cold.load();
    vec.maintained(pin)
        .expect("pin_suite publishes the maintained partition")
        .clone()
}

/// Ingests `rows` (strings re-interned through the batch so shard pools
/// stay aligned) into the live engine — same idiom as the serving path.
fn ingest_rows(live: &ShardedEngine, source: &Database, rows: &[Vec<Value>]) {
    live.ingest(|batch| {
        for row in rows {
            let mapped: Vec<Value> = row
                .iter()
                .map(|v| match v {
                    Value::Str(s) => batch.str_value(source.pool().resolve(*s)),
                    other => *other,
                })
                .collect();
            batch.insert_log(mapped).expect("valid log row");
        }
    });
}

/// Drives a canonical oracle and one live engine through the same batch
/// schedule; after every publish the live engine's *incrementally
/// advanced* partition must render byte-identically to a cold pin over
/// the oracle's database.
fn run_stream_differential(world: &AuditWorld, n_shards: usize, batches: &[(usize, u64)]) {
    let oracle = SharedEngine::new(world.hospital.db.clone());
    let live = ShardedEngine::new(world.hospital.db.clone(), key(world), n_shards);
    let pin = live.pin_suite(world.explainer.suite_pin(&world.spec));

    let check = |tag: &str| {
        let vec = live.load();
        let m = vec
            .maintained(pin)
            .expect("every publish carries the maintained partition");
        let cold = cold_maintained(oracle.load().db(), world, n_shards);
        assert_eq!(
            render_maintained(m, vec.seq()),
            render_maintained(&cold, vec.seq()),
            "{n_shards} shards: maintained diverged from cold at {tag}"
        );
        assert_eq!(
            m.log_len,
            vec.global_log_len(),
            "{n_shards} shards: partition covers the whole log at {tag}"
        );
    };

    check("the base epoch");
    for (b, &(count, seed)) in batches.iter().enumerate() {
        let before = oracle.load().db().table(world.spec.table).len();
        oracle.ingest(|db| world.inject_batch(db, count, seed));
        let epoch = oracle.load();
        let log = epoch.db().table(world.spec.table);
        let rows: Vec<Vec<Value>> = (before..log.len())
            .map(|r| log.row(r as u32).to_vec())
            .collect();
        ingest_rows(&live, epoch.db(), &rows);
        check(&format!("batch {b} ({count} rows)"));
    }
}

#[test]
fn maintained_partition_matches_cold_recompute_over_a_fixed_schedule() {
    let world = AuditWorld::tiny(51);
    // Mixed sizes, an empty publication in the middle, and a final
    // surge — at both the degenerate and the parallel shard count.
    let batches = [(5usize, 1u64), (0, 2), (12, 3), (1, 4), (17, 5)];
    for n_shards in [1usize, 4] {
        run_stream_differential(&world, n_shards, &batches);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random ingest schedules: the incremental partition never drifts
    /// from the cold recompute, at shard counts 1 and 4.
    #[test]
    fn maintained_partition_matches_cold_recompute(
        batches in prop::collection::vec((0usize..18, 0u64..1000), 1..4)
    ) {
        let world = AuditWorld::tiny(52);
        for n_shards in [1usize, 4] {
            run_stream_differential(&world, n_shards, &batches);
        }
    }
}

// ---------------------------------------------------------------------
// Socket layer: SUBSCRIBE / EVENT over real TCP.

/// A never-before-seen user/patient pair: unexplained by construction
/// (no appointment, visit, or document links them), so every ingest
/// below produces fresh unexplained rows deterministically.
fn fresh_rows(tag: i64, n: usize) -> Vec<IngestRow> {
    (0..n as i64)
        .map(|i| IngestRow {
            user: 50_000 + tag * 100 + i,
            patient: 80_000 + tag * 100 + i,
            day: Some(1),
        })
        .collect()
}

#[test]
fn subscribe_feed_delivers_one_event_per_publish() {
    let server = Server::spawn(AuditService::tiny_synthetic(77), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut sub = Client::connect(addr).unwrap();
    let ok = sub.send("SUBSCRIBE UNEXPLAINED").unwrap();
    assert!(
        ok.head.starts_with("OK subscribed unexplained id "),
        "{}",
        ok.head
    );

    let mut writer = Client::connect(addr).unwrap();
    for k in 0..3i64 {
        let reply = writer.ingest(&fresh_rows(k, 2)).unwrap();
        assert!(reply.is_ok(), "{}", reply.head);
        let ev = sub.next_event().unwrap();
        assert!(ev.is_event(), "{}", ev.head);
        assert_eq!(
            ev.field("seq").unwrap().parse::<i64>().unwrap(),
            k + 1,
            "one event per publish, in publish order"
        );
        assert_eq!(ev.field("new").unwrap(), "2", "{}", ev.head);
        assert!(ev.body[0].starts_with("lid "), "{}", ev.body[0]);
    }

    // Event mode accepts nothing but QUIT.
    let bad = sub.send("PING").unwrap();
    assert!(bad.head.starts_with("ERR bad-request"), "{}", bad.head);
    let bye = sub.send("QUIT").unwrap();
    assert_eq!(bye.head, "OK bye");
}

#[test]
fn slow_subscriber_is_shed_without_stalling_the_writer_or_its_peers() {
    let server = Server::spawn(AuditService::tiny_synthetic(78), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let svc = server.service().clone();

    // A healthy dashboard over a real socket...
    let mut sub = Client::connect(addr).unwrap();
    let ok = sub.send("SUBSCRIBE UNEXPLAINED").unwrap();
    assert!(ok.is_ok(), "{}", ok.head);
    let sub_id: u64 = ok.field("id").unwrap().parse().unwrap();
    // ...and a genuinely stalled one: its bounded queue is never
    // drained, so the cap (not kernel socket buffering, which absorbs
    // megabytes before ever blocking a write) decides its fate.
    let (_stalled_id, stalled_rx) = svc.subscribe(eba::server::SubscriptionKind::Unexplained);
    assert_eq!(svc.subscriber_count(), 2);

    // Publish past the queue cap. Every ingest must land: the publisher
    // never blocks on a full subscriber queue — it sheds.
    let rounds = (EVENT_QUEUE_CAP + 6) as i64;
    for r in 0..rounds {
        svc.ingest_rows(&fresh_rows(1000 + r, 2)).unwrap();
    }
    assert_eq!(svc.subscriber_count(), 1, "the stalled dashboard was shed");
    assert_eq!(svc.shed_subscriber_count(), 1);
    assert!(
        svc.warnings().iter().any(|w| w.contains("slow consumer")),
        "the shed lands in the operator log"
    );

    // The writer never stalled: every publish landed, observed over a
    // fresh control session.
    let mut ctl = Client::connect(addr).unwrap();
    let seq: i64 = ctl
        .send("SEQ")
        .unwrap()
        .field("published")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(seq, rounds, "one publish per ingest, none stalled");

    // The shed queue holds exactly the bounded backlog, then reports the
    // publisher's hang-up — nothing silently dropped *within* the cap.
    assert_eq!(stalled_rx.try_iter().count(), EVENT_QUEUE_CAP);
    assert!(stalled_rx.try_recv().is_err(), "sender dropped at the shed");

    // The healthy socket subscriber saw every publish, in order, with
    // no duplicates — shedding its peer never disturbed its feed.
    for k in 0..rounds {
        let ev = sub.next_event().unwrap();
        assert!(ev.is_event(), "{}", ev.head);
        assert_eq!(
            ev.field("seq").unwrap().parse::<i64>().unwrap(),
            k + 1,
            "exactly one event per publish, in publish order"
        );
    }

    // When the publisher drops a socket subscriber's sender (the exact
    // hang-up the queue-full shed performs), the session delivers one
    // typed `ERR slow-consumer` frame and closes.
    svc.unsubscribe(sub_id);
    let notice = sub.next_event().unwrap();
    assert!(
        notice.head.starts_with("ERR slow-consumer"),
        "{}",
        notice.head
    );
    assert!(
        sub.read_reply_frame().is_err(),
        "the connection closes after the shed notice"
    );
}

#[test]
fn pinned_sessions_answer_byte_identically_while_the_feed_fans_out() {
    let server = Server::spawn(AuditService::tiny_synthetic(79), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut pinned = Client::connect(addr).unwrap();
    assert!(pinned.send("PIN").unwrap().is_ok());
    let unexplained_before = pinned.send("UNEXPLAINED 10").unwrap().render();
    let metrics_before = pinned.send("METRICS").unwrap().render();

    let mut sub = Client::connect(addr).unwrap();
    assert!(sub.send("SUBSCRIBE UNEXPLAINED").unwrap().is_ok());
    let mut writer = Client::connect(addr).unwrap();
    assert!(writer.ingest(&fresh_rows(7, 3)).unwrap().is_ok());
    let ev = sub.next_event().unwrap();
    assert!(ev.is_event(), "{}", ev.head);

    // The pinned session's answers have not drifted by a byte...
    assert_eq!(
        pinned.send("UNEXPLAINED 10").unwrap().render(),
        unexplained_before
    );
    assert_eq!(pinned.send("METRICS").unwrap().render(), metrics_before);

    // ...until it repins, at which point the new rows are visible.
    assert!(pinned.send("REPIN").unwrap().is_ok());
    let after = pinned.send("UNEXPLAINED 10").unwrap();
    let total: usize = after.field("unexplained").unwrap().parse().unwrap();
    let before_total: usize = unexplained_before
        .split_whitespace()
        .nth(2)
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(total, before_total + 3, "the fresh rows joined the residue");
}
