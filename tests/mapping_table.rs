//! The paper's audit-id ↔ caregiver-id extraction artifact (§5.3.3):
//! data-set-B tables identify users by a different key, a mapping table
//! switches between the spaces, and the miner exempts it from the table
//! limit ("we did not count this added mapping table against the number of
//! tables used"). Paths through a self-join *and* the mapping reach length
//! 5, exactly as in Figure 13.

use eba::audit::groups::{collaborative_groups, install_groups};
use eba::audit::handcrafted::HandcraftedTemplates;
use eba::audit::split;
use eba::cluster::HierarchyConfig;
use eba::core::{mine_one_way, LogSpec, MiningConfig};
use eba::synth::{Hospital, SynthConfig};

fn mapped_hospital() -> (Hospital, LogSpec) {
    let config = SynthConfig {
        use_mapping_table: true,
        ..SynthConfig::tiny()
    };
    let mut hospital = Hospital::generate(config);
    let spec = LogSpec::conventional(&hospital.db).unwrap();
    let train = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
    let groups =
        collaborative_groups(&hospital.db, &train, HierarchyConfig::default(), 500).unwrap();
    install_groups(&mut hospital.db, &groups).unwrap();
    (hospital, spec)
}

#[test]
fn b_tables_use_a_separate_id_space() {
    let (h, _) = mapped_hospital();
    let labs = h.db.table(h.t_labs);
    if labs.is_empty() {
        return;
    }
    let result_col = labs.schema().col("ResultUser").unwrap();
    for (_, row) in labs.iter() {
        let eba::relational::Value::Int(id) = row[result_col] else {
            panic!("int id")
        };
        assert!(
            id > eba::synth::build::AUDIT_ID_OFFSET,
            "B-table ids must live in the audit space, got {id}"
        );
    }
    // The mapping table covers every user.
    let mapping = h.db.table(h.t_mapping.unwrap());
    assert_eq!(mapping.len(), h.world.n_users());
}

#[test]
fn consult_templates_work_through_the_mapping() {
    let (h, spec) = mapped_hospital();
    let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
    // One hop longer than without the artifact.
    assert_eq!(t.lab_result.length(), 3);
    assert_eq!(t.med_sign.length(), 3);
    assert_eq!(t.appt_with_dr.length(), 2, "data set A is unaffected");
    // They still explain the consult accesses.
    assert!(t.lab_result.support(&h.db, &spec).unwrap() > 0);
    assert!(t.med_admin.support(&h.db, &spec).unwrap() > 0);
}

#[test]
fn exempting_the_mapping_restores_group_templates_for_b_events() {
    let (h, spec) = mapped_hospital();
    let groups_t = h.db.table_id("Groups").unwrap();
    let labs_t = h.t_labs;
    let mapping_t = h.t_mapping.unwrap();
    let mining_spec = spec.with_filters(split::days_first(&h.log_cols, 1, 6));

    // Without the exemption: a group template over a B event needs
    // Log + Labs + Mapping + Groups = 4 tables > T = 3.
    let strict = MiningConfig {
        support_frac: 0.005,
        max_length: 5,
        max_tables: 3,
        ..MiningConfig::default()
    };
    let without = mine_one_way(&h.db, &mining_spec, &strict);
    // "B-event group-expansion template": a B table plus *two* Groups
    // aliases (the self-join of Example 4.2).
    let is_b_group_expansion = |t: &eba::core::MinedTemplate| {
        let tv = t.path.tuple_vars();
        tv.contains(&labs_t) && tv.iter().filter(|x| **x == groups_t).count() >= 2
    };
    assert!(
        !without.templates.iter().any(is_b_group_expansion),
        "B-event group-expansion templates must be blocked without the exemption"
    );

    // With the exemption (the paper's setup), the length-5 templates appear
    // if supported.
    let exempt = MiningConfig {
        exempt_tables: vec![mapping_t],
        ..strict
    };
    let with = mine_one_way(&h.db, &mining_spec, &exempt);
    assert!(
        with.templates.len() >= without.templates.len(),
        "exemption can only widen the search space"
    );
    for t in with.templates.iter().filter(|t| is_b_group_expansion(t)) {
        assert_eq!(
            t.length(),
            5,
            "B-event group-expansion templates have length 5"
        );
        assert_eq!(
            t.path.table_count(spec.table, &[mapping_t]),
            3,
            "mapping is not counted"
        );
        assert_eq!(
            t.path.table_count(spec.table, &[]),
            4,
            "without the exemption the same path counts 4 tables"
        );
    }
    assert!(
        with.templates.iter().any(is_b_group_expansion),
        "expected at least one supported length-5 B-event group template"
    );
}

#[test]
fn cross_space_joins_are_never_declared() {
    // There must be no declared relationship directly connecting an
    // audit-id column to a caregiver-id column (only the mapping bridges
    // them), otherwise joins would silently compare different id spaces.
    let (h, _) = mapped_hospital();
    let audit_cols: Vec<eba::relational::AttrRef> = [
        ("Labs", "OrderUser"),
        ("Labs", "ResultUser"),
        ("Medications", "OrderUser"),
        ("Medications", "SignUser"),
        ("Medications", "AdminUser"),
        ("Radiology", "OrderUser"),
        ("Radiology", "ReadUser"),
    ]
    .iter()
    .map(|(t, c)| h.db.attr(t, c).unwrap())
    .collect();
    let caregiver_cols: Vec<eba::relational::AttrRef> = [
        ("Log", "User"),
        ("Users", "User"),
        ("Appointments", "Doctor"),
        ("Visits", "Doctor"),
        ("Documents", "User"),
        ("Groups", "User"),
        ("Mapping", "CaregiverId"),
    ]
    .iter()
    .map(|(t, c)| h.db.attr(t, c).unwrap())
    .collect();
    for rel in h.db.relationships() {
        let crosses = (audit_cols.contains(&rel.from) && caregiver_cols.contains(&rel.to))
            || (audit_cols.contains(&rel.to) && caregiver_cols.contains(&rel.from));
        assert!(
            !crosses,
            "cross-space relationship declared: {} = {}",
            h.db.attr_name(rel.from),
            h.db.attr_name(rel.to)
        );
    }
}
