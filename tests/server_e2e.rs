//! Socket-level end-to-end suite for `eba-serve`: the server is spawned
//! in-process on an ephemeral port and driven over **real TCP sockets**.
//!
//! The guarantees under test:
//!
//! * protocol round-trips — every command answers in the dot-framed
//!   reply grammar, typed errors included;
//! * **epoch pinning**: a session's `METRICS`/`TIMELINE`/`UNEXPLAINED`/
//!   `EXPLAIN` answers are *byte-identical* before and after a
//!   concurrent `INGEST` publishes a new epoch, until the session says
//!   `REPIN` — and every answer matches the library-level `*_at` result
//!   for the pinned epoch's seq;
//! * concurrent sessions vs an ingesting writer always observe published
//!   epochs (the same invariant `tests/engine_equivalence.rs` checks at
//!   the library layer, via the shared `tests/common` harness);
//! * malformed input (proptest-shim fuzzing) yields `ERR` replies, never
//!   a dead session or a dead server;
//! * clock-skewed ingests surface in `TIMELINE`'s overflow bucket;
//! * shutdown is clean with sessions still in flight.

use eba::audit::{metrics, timeline};
use eba::relational::Value;
use eba::server::{AuditService, Client, IngestRow, Server};
use proptest::prelude::*;
use std::net::SocketAddr;
use std::sync::OnceLock;

mod common;

/// Spawns a server over a fresh tiny world, returning both so tests can
/// compare wire answers against library-level `*_at` answers.
fn spawn_world_server(seed: u64) -> (common::AuditWorld, Server) {
    let world = common::AuditWorld::tiny(seed);
    // Seal the seed data: the served epoch then owns sealed (Arc-shared)
    // row segments, so the segment-sharing assertions below exercise
    // real cross-epoch sharing over the wire path too.
    let db = {
        let mut db = world.hospital.db.clone();
        db.seal();
        db
    };
    let service = AuditService::new(
        db,
        world.spec.clone(),
        world.hospital.log_cols,
        world.explainer.clone(),
        world.hospital.config.days,
    );
    let server = Server::spawn(service, "127.0.0.1:0").expect("bind ephemeral port");
    (world, server)
}

/// An ingest batch over the world's real user/patient pools.
fn batch(world: &common::AuditWorld, n: usize, day: Option<i64>) -> Vec<IngestRow> {
    (0..n)
        .map(|i| {
            let Value::Int(user) = world.users[i % world.users.len()] else {
                panic!("synthetic users are ints")
            };
            let Value::Int(patient) = world.patients[(i * 7) % world.patients.len()] else {
                panic!("synthetic patients are ints")
            };
            IngestRow { user, patient, day }
        })
        .collect()
}

/// The `Lid` of log row 0 (a row that always exists).
fn first_lid(world: &common::AuditWorld) -> i64 {
    let row = world.hospital.db.table(world.spec.table).row(0);
    let Value::Int(lid) = row[world.hospital.log_cols.lid] else {
        panic!("synthetic lids are ints")
    };
    lid
}

#[test]
fn protocol_round_trips_over_a_real_socket() {
    let (world, server) = spawn_world_server(11);
    let addr = server.local_addr();
    let mut c = Client::connect(addr).expect("connect");
    assert_eq!(c.greeting().head, "OK eba-serve 1 epoch 0");

    assert_eq!(c.send("PING").unwrap().head, "OK pong");
    assert_eq!(c.send("pin").unwrap().head, "OK epoch 0");
    assert_eq!(c.send("SEQ").unwrap().head, "OK published 0 pinned 0");

    // SHARDS: layout report — one body line per shard, row counts
    // summing to the served log (the suite runs at EBA_TEST_SHARDS).
    let shards = c.send("SHARDS").unwrap();
    assert!(shards.is_ok(), "{}", shards.head);
    let n: usize = shards.field("shards").unwrap().parse().unwrap();
    assert_eq!(n, common::test_shards());
    assert_eq!(shards.body.len(), n);
    let total: usize = shards
        .body
        .iter()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
        .sum();
    assert_eq!(total, world.hospital.log_len());

    // EXPLAIN: a real access answers; the reply's data lines are the
    // ranked explanations.
    let lid = first_lid(&world);
    let explain = c.send(&format!("EXPLAIN {lid}")).unwrap();
    assert!(explain.is_ok(), "{}", explain.head);
    let n: usize = explain.field("explanations").unwrap().parse().unwrap();
    assert_eq!(explain.body.len(), n);
    for line in &explain.body {
        assert!(line.starts_with("len "), "{line}");
    }
    // ...and a missing lid is a typed not-found, not a dead socket.
    let missing = c.send("EXPLAIN 987654321").unwrap();
    assert!(
        missing.head.starts_with("ERR not-found"),
        "{}",
        missing.head
    );

    // UNEXPLAINED with a limit truncates the listing, not the count — and
    // a truncated listing says so in an explicit marker plus a resumable
    // cursor line instead of silently reading as complete.
    let unexplained = c.send("UNEXPLAINED 3").unwrap();
    assert!(unexplained.is_ok());
    let count: usize = unexplained.field("unexplained").unwrap().parse().unwrap();
    assert!(count > 0, "tiny world has unexplained accesses");
    let listed = unexplained
        .body
        .iter()
        .filter(|l| l.starts_with("lid "))
        .count();
    assert_eq!(listed, count.min(3));
    if count > 3 {
        assert_eq!(
            unexplained.body[3],
            format!("more {} rows not shown", count - 3)
        );
        let cursor = unexplained.body.last().unwrap();
        assert!(cursor.starts_with("next UNEXPLAINED 3 AFTER "), "{cursor}");
        assert_eq!(unexplained.body.len(), 5);
        // The cursor line is a valid command; the next page starts
        // strictly after the last listed row and reports the same total.
        let page2 = c.send(cursor.strip_prefix("next ").unwrap()).unwrap();
        assert!(page2.is_ok(), "{}", page2.head);
        assert_eq!(page2.head, unexplained.head, "totals are page-invariant");
        let first_page2 = page2.body.first().unwrap();
        assert!(first_page2.starts_with("lid "), "{first_page2}");
        assert_ne!(first_page2, &unexplained.body[2], "no overlap across pages");
    } else {
        assert_eq!(unexplained.body.len(), count);
    }

    // METRICS and TIMELINE are internally consistent with each other.
    let m = c.send("METRICS").unwrap();
    let anchor: usize = m.body_field("anchor_total").unwrap().parse().unwrap();
    let explained: usize = m.body_field("explained").unwrap().parse().unwrap();
    let unexpl: usize = m.body_field("unexplained").unwrap().parse().unwrap();
    assert_eq!(anchor, explained + unexpl);
    assert_eq!(unexpl, count, "METRICS agrees with UNEXPLAINED");
    let t = c.send("TIMELINE").unwrap();
    assert_eq!(
        t.field("days").unwrap().parse::<usize>().unwrap() + 1,
        t.body.len(),
        "one line per day plus the overflow bucket"
    );
    assert!(t.body.last().unwrap().starts_with("overflow total "));

    // MISUSE: the top listing and a per-user lookup agree.
    let top = c.send("MISUSE").unwrap();
    assert!(top.is_ok());
    assert!(!top.body.is_empty(), "tiny world has suspects");
    let first = &top.body[0];
    let user: i64 = first
        .strip_prefix("user ")
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    let one = c.send(&format!("MISUSE {user}")).unwrap();
    assert_eq!(one.field("rank"), Some("1"), "{}", one.head);
    let nobody = c.send("MISUSE -42").unwrap();
    assert!(nobody.head.contains("unexplained 0"), "{}", nobody.head);
    assert_eq!(nobody.field("rank"), Some("-"));

    // Typed parse errors.
    let unknown = c.send("FROB 1").unwrap();
    assert!(unknown.head.starts_with("ERR bad-request unknown command"));
    let usage = c.send("EXPLAIN").unwrap();
    assert!(usage.head.starts_with("ERR bad-request usage:"));
    let notint = c.send("EXPLAIN twelve").unwrap();
    assert!(notint.head.contains("not an integer"));
    let zero = c.send("INGEST 0").unwrap();
    assert!(zero.head.starts_with("ERR bad-request"), "{}", zero.head);

    // QUIT ends the session; the server survives it.
    assert_eq!(c.send("QUIT").unwrap().head, "OK bye");
    assert!(c.send("PING").is_err(), "session closed");
    let mut again = Client::connect(addr).expect("server still accepting");
    assert_eq!(again.send("PING").unwrap().head, "OK pong");
}

/// Satellite: a server running an explicitly sharded service answers
/// every read command byte-identically to the single-shard server over
/// real sockets, and `SHARDS` reports the partition layout (row counts
/// summing to the log, live seq advancing while the pin holds).
#[test]
fn sharded_server_matches_single_shard_server_over_the_wire() {
    let world = common::AuditWorld::tiny(29);
    let spawn = |n: usize| {
        let service = AuditService::new_sharded(
            world.hospital.db.clone(),
            world.spec.clone(),
            world.hospital.log_cols,
            world.explainer.clone(),
            world.hospital.config.days,
            n,
        );
        Server::spawn(service, "127.0.0.1:0").expect("bind ephemeral port")
    };
    let single = spawn(1);
    let sharded = spawn(4);
    let mut a = Client::connect(single.local_addr()).expect("connect single");
    let mut b = Client::connect(sharded.local_addr()).expect("connect sharded");

    let lid = first_lid(&world);
    for cmd in [
        "METRICS".to_string(),
        "TIMELINE".to_string(),
        "UNEXPLAINED".to_string(),
        "MISUSE".to_string(),
        format!("EXPLAIN {lid}"),
    ] {
        assert_eq!(
            a.send(&cmd).expect("single").render(),
            b.send(&cmd).expect("sharded").render(),
            "`{cmd}` diverged between 1 and 4 shards over the wire"
        );
    }

    // The layout report.
    let r = b.send("SHARDS").unwrap();
    assert_eq!(r.head, "OK shards 4 seq 0 pinned 0");
    assert_eq!(r.body.len(), 4);
    let total: usize = r
        .body
        .iter()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
        .sum();
    assert_eq!(total, world.hospital.log_len());

    // An ingest on the sharded server advances the live seq; the pinned
    // session's layout report keeps describing its pin.
    let reply = b.ingest(&batch(&world, 8, Some(1))).expect("ingest");
    assert!(reply.is_ok(), "{}", reply.head);
    assert_eq!(b.send("SHARDS").unwrap().head, "OK shards 4 seq 1 pinned 0");
    b.send("REPIN").unwrap();
    let repinned = b.send("SHARDS").unwrap();
    assert_eq!(repinned.head, "OK shards 4 seq 1 pinned 1");
    let total_after: usize = repinned
        .body
        .iter()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
        .sum();
    assert_eq!(total_after, world.hospital.log_len() + 8);
}

/// The tentpole acceptance test: a pinned session's answers are
/// byte-identical before and after a concurrent `INGEST` publishes a new
/// epoch, they match the library `*_at` answers for the pinned seq, and
/// `REPIN` moves the session to the new epoch's (library-identical)
/// answers.
#[test]
fn pinned_session_is_byte_stable_across_ingest_until_repin() {
    let (world, server) = spawn_world_server(23);
    let addr = server.local_addr();
    let spec = &world.spec;
    let cols = &world.hospital.log_cols;
    let days = world.hospital.config.days;
    let lid = first_lid(&world);

    // The library view of epoch 0, pinned before any ingest.
    let epoch0 = server.service().sharded().load();
    assert_eq!(epoch0.seq(), 0);

    let mut session = Client::connect(addr).expect("reader session");
    let commands = [
        "METRICS".to_string(),
        "TIMELINE".to_string(),
        "UNEXPLAINED".to_string(),
        format!("EXPLAIN {lid}"),
        "MISUSE".to_string(),
    ];
    let ask_all = |session: &mut Client| -> Vec<String> {
        commands
            .iter()
            .map(|c| session.send(c).expect("reply").render())
            .collect()
    };
    let before = ask_all(&mut session);

    // Wire answers == library `*_at_shards` answers for the pinned epoch
    // vector (at EBA_TEST_SHARDS=1 this is exactly the old single-epoch
    // `*_at` comparison — the scatter-gather layer proves the rest).
    let assert_matches_library = |rendered: &[String], epochs: &eba::relational::EpochVec| {
        let suite: Vec<&eba::core::ExplanationTemplate> =
            world.explainer.templates().iter().collect();
        let c = metrics::evaluate_at_shards(spec, &suite, None, None, epochs);
        let m = &rendered[0];
        assert!(
            m.contains(&format!("\nanchor_total {}", c.real_total)),
            "{m}"
        );
        assert!(
            m.contains(&format!("\nexplained {}", c.real_explained)),
            "{m}"
        );
        assert!(m.contains(&format!("\nrecall {:.6}", c.recall())), "{m}");

        let t = timeline::daily_stats_at_shards(spec, cols, &world.explainer, days, epochs);
        let tl = &rendered[1];
        for s in &t.days {
            assert!(
                tl.contains(&format!(
                    "\nday {} total {} explained {} firsts {} first_explained {}",
                    s.day, s.total, s.explained, s.first_accesses, s.first_explained
                )),
                "{tl}"
            );
        }
        assert!(
            tl.contains(&format!(
                "\noverflow total {} explained {} firsts {} first_explained {}",
                t.overflow.total,
                t.overflow.explained,
                t.overflow.first_accesses,
                t.overflow.first_explained
            )),
            "{tl}"
        );

        let unexplained = world.explainer.unexplained_rows_at_shards(spec, epochs);
        let u = &rendered[2];
        assert!(
            u.contains(&format!("OK unexplained {} of ", unexplained.len())),
            "{u}"
        );
        // Every unexplained row appears, in ascending global row order
        // (resolved through the shard that owns it).
        let mut at = 0usize;
        for &global in &unexplained {
            let (s, rid) = epochs.locate(global).expect("listed row exists");
            let db = epochs.shards()[s].db();
            let row = db.table(spec.table).row(rid);
            let needle = format!(
                "\nlid {} user {} patient {}",
                row[cols.lid].display(db.pool()),
                row[cols.user].display(db.pool()),
                row[cols.patient].display(db.pool())
            );
            let pos = u[at..].find(&needle).unwrap_or_else(|| {
                panic!("unexplained row {global} missing or out of order: {needle}")
            });
            at += pos + needle.len();
        }

        let (s0, rid0) = epochs.locate(0).expect("row 0 exists");
        let explanations = world
            .explainer
            .explain(epochs.shards()[s0].db(), spec, rid0, 3)
            .expect("valid suite");
        let e = &rendered[3];
        assert!(
            e.contains(&format!("explanations {}", explanations.len())),
            "{e}"
        );
        for r in &explanations {
            assert!(e.contains(&format!("len {} {}", r.length, r.text)), "{e}");
        }
    };
    assert_matches_library(&before, &epoch0);

    // A *concurrent* writer session ingests; the server publishes seq 1.
    let mut writer = Client::connect(addr).expect("writer session");
    let report = writer.ingest(&batch(&world, 30, Some(2))).expect("ingest");
    assert!(report.is_ok(), "{}", report.head);
    assert_eq!(report.field("seq"), Some("1"));
    assert_eq!(report.field("rebuilt"), Some("0"));
    assert_eq!(
        session.send("SEQ").unwrap().head,
        "OK published 1 pinned 0",
        "the reader session still pins epoch 0"
    );

    // Byte-identical answers from the pinned session — the whole point.
    let during = ask_all(&mut session);
    assert_eq!(
        during, before,
        "pinned session answers changed under ingest"
    );
    assert_matches_library(&during, &epoch0);

    // REPIN: the session moves to epoch 1 and now matches the library
    // answers for the *new* epoch (which differ — the log grew).
    assert_eq!(session.send("REPIN").unwrap().head, "OK epoch 1");
    let epoch1 = server.service().sharded().load();
    assert_eq!(epoch1.seq(), 1);
    let after = ask_all(&mut session);
    assert_ne!(after, before, "the new epoch sees the ingested batch");
    assert_matches_library(&after, &epoch1);
    let anchor = |r: &str| -> usize {
        r.lines()
            .find_map(|l| l.strip_prefix("anchor_total "))
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(anchor(&after[0]), anchor(&before[0]) + 30);
}

/// The library-layer concurrency invariant, checked over sockets: N
/// reader sessions interleave `REPIN`/`METRICS`/`UNEXPLAINED` while a
/// writer session ingests; every observed epoch is published, monotone
/// per session, and all observers agree on each epoch's contents.
#[test]
fn concurrent_socket_sessions_always_observe_published_epochs() {
    let (world, server) = spawn_world_server(31);
    let addr = server.local_addr();
    let rounds = 4u64;
    let per_batch = 10usize;
    let base_len = world.hospital.log_len();
    let epochs = common::EpochLog::new();
    // Seq 0 is only reachable before the first ingest; record it up
    // front so a fast writer cannot leave it unobserved.
    epochs.observe(0, base_len);
    // Library handle on the initial epoch vector: newer epochs must keep
    // sharing its sealed segments while the wire sessions hammer it.
    let pinned_epoch = server.service().sharded().load();
    for shard in pinned_epoch.shards() {
        assert!(
            shard.log_len() == 0
                || !shard
                    .db()
                    .table(world.spec.table)
                    .sealed_row_segments()
                    .is_empty(),
            "the served seed data is sealed in every non-empty shard"
        );
    }

    common::readers_vs_writer(
        4,
        |i, done| {
            if i == 0 {
                // The pinned session: never REPINs, so every reply must
                // be byte-identical for the whole run even though the
                // writer publishes epochs that share its sealed
                // segments.
                let mut session = Client::connect(addr).expect("pinned reader connects");
                let first = session.send("METRICS").expect("metrics").render();
                common::reader_loop(done, |_| {
                    let again = session.send("METRICS").expect("metrics").render();
                    assert_eq!(again, first, "pinned session reply drifted under ingest");
                });
                return;
            }
            let mut session = Client::connect(addr).expect("reader connects");
            let mut last_seq = 0u64;
            common::reader_loop(done, |_| {
                let repin = session.send("REPIN").expect("repin");
                let seq: u64 = repin.field("epoch").unwrap().parse().unwrap();
                assert!(seq >= last_seq, "epoch went backwards over the wire");
                last_seq = seq;
                let m = session.send("METRICS").expect("metrics");
                assert_eq!(
                    m.field("epoch").unwrap().parse::<u64>().unwrap(),
                    seq,
                    "METRICS answers from the pinned epoch"
                );
                let anchor: usize = m.body_field("anchor_total").unwrap().parse().unwrap();
                let explained: usize = m.body_field("explained").unwrap().parse().unwrap();
                epochs.observe(seq, anchor);
                // Cross-command consistency on one pin: UNEXPLAINED and
                // METRICS describe the same frozen log.
                let u = session.send("UNEXPLAINED 0").expect("unexplained");
                let count: usize = u.field("unexplained").unwrap().parse().unwrap();
                assert_eq!(count, anchor - explained, "views tore across commands");
            });
        },
        || {
            let mut writer = Client::connect(addr).expect("writer connects");
            for round in 0..rounds {
                let reply = writer
                    .ingest(&batch(&world, per_batch, Some(1 + (round as i64 % 3))))
                    .expect("ingest");
                assert!(reply.is_ok(), "{}", reply.head);
                let seq: u64 = reply.field("seq").unwrap().parse().unwrap();
                assert_eq!(seq, round + 1);
                assert_eq!(reply.field("rebuilt"), Some("0"));
                epochs.observe(seq, base_len + (round as usize + 1) * per_batch);
            }
        },
    );
    epochs.assert_log_grew_each_epoch(rounds);

    // Every published epoch kept sharing the initial epoch's sealed
    // segments by pointer (the `O(batch)`-per-shard publication
    // invariant, checked over the served path) — rows *and* the interner.
    let last_epoch = server.service().sharded().load();
    assert_eq!(last_epoch.seq(), rounds);
    for (s, (old, new)) in pinned_epoch
        .shards()
        .iter()
        .zip(last_epoch.shards())
        .enumerate()
    {
        common::assert_sealed_segments_shared(
            old.db().table(world.spec.table),
            new.db().table(world.spec.table),
            &format!("served initial epoch vs final epoch, shard {s}"),
        );
        common::assert_interner_shared(
            old.db().pool(),
            new.db().pool(),
            &format!("served initial epoch vs final epoch, shard {s}"),
        );
    }

    // The final epoch over the wire matches the library view.
    let mut c = Client::connect(addr).expect("post-hoc session");
    assert_eq!(
        c.send("SEQ").unwrap().head,
        format!("OK published {rounds} pinned {rounds}")
    );
    let last = server.service().sharded().load();
    let m = c.send("METRICS").unwrap();
    assert_eq!(
        m.body_field("unexplained")
            .unwrap()
            .parse::<usize>()
            .unwrap(),
        world
            .explainer
            .unexplained_rows_at_shards(&world.spec, &last)
            .len()
    );
}

/// Satellite: clock-skewed ingests (day 0, day beyond the window, no day
/// at all) must surface in the server's `TIMELINE` overflow bucket — and
/// the wire numbers must equal the epoch-pinned `daily_stats_at` view.
#[test]
fn timeline_overflow_is_served_over_the_wire() {
    let (world, server) = spawn_world_server(43);
    let addr = server.local_addr();
    let days = world.hospital.config.days;
    let mut c = Client::connect(addr).expect("connect");

    let overflow_total = |reply: &eba::server::Reply| -> usize {
        reply
            .body
            .last()
            .unwrap()
            .strip_prefix("overflow total ")
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let before = c.send("TIMELINE").unwrap();
    assert_eq!(overflow_total(&before), 0, "well-formed log has no skew");

    // One skewed batch: day 0, day way out of range, and a missing day.
    let mut rows = batch(&world, 1, Some(0));
    rows.extend(batch(&world, 1, Some(i64::from(days) + 30)));
    rows.extend(batch(&world, 1, None));
    let reply = c.ingest(&rows).expect("ingest");
    assert!(reply.is_ok(), "{}", reply.head);

    // Still pinned: the session's timeline is byte-stable...
    assert_eq!(c.send("TIMELINE").unwrap(), before);
    // ...until REPIN, where the overflow bucket carries all three rows.
    c.send("REPIN").unwrap();
    let after = c.send("TIMELINE").unwrap();
    assert_eq!(overflow_total(&after), 3);
    assert_eq!(
        after.field("dropped").unwrap().parse::<usize>().unwrap(),
        3,
        "the head line surfaces the dropped count"
    );

    // The wire response equals the library's epoch-pinned view, line by
    // line (this is the daily_stats_at path, not the direct call).
    let epochs = server.service().sharded().load();
    let t = timeline::daily_stats_at_shards(
        &world.spec,
        &world.hospital.log_cols,
        &world.explainer,
        days,
        &epochs,
    );
    assert_eq!(t.dropped(), 3);
    let mut expected: Vec<String> = t
        .days
        .iter()
        .map(|s| {
            format!(
                "day {} total {} explained {} firsts {} first_explained {}",
                s.day, s.total, s.explained, s.first_accesses, s.first_explained
            )
        })
        .collect();
    expected.push(format!(
        "overflow total {} explained {} firsts {} first_explained {}",
        t.overflow.total,
        t.overflow.explained,
        t.overflow.first_accesses,
        t.overflow.first_explained
    ));
    assert_eq!(after.body, expected);
}

/// Satellite: the rebuild fallback still fires **over the server path**
/// on segmented storage. An operator reload that is not an append-only
/// extension (the log shrinks back to the seed copy) refuses the
/// incremental refresh; the service recovers by rebuilding, records the
/// warning, and serves it over the wire via `WARNINGS` — while pinned
/// sessions stay byte-stable and a `REPIN` lands on the rebuilt epoch.
#[test]
fn rebuild_fallback_warning_fires_over_the_server_path() {
    let (world, server) = spawn_world_server(61);
    let addr = server.local_addr();

    let mut pinned = Client::connect(addr).expect("pinned session");
    let before = pinned.send("METRICS").expect("metrics").render();
    assert_eq!(
        pinned.send("WARNINGS").unwrap().head,
        "OK warnings 0",
        "a healthy service has no warnings"
    );

    // Grow the published log over the wire (epoch 1)...
    let mut writer = Client::connect(addr).expect("writer session");
    let reply = writer.ingest(&batch(&world, 10, Some(1))).expect("ingest");
    assert!(reply.is_ok(), "{}", reply.head);
    assert_eq!(reply.field("rebuilt"), Some("0"));

    // ...then reload the (shorter) seed copy: TableShrank → rebuild
    // fallback, published as epoch 2.
    let report = server.service().replace_database(world.hospital.db.clone());
    assert!(report.rebuilt_any(), "replacement must trigger fallback");
    assert_eq!(report.seq, 2);

    // The warning is served over the wire — one per shard, since every
    // shard engine refuses a wholesale replacement and rebuilds.
    let warnings = pinned.send("WARNINGS").expect("warnings");
    assert_eq!(
        warnings.head,
        format!("OK warnings {}", common::test_shards())
    );
    assert!(
        warnings.body[0].contains("rebuilding"),
        "{}",
        warnings.body[0]
    );

    // The pinned session is untouched by the fallback...
    assert_eq!(
        pinned.send("METRICS").unwrap().render(),
        before,
        "pinned session drifted across a rebuild fallback"
    );
    // ...and a REPIN lands on the rebuilt epoch, whose contents are the
    // seed database again (same metrics body, new epoch in the head).
    assert_eq!(pinned.send("REPIN").unwrap().head, "OK epoch 2");
    let after = pinned.send("METRICS").unwrap();
    assert_eq!(after.head, "OK metrics epoch 2");
    assert_eq!(
        after.body,
        before
            .lines()
            .skip(1)
            .take_while(|l| *l != ".")
            .map(str::to_string)
            .collect::<Vec<_>>(),
        "the rebuilt epoch serves the seed contents"
    );
}

/// Satellite: a client that announces an `INGEST` batch and disconnects
/// mid-batch publishes **nothing** and persists **nothing** — the torn
/// batch is all-or-nothing at both the epoch layer and the durable pile
/// — and the worker thread is reaped, not leaked.
#[test]
fn mid_ingest_disconnect_publishes_nothing_and_persists_nothing() {
    let world = common::AuditWorld::tiny(67);
    let dir = std::env::temp_dir().join(format!("eba-e2e-midingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pile = dir.join("pile.seg");

    // Same seed ⇒ same base data: the second world's hospital moves into
    // the durable service while `world` keeps one for building batches.
    let service = AuditService::from_hospital_durable(
        common::AuditWorld::tiny(67).hospital,
        &pile,
        eba::relational::Durability::Strict,
    )
    .expect("open durable store");
    let mut server = Server::spawn(service, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Announce 5 rows, deliver 2, vanish.
    let mut torn = Client::connect(addr).expect("torn client");
    torn.send_raw(b"INGEST 5\n1 10000 1\n2 10001 2\n")
        .expect("partial batch");
    drop(torn);

    // The worker observes the truncation and is reaped.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.live_sessions() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(server.live_sessions(), 0, "torn session not reaped");
    assert_eq!(
        server.service().sharded().seq(),
        0,
        "a truncated batch must publish nothing"
    );

    // The service is unharmed: a complete batch from a fresh session
    // publishes epoch 1 and is acknowledged (hence durable).
    let mut fresh = Client::connect(addr).expect("fresh client");
    let reply = fresh.ingest(&batch(&world, 4, Some(2))).expect("ingest");
    assert!(reply.is_ok(), "{}", reply.head);
    assert_eq!(reply.field("seq"), Some("1"));
    server.shutdown();

    // Reopen the pile: exactly the acknowledged batch was persisted —
    // nothing from the torn one.
    let (_store, batches, _report) = eba::relational::DurableStore::open(
        &pile,
        eba::relational::Durability::Strict,
        eba::relational::pile::default_checkpoint_rows(),
    )
    .expect("reopen pile");
    assert_eq!(batches.len(), 1, "only the acked batch is on disk");
    assert_eq!(batches[0].rows.len(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shutdown with sessions mid-flight: returns promptly, in-flight
/// sessions observe EOF instead of hanging, the port stops accepting.
#[test]
fn clean_shutdown_with_in_flight_sessions() {
    let (_, mut server) = spawn_world_server(53);
    let addr = server.local_addr();
    let mut idle = Client::connect(addr).expect("idle session");
    let mut busy = Client::connect(addr).expect("busy session");
    assert!(idle.send("PING").unwrap().is_ok());
    assert!(busy.send("METRICS").unwrap().is_ok());

    // One session is parked mid-read, the other just finished a command.
    server.shutdown();

    assert!(idle.send("PING").is_err(), "idle session saw EOF");
    assert!(busy.send("METRICS").is_err(), "busy session saw EOF");
    assert!(
        std::net::TcpStream::connect(addr).is_err(),
        "listener is closed"
    );
    // Idempotent; Drop after explicit shutdown is a no-op.
    server.shutdown();
}

// ------------------------------------------------------------- fuzzing

/// One long-lived server shared by every fuzz case (leaked on purpose —
/// its accept thread serves until the test process exits). Surviving all
/// cases *is* the property.
fn fuzz_server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = Server::spawn(AuditService::tiny_synthetic(5), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        std::mem::forget(server);
        addr
    })
}

/// Renders one junk request line from fuzz integers.
fn junk_line(selector: u8, a: i64, b: i64) -> String {
    match selector % 15 {
        0 => format!("EXPLAIN {a}"),
        1 => format!("EXPLAIN {a} {b}"),
        2 => "METRICS".into(),
        3 => format!("FROB {a}"),
        4 => format!("MISUSE {a}"),
        5 => "explain".into(),
        6 => format!("UNEXPLAINED {a}"),
        7 => format!("INGEST {a}"),
        8 => format!("{a} {b} -"),
        9 => "  \t ".into(),
        10 => format!("# comment {a}"),
        11 => format!("PIN extra {b}"),
        12 => format!("INGEST {a} {b}"),
        13 => format!("TIMELINE {}", "x".repeat((a.unsigned_abs() % 200) as usize)),
        14 => format!("WARNINGS{}", if a % 2 == 0 { "" } else { " extra" }),
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzz: arbitrary interleavings of malformed and well-formed lines
    /// never desync the reply framing and never kill the server — every
    /// complete reply in the drained stream is `OK`/`ERR` dot-framed, and
    /// a fresh session still answers afterwards.
    #[test]
    fn malformed_input_never_kills_the_session(
        lines in prop::collection::vec((0u8..15, 0i64..60, -5i64..1_000_000), 1..25)
    ) {
        let addr = fuzz_server_addr();
        let mut c = Client::connect(addr).expect("connect");
        let mut sent = String::new();
        for &(sel, a, b) in &lines {
            sent.push_str(&junk_line(sel, a, b));
            sent.push('\n');
        }
        c.send_raw(sent.as_bytes()).expect("write junk");
        c.finish_writes().expect("half-close");
        let drained = c.drain().expect("drain replies");

        // The reply stream parses as a sequence of dot-framed replies.
        let mut it = drained.lines();
        while let Some(head) = it.next() {
            prop_assert!(
                head.starts_with("OK") || head.starts_with("ERR"),
                "reply head is framed: {head:?} in {drained:?}"
            );
            let mut terminated = false;
            for line in it.by_ref() {
                if line == "." {
                    terminated = true;
                    break;
                }
                prop_assert!(
                    !line.starts_with("OK") && !line.starts_with("ERR"),
                    "unterminated frame before {line:?}"
                );
            }
            prop_assert!(terminated, "frame for {head:?} never terminated");
        }

        // The server survived: a fresh session answers.
        let mut fresh = Client::connect(addr).expect("server still alive");
        prop_assert_eq!(fresh.send("PING").expect("pong").head, "OK pong");
    }
}
