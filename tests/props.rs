//! Property-based tests over the core invariants:
//!
//! * chain-query evaluation agrees with a brute-force nested-loop join;
//! * support is monotone under path extension (the pruning lemma of §3.2);
//! * canonical keys are invariant under path reversal;
//! * evaluation options (dedup) never change results;
//! * metrics stay within bounds.

use eba::core::edge::EdgeKind;
use eba::core::{canonical::canonical_key, Direction, Edge, LogSpec, Path};
use eba::relational::{ChainQuery, ChainStep, DataType, Database, EvalOptions, TableId, Value};
use proptest::prelude::*;

/// A small random two-table world: Log(Lid, User, Patient) and
/// Event(Patient, Actor), with values drawn from small domains so joins
/// actually happen.
#[derive(Debug, Clone)]
struct SmallWorld {
    log_rows: Vec<(i64, i64, i64)>, // (lid, user, patient)
    event_rows: Vec<(i64, i64)>,    // (patient, actor)
}

fn small_world() -> impl Strategy<Value = SmallWorld> {
    let log_row = (0..40i64, 0..8i64, 0..10i64);
    let event_row = (0..10i64, 0..8i64);
    (
        prop::collection::vec(log_row, 1..25),
        prop::collection::vec(event_row, 0..25),
    )
        .prop_map(|(mut log_rows, event_rows)| {
            // Make lids unique (the schema's invariant).
            for (i, r) in log_rows.iter_mut().enumerate() {
                r.0 = i as i64;
            }
            SmallWorld {
                log_rows,
                event_rows,
            }
        })
}

fn materialize(w: &SmallWorld) -> (Database, TableId, TableId) {
    let mut db = Database::new();
    let log = db
        .create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
    let event = db
        .create_table(
            "Event",
            &[("Patient", DataType::Int), ("Actor", DataType::Int)],
        )
        .unwrap();
    for &(lid, user, patient) in &w.log_rows {
        db.insert(
            log,
            vec![Value::Int(lid), Value::Int(user), Value::Int(patient)],
        )
        .unwrap();
    }
    for &(patient, actor) in &w.event_rows {
        db.insert(event, vec![Value::Int(patient), Value::Int(actor)])
            .unwrap();
    }
    (db, log, event)
}

/// Brute force: which log rows have an event row with the same patient
/// whose actor equals the log row's user?
fn brute_force_closed(w: &SmallWorld) -> Vec<u32> {
    w.log_rows
        .iter()
        .enumerate()
        .filter(|(_, (_, user, patient))| {
            w.event_rows.iter().any(|(p, a)| p == patient && a == user)
        })
        .map(|(i, _)| i as u32)
        .collect()
}

/// Brute force for the open query: log rows whose patient has any event.
fn brute_force_open(w: &SmallWorld) -> Vec<u32> {
    w.log_rows
        .iter()
        .enumerate()
        .filter(|(_, (_, _, patient))| w.event_rows.iter().any(|(p, _)| p == patient))
        .map(|(i, _)| i as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chain_query_matches_brute_force(w in small_world()) {
        let (db, log, event) = materialize(&w);
        let closed = ChainQuery {
            log,
            lid_col: 0,
            start_col: 2,
            steps: vec![ChainStep::new(event, 0, 1)],
            close_col: Some(1),
            anchor_filters: vec![],
        };
        prop_assert_eq!(
            closed.explained_rows(&db, EvalOptions::default()).unwrap(),
            brute_force_closed(&w)
        );
        let open = ChainQuery { close_col: None, ..closed };
        prop_assert_eq!(
            open.explained_rows(&db, EvalOptions::default()).unwrap(),
            brute_force_open(&w)
        );
    }

    #[test]
    fn dedup_option_never_changes_results(w in small_world()) {
        let (db, log, event) = materialize(&w);
        let q = ChainQuery {
            log,
            lid_col: 0,
            start_col: 2,
            steps: vec![ChainStep::new(event, 0, 1)],
            close_col: Some(1),
            anchor_filters: vec![],
        };
        let a = q.explained_rows(&db, EvalOptions { dedup: true }).unwrap();
        let b = q.explained_rows(&db, EvalOptions { dedup: false }).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn support_is_monotone_under_extension(w in small_world()) {
        // Extending `Log.Patient = E.Patient` with `E.Actor = Log.User`
        // can only shrink the explained set (§3.2's pruning lemma).
        let (db, log, event) = materialize(&w);
        let open = ChainQuery {
            log,
            lid_col: 0,
            start_col: 2,
            steps: vec![ChainStep::new(event, 0, 1)],
            close_col: None,
            anchor_filters: vec![],
        };
        let closed = ChainQuery { close_col: Some(1), ..open.clone() };
        let s_open = open.support(&db, EvalOptions::default()).unwrap();
        let s_closed = closed.support(&db, EvalOptions::default()).unwrap();
        prop_assert!(s_closed <= s_open);
    }

    #[test]
    fn estimate_is_finite_and_bounded(w in small_world()) {
        let (db, log, event) = materialize(&w);
        let q = ChainQuery {
            log,
            lid_col: 0,
            start_col: 2,
            steps: vec![ChainStep::new(event, 0, 1)],
            close_col: Some(1),
            anchor_filters: vec![],
        };
        let est = eba::relational::estimate_support(&db, &q);
        prop_assert!(est.is_finite());
        prop_assert!(est >= 0.0);
        prop_assert!(est <= w.log_rows.len() as f64 + 1e-9);
    }

    #[test]
    fn canonical_key_is_reversal_invariant(w in small_world()) {
        let (db, _, _) = materialize(&w);
        let spec = LogSpec::conventional(&db).unwrap();
        let path = Path::seed(
            &spec,
            Direction::Forward,
            Edge {
                from: db.attr("Log", "Patient").unwrap(),
                to: db.attr("Event", "Patient").unwrap(),
                kind: EdgeKind::ForeignKey,
            },
        )
        .unwrap()
        .closed_by(
            Edge {
                from: db.attr("Event", "Actor").unwrap(),
                to: db.attr("Log", "User").unwrap(),
                kind: EdgeKind::ForeignKey,
            },
            &spec,
        )
        .unwrap();
        let rev = path.reversed().unwrap();
        prop_assert_eq!(canonical_key(&path, &spec), canonical_key(&rev, &spec));
    }

    #[test]
    fn instance_counts_justify_explained_rows(w in small_world()) {
        // A row is explained iff it has at least one instance.
        let (db, log, event) = materialize(&w);
        let q = ChainQuery {
            log,
            lid_col: 0,
            start_col: 2,
            steps: vec![ChainStep::new(event, 0, 1)],
            close_col: Some(1),
            anchor_filters: vec![],
        };
        let explained: std::collections::HashSet<u32> =
            q.explained_rows(&db, EvalOptions::default()).unwrap().into_iter().collect();
        for rid in 0..w.log_rows.len() as u32 {
            let has_instance = !q.instances(&db, rid, 4).unwrap().is_empty();
            prop_assert_eq!(has_instance, explained.contains(&rid), "row {}", rid);
        }
    }
}

/// A three-table world for two-step chains: Log, Event(Patient, Actor),
/// Team(Member, Buddy) — the chain is
/// `Log.Patient = Event.Patient AND Event.Actor = Team.Member AND
/// Team.Buddy = Log.User`.
#[derive(Debug, Clone)]
struct TwoHopWorld {
    log_rows: Vec<(i64, i64, i64)>,
    event_rows: Vec<(i64, i64)>,
    team_rows: Vec<(i64, i64)>,
}

fn two_hop_world() -> impl Strategy<Value = TwoHopWorld> {
    (
        prop::collection::vec((0..30i64, 0..6i64, 0..8i64), 1..20),
        prop::collection::vec((0..8i64, 0..6i64), 0..20),
        prop::collection::vec((0..6i64, 0..6i64), 0..20),
    )
        .prop_map(|(mut log_rows, event_rows, team_rows)| {
            for (i, r) in log_rows.iter_mut().enumerate() {
                r.0 = i as i64;
            }
            TwoHopWorld {
                log_rows,
                event_rows,
                team_rows,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn two_step_chain_matches_brute_force(w in two_hop_world()) {
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        let event = db
            .create_table(
                "Event",
                &[("Patient", DataType::Int), ("Actor", DataType::Int)],
            )
            .unwrap();
        let team = db
            .create_table(
                "Team",
                &[("Member", DataType::Int), ("Buddy", DataType::Int)],
            )
            .unwrap();
        for &(lid, user, patient) in &w.log_rows {
            db.insert(log, vec![Value::Int(lid), Value::Int(user), Value::Int(patient)])
                .unwrap();
        }
        for &(p, a) in &w.event_rows {
            db.insert(event, vec![Value::Int(p), Value::Int(a)]).unwrap();
        }
        for &(m, b) in &w.team_rows {
            db.insert(team, vec![Value::Int(m), Value::Int(b)]).unwrap();
        }
        let q = ChainQuery {
            log,
            lid_col: 0,
            start_col: 2,
            steps: vec![ChainStep::new(event, 0, 1), ChainStep::new(team, 0, 1)],
            close_col: Some(1),
            anchor_filters: vec![],
        };
        let expected: Vec<u32> = w
            .log_rows
            .iter()
            .enumerate()
            .filter(|(_, (_, user, patient))| {
                w.event_rows.iter().any(|(p, actor)| {
                    p == patient
                        && w.team_rows
                            .iter()
                            .any(|(m, buddy)| m == actor && buddy == user)
                })
            })
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(q.explained_rows(&db, EvalOptions::default()).unwrap(), expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn modularity_bounded_and_louvain_not_worse_than_singletons(
        edges in prop::collection::vec((0usize..12, 0usize..12, 0.01f64..2.0), 1..40)
    ) {
        use eba::cluster::{louvain, modularity, GraphBuilder};
        let mut b = GraphBuilder::new(12);
        for (u, v, w) in &edges {
            b.add_edge(*u, *v, *w);
        }
        let g = b.build();
        let p = louvain(&g);
        prop_assert!((-0.5..=1.0).contains(&p.modularity), "Q = {}", p.modularity);
        let singletons: Vec<u32> = (0..12u32).collect();
        let q_singletons = modularity(&g, &singletons);
        prop_assert!(p.modularity >= q_singletons - 1e-9);
        // Louvain's reported modularity matches recomputation.
        prop_assert!((modularity(&g, &p.communities) - p.modularity).abs() < 1e-9);
    }

    #[test]
    fn access_matrix_rows_are_normalized(
        pairs in prop::collection::vec((0u32..6, 0u32..8), 1..40)
    ) {
        use eba::cluster::AccessMatrix;
        let m = AccessMatrix::from_pairs(6, 8, pairs);
        for p in 0..6u32 {
            let row_sum: f64 = (0..8u32).map(|u| m.entry(p, u)).sum();
            // Each non-empty row of A sums to exactly 1 (k · 1/k).
            prop_assert!(row_sum.abs() < 1e-9 || (row_sum - 1.0).abs() < 1e-9);
        }
    }
}
