//! `eba` — command-line interface to the explanation-based auditing system.
//!
//! ```text
//! eba synth --out DIR [--scale tiny|small|default] [--seed N] [--snoops N] [--mapping]
//! eba mine --data DIR [--support F] [--max-length N] [--max-tables N]
//!          [--algorithm one-way|two-way|bridge-2|bridge-3] [--groups] [--sql]
//! eba explain --data DIR --lid N [--groups]
//! eba report --data DIR --patient ID [--groups]
//! eba investigate --data DIR [--top N] [--groups]
//! eba serve --data DIR [--addr HOST:PORT] [--groups] [--shards N]
//!           [--pile FILE] [--fsync strict|relaxed] [--timeout SECS]
//! eba client --addr HOST:PORT --send "COMMAND ..."
//! eba watch --addr HOST:PORT [--misuse T] [--events N]
//! ```
//!
//! `synth` writes a CareWeb-shaped data set as one CSV per table; the other
//! subcommands load such a directory (yours or synthetic), so the same
//! workflow runs on real extracts. `serve` exposes the same audit surface
//! as a long-running TCP service (the `eba-serve` line protocol — see
//! `crates/server`); `client` drives one such command from a script.

use eba::audit::groups::{collaborative_groups, install_groups};
use eba::audit::handcrafted::{same_group, EventTable, HandcraftedTemplates};
use eba::audit::investigate::{diagnose, looks_like_snooping};
use eba::audit::portal::patient_report;
use eba::audit::Explainer;
use eba::cluster::HierarchyConfig;
use eba::core::describe::auto_description;
use eba::core::{
    mine_bridge, mine_one_way, mine_two_way, ExplanationTemplate, LogSpec, MiningConfig,
    MiningResult,
};
use eba::relational::{csv, Database, Value};
use eba::synth::{
    create_careweb_tables, declare_careweb_relationships, Hospital, LogColumns, SynthConfig,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage("missing subcommand");
    };
    let opts = Options::parse(rest);
    let result = match command.as_str() {
        "synth" => cmd_synth(&opts),
        "mine" => cmd_mine(&opts),
        "explain" => cmd_explain(&opts),
        "report" => cmd_report(&opts),
        "investigate" => cmd_investigate(&opts),
        "serve" => cmd_serve(&opts),
        "client" => cmd_client(&opts),
        "watch" => cmd_watch(&opts),
        "help" | "--help" | "-h" => usage(""),
        other => usage(&format!("unknown subcommand `{other}`")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "eba — explanation-based auditing (Fabbri & LeFevre, VLDB 2011)\n\
         \n\
         usage:\n\
         \x20 eba synth --out DIR [--scale tiny|small|default] [--seed N] [--snoops N] [--mapping]\n\
         \x20 eba mine --data DIR [--support F] [--max-length N] [--max-tables N]\n\
         \x20          [--algorithm one-way|two-way|bridge-2|bridge-3] [--groups] [--sql]\n\
         \x20 eba explain --data DIR --lid N [--groups]\n\
         \x20 eba report --data DIR --patient ID [--groups]\n\
         \x20 eba investigate --data DIR [--top N] [--groups]\n\
         \x20 eba serve --data DIR [--addr HOST:PORT] [--groups] [--shards N]\n\
         \x20           [--pile FILE] [--fsync strict|relaxed] [--timeout SECS]\n\
         \x20           [--max-conn N]\n\
         \x20 eba client --addr HOST:PORT --send \"COMMAND ...\" [--retries N]\n\
         \x20 eba watch --addr HOST:PORT [--misuse T] [--events N]"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}

/// Minimal `--flag value` / `--switch` parser.
struct Options {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Options {
    fn parse(args: &[String]) -> Options {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                usage(&format!("unexpected argument `{arg}`"));
            };
            match name {
                "groups" | "sql" | "mapping" => switches.push(name.to_string()),
                _ => {
                    let Some(value) = args.get(i + 1) else {
                        usage(&format!("--{name} expects a value"));
                    };
                    values.insert(name.to_string(), value.clone());
                    i += 1;
                }
            }
            i += 1;
        }
        Options { values, switches }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn require(&self, name: &str) -> &str {
        self.get(name)
            .unwrap_or_else(|| usage(&format!("--{name} is required")))
    }

    fn flag(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| usage(&format!("invalid value for --{name}: `{v}`"))),
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

// ---------------------------------------------------------------- synth

fn cmd_synth(opts: &Options) -> CliResult {
    let out = PathBuf::from(opts.require("out"));
    let mut config = match opts.get("scale").unwrap_or("small") {
        "tiny" => SynthConfig::tiny(),
        "small" => SynthConfig::small(),
        "default" => SynthConfig::default_scale(),
        other => usage(&format!("unknown scale `{other}`")),
    };
    config.seed = opts.parsed("seed", config.seed);
    config.n_snoop_accesses = opts.parsed("snoops", config.n_snoop_accesses);
    config.use_mapping_table = opts.flag("mapping");

    let hospital = Hospital::generate(config);
    std::fs::create_dir_all(&out)?;
    let mut tables: Vec<(&str, eba::relational::TableId)> = vec![
        ("Log", hospital.t_log),
        ("Appointments", hospital.t_appointments),
        ("Visits", hospital.t_visits),
        ("Documents", hospital.t_documents),
        ("Labs", hospital.t_labs),
        ("Medications", hospital.t_medications),
        ("Radiology", hospital.t_radiology),
        ("Users", hospital.t_users),
    ];
    if let Some(m) = hospital.t_mapping {
        tables.push(("Mapping", m));
    }
    for (name, id) in tables {
        let mut file =
            std::io::BufWriter::new(std::fs::File::create(out.join(format!("{name}.csv")))?);
        csv::export_table(&hospital.db, id, &mut file)?;
    }
    println!(
        "wrote {} accesses, {} users, {} patients to {}",
        hospital.log_len(),
        hospital.world.n_users(),
        hospital.world.n_patients(),
        out.display()
    );
    Ok(())
}

// ----------------------------------------------------------------- load

struct Loaded {
    db: Database,
    spec: LogSpec,
    cols: LogColumns,
    has_mapping: bool,
}

fn load_data(dir: &Path) -> Result<Loaded, Box<dyn std::error::Error>> {
    let has_mapping = dir.join("Mapping.csv").exists();
    let mut db = Database::new();
    let tables = create_careweb_tables(&mut db, has_mapping);
    for (name, id) in tables.named() {
        let path = dir.join(format!("{name}.csv"));
        let file = std::fs::File::open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        let mut reader = std::io::BufReader::new(file);
        csv::import_table(&mut db, id, &mut reader)?;
    }
    declare_careweb_relationships(&mut db, has_mapping, true);
    let spec = LogSpec::conventional(&db)?;
    let cols = eba::server::log_columns(&db, tables.log);
    Ok(Loaded {
        db,
        spec,
        cols,
        has_mapping,
    })
}

/// Trains collaborative groups on the full log and installs them.
fn add_groups(loaded: &mut Loaded) -> CliResult {
    let model = collaborative_groups(&loaded.db, &loaded.spec, HierarchyConfig::default(), 1_000)?;
    install_groups(&mut loaded.db, &model)?;
    Ok(())
}

/// The explanation suite: hand-crafted templates, plus depth-1 group
/// templates when groups are installed.
fn build_explainer(
    loaded: &Loaded,
    with_groups: bool,
) -> Result<Explainer, Box<dyn std::error::Error>> {
    let handcrafted = HandcraftedTemplates::build(&loaded.db, &loaded.spec)?;
    let mut templates: Vec<ExplanationTemplate> = handcrafted.all().into_iter().cloned().collect();
    if with_groups {
        for e in EventTable::ALL {
            templates.push(same_group(&loaded.db, &loaded.spec, e, Some(1))?);
        }
    }
    Ok(Explainer::new(templates))
}

// ----------------------------------------------------------------- mine

fn cmd_mine(opts: &Options) -> CliResult {
    let mut loaded = load_data(Path::new(opts.require("data")))?;
    let with_groups = opts.flag("groups");
    if with_groups {
        add_groups(&mut loaded)?;
    }
    let mut config = MiningConfig {
        support_frac: opts.parsed("support", 0.01),
        max_length: opts.parsed("max-length", 4),
        max_tables: opts.parsed("max-tables", 3),
        ..MiningConfig::default()
    };
    if loaded.has_mapping {
        config.exempt_tables.push(loaded.db.table_id("Mapping")?);
    }
    let algorithm = opts.get("algorithm").unwrap_or("one-way");
    let started = std::time::Instant::now();
    let result: MiningResult = match algorithm {
        "one-way" => mine_one_way(&loaded.db, &loaded.spec, &config),
        "two-way" => mine_two_way(&loaded.db, &loaded.spec, &config),
        other => match other.strip_prefix("bridge-").and_then(|n| n.parse().ok()) {
            Some(ell) => mine_bridge(&loaded.db, &loaded.spec, &config, ell)?,
            None => usage(&format!("unknown algorithm `{other}`")),
        },
    };
    println!(
        "mined {} templates in {:.2}s ({} support queries, threshold {} of {} accesses)\n",
        result.templates.len(),
        started.elapsed().as_secs_f64(),
        result.stats.support_queries(),
        result.threshold,
        result.anchor_lids
    );
    for t in &result.templates {
        println!(
            "[len {}] support {:>6}  {}",
            t.length(),
            t.support,
            auto_description(&loaded.db, &loaded.spec, &t.path)
        );
        if opts.flag("sql") {
            let sql = eba::core::sql::template_sql(&loaded.db, &loaded.spec, &t.path);
            for line in sql.lines() {
                println!("    {line}");
            }
        }
    }
    Ok(())
}

// -------------------------------------------------------------- explain

fn cmd_explain(opts: &Options) -> CliResult {
    let mut loaded = load_data(Path::new(opts.require("data")))?;
    let with_groups = opts.flag("groups");
    if with_groups {
        add_groups(&mut loaded)?;
    }
    let lid: i64 = opts.parsed("lid", -1);
    if lid < 0 {
        usage("--lid is required");
    }
    let log = loaded.db.table(loaded.spec.table);
    let rows = log.rows_with(loaded.cols.lid, Value::Int(lid));
    let Some(&rid) = rows.first() else {
        return Err(format!("no log record with Lid = {lid}").into());
    };
    let row = log.row(rid);
    println!(
        "log record {lid}: user {} accessed patient {}'s record at {}",
        row[loaded.cols.user].display(loaded.db.pool()),
        row[loaded.cols.patient].display(loaded.db.pool()),
        row[loaded.cols.date].display(loaded.db.pool()),
    );
    let explainer = build_explainer(&loaded, with_groups)?;
    let explanations = explainer.explain(&loaded.db, &loaded.spec, rid, 3)?;
    if explanations.is_empty() {
        println!("no explanation found; closest template verdicts:");
        let verdicts = diagnose(&loaded.db, &loaded.spec, &explainer, rid)?;
        for d in verdicts.iter().take(3) {
            println!("  - {}", d.summary());
        }
        if verdicts.len() > 3 {
            println!("  … and {} more rows", verdicts.len() - 3);
        }
    } else {
        for e in explanations {
            println!("  [len {}] {}", e.length, e.text);
        }
    }
    Ok(())
}

// --------------------------------------------------------------- report

fn cmd_report(opts: &Options) -> CliResult {
    let mut loaded = load_data(Path::new(opts.require("data")))?;
    let with_groups = opts.flag("groups");
    if with_groups {
        add_groups(&mut loaded)?;
    }
    let patient: i64 = opts.parsed("patient", -1);
    if patient < 0 {
        usage("--patient is required");
    }
    let explainer = build_explainer(&loaded, with_groups)?;
    let report = patient_report(
        &loaded.db,
        &loaded.spec,
        &loaded.cols,
        &explainer,
        Value::Int(patient),
    )?;
    if report.is_empty() {
        println!("no accesses recorded for patient {patient}");
        return Ok(());
    }
    println!(
        "access report for patient {patient} ({} accesses):",
        report.len()
    );
    for e in &report {
        println!(
            "  {:>6}  {:<16} user {:<6} {}",
            e.lid.display(loaded.db.pool()).to_string(),
            e.date.display(loaded.db.pool()).to_string(),
            e.user.display(loaded.db.pool()).to_string(),
            e.display_text()
        );
    }
    Ok(())
}

// ---------------------------------------------------------------- serve

/// `eba serve`: the CSV-loaded deployment of the `eba-serve` audit
/// service — same listener, same line protocol as the standalone binary,
/// but over your data. Prints one `listening on <addr>` line to stdout
/// (port 0 picks an ephemeral port) and serves until killed.
///
/// With `--pile FILE` the service is **durable**: startup recovers every
/// previously acknowledged `INGEST` from the segment pile (+ its
/// `FILE.wal`), and every new acknowledged batch is persisted before the
/// reply — under `--fsync strict` (the default) it is fsynced first, so
/// an acknowledged batch survives power loss. `--timeout SECS` bounds
/// how long an idle peer may hold a session (0 disables the deadline).
///
/// `--shards N` hash-partitions the log by patient into N shards that
/// refresh in parallel on `INGEST`; answers stay byte-identical to the
/// single-shard server. Defaults to `EBA_SHARDS`/`EBA_TEST_SHARDS`,
/// else 1.
fn cmd_serve(opts: &Options) -> CliResult {
    let mut loaded = load_data(Path::new(opts.require("data")))?;
    let with_groups = opts.flag("groups");
    if with_groups {
        add_groups(&mut loaded)?;
    }
    let explainer = build_explainer(&loaded, with_groups)?;
    let addr = opts.get("addr").unwrap_or("127.0.0.1:4780");
    let days = eba::server::days_in_log(&loaded.db, loaded.spec.table, &loaded.cols);
    let shards: usize = opts.parsed("shards", eba::server::default_shard_count());
    if shards == 0 {
        usage("--shards expects a positive count");
    }
    let service = match opts.get("pile") {
        None => eba::server::AuditService::new_sharded(
            loaded.db,
            loaded.spec,
            loaded.cols,
            explainer,
            days,
            shards,
        ),
        Some(pile) => {
            let policy = parse_fsync(opts);
            let svc = eba::server::AuditService::new_durable_sharded(
                loaded.db,
                loaded.spec,
                loaded.cols,
                explainer,
                days,
                Path::new(pile),
                policy,
                shards,
            )?;
            let report = svc.recovery_report().expect("durable service");
            eprintln!(
                "eba serve: durable ({policy} fsync) pile {pile}; {}",
                report.summary()
            );
            svc
        }
    };
    let log_len = service.sharded().load().global_log_len();
    eprintln!(
        "eba serve: {} accesses, {} templates, {}-day window, {} shard(s)",
        log_len,
        service.explainer.templates().len(),
        service.days,
        service.shard_count()
    );
    let server = eba::server::Server::spawn_with(service, addr, server_config(opts))?;
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush()?;
    server.join();
    Ok(())
}

/// `--fsync strict|relaxed` (default strict: an acknowledged `INGEST`
/// survives power loss).
fn parse_fsync(opts: &Options) -> eba::relational::Durability {
    let v = opts.get("fsync").unwrap_or("strict");
    eba::relational::Durability::parse(v)
        .unwrap_or_else(|| usage(&format!("--fsync expects strict|relaxed, got `{v}`")))
}

/// `--timeout SECS` → the server's socket deadlines (0 disables them);
/// `--max-conn N` → the concurrent-session cap (0 removes it).
fn server_config(opts: &Options) -> eba::server::ServerConfig {
    let secs: u64 = opts.parsed("timeout", 120);
    let timeout = (secs > 0).then(|| std::time::Duration::from_secs(secs));
    let defaults = eba::server::ServerConfig::default();
    eba::server::ServerConfig {
        read_timeout: timeout,
        write_timeout: timeout,
        max_connections: opts.parsed("max-conn", defaults.max_connections),
        ..defaults
    }
}

/// `eba client`: sends one protocol command to a running server and
/// prints the framed reply. An `ERR` reply exits non-zero, so scripts can
/// branch on it. `--retries N` retries refused or `ERR busy` connects
/// with capped exponential backoff before giving up.
fn cmd_client(opts: &Options) -> CliResult {
    let addr = opts.require("addr");
    let command = opts.require("send");
    if command.trim().to_ascii_uppercase().starts_with("INGEST") {
        return Err(
            "INGEST needs continuation lines; drive it from the library \
                    client (eba::server::Client::ingest) or a script over nc"
                .into(),
        );
    }
    let config = eba::server::ClientConfig {
        retry: eba::server::RetryPolicy {
            retries: opts.parsed("retries", eba::server::RetryPolicy::backoff().retries),
            ..eba::server::RetryPolicy::backoff()
        },
        ..eba::server::ClientConfig::default()
    };
    let mut client = eba::server::Client::connect_with(addr, config)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let reply = client.send(command)?;
    {
        // `writeln!`, not `println!`: a downstream `| head` closing the
        // pipe early must not panic a scripting-oriented subcommand.
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), "{}", reply.render());
    }
    let _ = client.send("QUIT");
    if !reply.is_ok() {
        exit(1);
    }
    Ok(())
}

/// `eba watch`: subscribes to a running server's push feed and prints
/// `EVENT` frames as they arrive. `--misuse T` subscribes to misuse
/// threshold crossings instead of the default new-unexplained feed;
/// `--events N` exits cleanly after N events (0 = run until the server
/// closes the session or sheds us as a slow consumer).
fn cmd_watch(opts: &Options) -> CliResult {
    use std::io::Write as _;
    let addr = opts.require("addr");
    let events: usize = opts.parsed("events", 0);
    let subscribe = match opts.get("misuse") {
        Some(t) => {
            let t: usize = t
                .parse()
                .unwrap_or_else(|_| usage(&format!("invalid value for --misuse: `{t}`")));
            format!("SUBSCRIBE MISUSE {t}")
        }
        None => "SUBSCRIBE UNEXPLAINED".to_string(),
    };
    // Watching is an indefinitely-idle activity: disable the client-side
    // read deadline so a quiet audit log does not look like a dead peer.
    let config = eba::server::ClientConfig {
        read_timeout: None,
        ..eba::server::ClientConfig::default()
    };
    let mut client = eba::server::Client::connect_with(addr, config)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let reply = client.send(&subscribe)?;
    let _ = writeln!(std::io::stdout(), "{}", reply.render());
    if !reply.is_ok() {
        exit(1);
    }
    let mut seen = 0usize;
    loop {
        let frame = match client.next_event() {
            Ok(frame) => frame,
            // Server shutdown closes subscribed sessions without a
            // farewell frame; that is a clean end of the feed.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let _ = writeln!(std::io::stdout(), "{}", frame.render());
        if !frame.is_event() {
            // `ERR slow-consumer` (we fell behind) or any other
            // server-initiated teardown notice ends the feed.
            exit(1);
        }
        seen += 1;
        if events > 0 && seen >= events {
            let _ = client.send("QUIT");
            return Ok(());
        }
    }
}

// ---------------------------------------------------------- investigate

fn cmd_investigate(opts: &Options) -> CliResult {
    let mut loaded = load_data(Path::new(opts.require("data")))?;
    let with_groups = opts.flag("groups");
    if with_groups {
        add_groups(&mut loaded)?;
    }
    let explainer = build_explainer(&loaded, with_groups)?;
    // The session engine: the loaded database moves into a snapshot-
    // handoff cell and the whole investigation pins one epoch — a live
    // deployment tailing the log would `session.ingest(...)` concurrently
    // and this session would neither block it nor see a torn view.
    let spec = loaded.spec;
    let session = eba::relational::SharedEngine::new(loaded.db);
    let epoch = session.load();
    let db = epoch.db();
    let unexplained = explainer.unexplained_rows_at(&spec, &epoch);
    let total = db.table(spec.table).len();
    println!(
        "{} of {} accesses unexplained ({:.1}%)",
        unexplained.len(),
        total,
        100.0 * unexplained.len() as f64 / total.max(1) as f64
    );
    let mut snoop_like = 0usize;
    for &rid in &unexplained {
        if looks_like_snooping(&diagnose(db, &spec, &explainer, rid)?) {
            snoop_like += 1;
        }
    }
    println!(
        "{} look like snooping (the data points at a different user); {} are data gaps",
        snoop_like,
        unexplained.len() - snoop_like
    );
    let top: usize = opts.parsed("top", 10);
    println!("\ntop users by unexplained accesses:");
    let queue = eba::audit::portal::misuse_summary_at(&spec, &explainer, &epoch);
    for s in queue.iter().take(top) {
        println!(
            "  user {:<8} {:>5} unexplained across {:>5} patients",
            s.user.display(db.pool()).to_string(),
            s.unexplained,
            s.distinct_patients
        );
    }
    if queue.len() > top {
        println!(
            "  … and {} more rows (raise --top to see them)",
            queue.len() - top
        );
    }
    Ok(())
}
