//! # eba — Explanation-Based Auditing
//!
//! A Rust reproduction of *Explanation-Based Auditing* (Daniel Fabbri &
//! Kristen LeFevre, PVLDB 5(1), 2011). Given an access log that records who
//! accessed whose record, the system explains **why** each access occurred by
//! finding paths through the database connecting the data that was accessed
//! back to the user who accessed it — e.g. *"Alice had an appointment with
//! Dr. Dave"* — and mines such explanation templates automatically.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`relational`] — in-memory relational engine (the PostgreSQL substitute)
//! * [`cluster`] — modularity-based collaborative-group inference (§4)
//! * [`synth`] — synthetic CareWeb-like hospital data generator (§5.2)
//! * [`core`] — explanation templates and mining algorithms (§2–3)
//! * [`audit`] — user-centric auditing, misuse triage and evaluation (§5)
//! * [`server`] — `eba-serve`: the concurrent audit service (line protocol
//!   over TCP, epoch-pinned sessions on a `SharedEngine`)
//! * [`experiments`] — per-figure/table reproduction of the evaluation
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the paper's running example (Figure 3)
//! end-to-end: build the database, mine templates, and explain each access.
//! The `eba` binary (`src/bin/eba.rs`) exposes the same workflow over CSV
//! data directories: `eba synth`, `eba mine`, `eba explain`, `eba report`,
//! `eba investigate`.

pub use eba_audit as audit;
pub use eba_cluster as cluster;
pub use eba_core as core;
pub use eba_experiments as experiments;
pub use eba_relational as relational;
pub use eba_server as server;
pub use eba_synth as synth;
