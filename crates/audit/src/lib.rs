//! # eba-audit
//!
//! The auditing application layer of *Explanation-Based Auditing*:
//!
//! * [`handcrafted`] — the paper's hand-crafted explanation templates
//!   (§5.3.1) against the CareWeb-shaped schema: appointment / visit /
//!   document with the accessing doctor, the decorated repeat-access
//!   template, consult-order templates, department-code and
//!   collaborative-group variants, and the "patient had *some* event"
//!   predicates used to measure Figures 6 and 8;
//! * [`groups`] — building collaborative groups from the log (§4) and
//!   installing the `Groups(Group_Depth, Group_id, User)` table plus its
//!   join metadata;
//! * [`fake`] — the fake-log methodology of §5.3.2 (uniformly random
//!   user–patient accesses appended to the log) used to measure precision;
//! * [`metrics`] — precision / recall / normalized recall;
//! * [`explain`] — the [`explain::Explainer`]: rank a log record's
//!   explanation instances by path length, find unexplained accesses;
//! * [`portal`] — user-centric auditing reports (the patient portal of the
//!   paper's introduction) and the compliance-office misuse triage view;
//! * [`investigate`] — near-miss diagnosis of unexplained accesses (how far
//!   did each template's path get, and did it point at a *different* user —
//!   the snooping signature);
//! * [`timeline`] — per-day explained/unexplained trends, with an explicit
//!   overflow bucket for clock-skewed accesses so totals never silently
//!   shrink;
//! * [`split`] — train/test anchor filters over days and first accesses.
//!
//! Every view comes in three forms: a one-off per-query form, a `*_with`
//! form over a warm [`eba_relational::Engine`], and a `*_at` form over a
//! pinned [`eba_relational::Epoch`] from a
//! [`eba_relational::SharedEngine`] — the session form a long-running
//! service uses so its explanations, timeline, and triage queue all
//! describe the same frozen log state while ingests publish new epochs
//! behind it.

pub mod explain;
pub mod fake;
pub mod groups;
pub mod handcrafted;
pub mod investigate;
pub mod metrics;
pub mod portal;
pub mod split;
pub mod timeline;

pub use explain::{Explainer, RankedExplanation};
pub use fake::FakeLog;
pub use groups::{collaborative_groups, install_groups, GroupsModel};
pub use handcrafted::HandcraftedTemplates;
pub use metrics::Confusion;
pub use timeline::{DayBuckets, DayStats, Timeline};
