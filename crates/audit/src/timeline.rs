//! Per-day compliance timeline.
//!
//! The compliance-office view of the paper's misuse-detection application:
//! how much of each day's traffic is explained, and how the unexplained
//! residue trends. A day whose unexplained share spikes is where an
//! investigation starts.

use crate::explain::Explainer;
use crate::split;
use eba_core::LogSpec;
use eba_relational::{Database, Engine, Epoch, EpochVec, RowSet};
use eba_synth::LogColumns;

/// One day's explanation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayStats {
    /// 1-based day — or [`DayStats::OVERFLOW_DAY`] for the bucket of
    /// accesses whose timestamp fell outside the reporting window.
    pub day: u32,
    /// Accesses that day (within the spec's other filters).
    pub total: usize,
    /// Accesses explained by at least one template.
    pub explained: usize,
    /// First accesses that day.
    pub first_accesses: usize,
    /// First accesses explained.
    pub first_explained: usize,
}

impl DayStats {
    /// The `day` value of the out-of-window bucket ([`Timeline::overflow`]).
    pub const OVERFLOW_DAY: u32 = 0;

    /// Fraction of the day's accesses explained (1.0 for an empty day).
    pub fn explained_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.explained as f64 / self.total as f64
        }
    }

    fn empty(day: u32) -> DayStats {
        DayStats {
            day,
            total: 0,
            explained: 0,
            first_accesses: 0,
            first_explained: 0,
        }
    }
}

/// The per-day compliance view: one [`DayStats`] per day of the window,
/// plus an explicit bucket for everything *outside* it.
///
/// Real access logs carry clock skew — a misconfigured workstation stamps
/// day 0 or day 400. Silently dropping those rows (what this module did
/// before the overflow bucket existed) over-reports compliance: the
/// dashboard's totals miss exactly the accesses most worth a look.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// Days `1..=days`, in order.
    pub days: Vec<DayStats>,
    /// Accesses whose `Day` was outside `1..=days` (or not an integer —
    /// a NULL day counts as skew, not as silence). `day` is
    /// [`DayStats::OVERFLOW_DAY`].
    pub overflow: DayStats,
}

impl Timeline {
    /// Accesses excluded from the per-day rows (the overflow bucket's
    /// total) — zero on a well-formed log.
    pub fn dropped(&self) -> usize {
        self.overflow.total
    }

    /// Total accesses across the window *and* the overflow bucket.
    pub fn total(&self) -> usize {
        self.days.iter().map(|s| s.total).sum::<usize>() + self.overflow.total
    }
}

/// Computes per-day statistics for days `1..=days` under `explainer`.
pub fn daily_stats(
    db: &Database,
    spec: &LogSpec,
    cols: &LogColumns,
    explainer: &Explainer,
    days: u32,
) -> Timeline {
    // One evaluation over the whole log, then bucket by day.
    let explained: RowSet = explainer.explained_rows(db, spec).into_iter().collect();
    DayBuckets::build(db, spec, cols, days).timeline(&explained)
}

/// [`daily_stats`] through a shared [`Engine`]: the compliance dashboard
/// recomputes this view repeatedly as the log grows, so the suite is
/// evaluated as one fused batch against the warm (refreshable) engine
/// and the day buckets intersect the compressed
/// [`eba_relational::RowSet`] directly — no intermediate hash set.
pub fn daily_stats_with(
    db: &Database,
    spec: &LogSpec,
    cols: &LogColumns,
    explainer: &Explainer,
    days: u32,
    engine: &Engine,
) -> Timeline {
    let explained = explainer.explained_rowset_with(db, spec, engine);
    DayBuckets::build(db, spec, cols, days).timeline(&explained)
}

/// [`daily_stats`] against a pinned [`Epoch`]: the dashboard session's
/// view, consistent with every other question asked of the same epoch
/// while the log keeps ingesting behind it.
pub fn daily_stats_at(
    spec: &LogSpec,
    cols: &LogColumns,
    explainer: &Explainer,
    days: u32,
    epoch: &Epoch,
) -> Timeline {
    daily_stats_with(epoch.db(), spec, cols, explainer, days, epoch.engine())
}

/// [`daily_stats`] against a pinned **epoch vector**: each shard buckets
/// its own slice of the log in parallel and the day buckets sum — every
/// [`DayStats`] field is a count over disjoint row sets, so the merge is
/// exact, overflow bucket included.
pub fn daily_stats_at_shards(
    spec: &LogSpec,
    cols: &LogColumns,
    explainer: &Explainer,
    days: u32,
    shards: &EpochVec,
) -> Timeline {
    let per_shard = shards
        .par_map_shards(|_, shard| daily_stats_at(spec, cols, explainer, days, shard.epoch()));
    let mut merged = Timeline {
        days: (1..=days).map(DayStats::empty).collect(),
        overflow: DayStats::empty(DayStats::OVERFLOW_DAY),
    };
    for t in per_shard {
        for (m, s) in merged.days.iter_mut().zip(&t.days) {
            m.add(s);
        }
        merged.overflow.add(&t.overflow);
    }
    merged
}

impl DayStats {
    fn add(&mut self, other: &DayStats) {
        debug_assert_eq!(self.day, other.day);
        self.total += other.total;
        self.explained += other.explained;
        self.first_accesses += other.first_accesses;
        self.first_explained += other.first_explained;
    }
}

/// The anchored log bucketed by day as compressed row sets: one
/// [`RowSet`] of accesses per in-window day plus the overflow bucket,
/// with the first-access rows kept as a parallel set per bucket.
///
/// Built with one scan of the log; every [`Timeline`] derived from it
/// afterwards is pure set algebra — `total`/`first_accesses` are set
/// cardinalities and `explained`/`first_explained` are intersection
/// counts via [`RowSet::intersect_len`], which walks the compressed
/// containers without materializing the intersection. A dashboard that
/// re-renders the timeline as the explained set evolves rebuilds only
/// the counts, never the buckets.
#[derive(Debug, Clone)]
pub struct DayBuckets {
    days: Vec<DayBucket>,
    overflow: DayBucket,
}

#[derive(Debug, Clone)]
struct DayBucket {
    day: u32,
    all: RowSet,
    firsts: RowSet,
}

impl DayBucket {
    fn empty(day: u32) -> DayBucket {
        DayBucket {
            day,
            all: RowSet::new(),
            firsts: RowSet::new(),
        }
    }

    fn stats(&self, explained: &RowSet) -> DayStats {
        DayStats {
            day: self.day,
            total: self.all.len(),
            explained: self.all.intersect_len(explained),
            first_accesses: self.firsts.len(),
            first_explained: self.firsts.intersect_len(explained),
        }
    }
}

impl DayBuckets {
    /// Buckets the log by day: one scan, anchor filters applied row by
    /// row. In-window accesses land in their day's bucket; clock-skewed
    /// or day-less ones land in the overflow bucket instead of
    /// vanishing.
    pub fn build(db: &Database, spec: &LogSpec, cols: &LogColumns, days: u32) -> DayBuckets {
        let log = db.table(spec.table);
        let mut buckets = DayBuckets {
            days: (1..=days).map(DayBucket::empty).collect(),
            overflow: DayBucket::empty(DayStats::OVERFLOW_DAY),
        };
        for (rid, row) in log.iter() {
            if !spec
                .anchor_filters
                .iter()
                .all(|(col, op, v)| op.eval(&row[*col], v))
            {
                continue;
            }
            let b = match row[cols.day] {
                eba_relational::Value::Int(day) if (1..=days as i64).contains(&day) => {
                    &mut buckets.days[(day - 1) as usize]
                }
                _ => &mut buckets.overflow,
            };
            b.all.insert(rid);
            if row[cols.is_first] == eba_relational::Value::Int(1) {
                b.firsts.insert(rid);
            }
        }
        buckets
    }

    /// Derives the per-day timeline against an explained set — counts
    /// only, no per-row probing and no allocation.
    pub fn timeline(&self, explained: &RowSet) -> Timeline {
        Timeline {
            days: self.days.iter().map(|b| b.stats(explained)).collect(),
            overflow: self.overflow.stats(explained),
        }
    }
}

/// Convenience: per-day stats over the full log (no extra filters).
pub fn full_timeline(
    db: &Database,
    spec: &LogSpec,
    cols: &LogColumns,
    explainer: &Explainer,
    days: u32,
) -> Timeline {
    let _ = split::day_range(cols, 1, days); // shape documentation only
    daily_stats(db, spec, cols, explainer, days)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handcrafted::HandcraftedTemplates;
    use eba_synth::{Hospital, SynthConfig};

    fn setup() -> (Hospital, LogSpec, Explainer) {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = LogSpec::conventional(&h.db).unwrap();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let explainer = Explainer::new(t.all().into_iter().cloned().collect());
        (h, spec, explainer)
    }

    #[test]
    fn daily_totals_sum_to_log_size() {
        let (h, spec, explainer) = setup();
        let timeline = daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days);
        assert_eq!(timeline.days.len(), h.config.days as usize);
        // A well-formed synthetic log has no clock skew.
        assert_eq!(timeline.dropped(), 0);
        assert_eq!(timeline.total(), h.log_len());
        for s in &timeline.days {
            assert!(s.explained <= s.total);
            assert!(s.first_explained <= s.first_accesses);
            assert!(s.first_accesses <= s.total);
            assert!((0.0..=1.0).contains(&s.explained_rate()));
        }
    }

    #[test]
    fn clock_skewed_accesses_land_in_the_overflow_bucket() {
        let (mut h, spec, explainer) = setup();
        let before = daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days);
        // Three skewed accesses: day 0, day beyond the window, and a NULL
        // day — none may vanish from the totals.
        let arity = h.db.table(h.t_log).schema().arity();
        for day in [
            eba_relational::Value::Int(0),
            eba_relational::Value::Int(h.config.days as i64 + 30),
            eba_relational::Value::Null,
        ] {
            let mut row = vec![eba_relational::Value::Null; arity];
            row[h.log_cols.lid] = eba_relational::Value::Int(1_000_000);
            row[h.log_cols.date] = eba_relational::Value::Date(0);
            row[h.log_cols.user] = eba_relational::Value::Int(1);
            row[h.log_cols.patient] = eba_relational::Value::Int(1);
            row[h.log_cols.day] = day;
            row[h.log_cols.is_first] = eba_relational::Value::Int(0);
            h.db.insert(h.t_log, row).unwrap();
        }
        let after = daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days);
        assert_eq!(after.dropped(), 3);
        assert_eq!(after.overflow.day, DayStats::OVERFLOW_DAY);
        assert_eq!(after.total(), h.log_len());
        assert_eq!(after.total(), before.total() + 3);
        // The in-window rows are untouched by the skewed appends.
        for (b, a) in before.days.iter().zip(&after.days) {
            assert_eq!(b.total, a.total);
        }
    }

    #[test]
    fn engine_backed_timeline_matches_per_query() {
        let (h, spec, explainer) = setup();
        let engine = eba_relational::Engine::new(&h.db);
        assert_eq!(
            daily_stats_with(
                &h.db,
                &spec,
                &h.log_cols,
                &explainer,
                h.config.days,
                &engine
            ),
            daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days)
        );
    }

    #[test]
    fn epoch_pinned_timeline_matches_per_query() {
        let (h, spec, explainer) = setup();
        let shared = eba_relational::SharedEngine::new(h.db.clone());
        let epoch = shared.load();
        assert_eq!(
            daily_stats_at(&spec, &h.log_cols, &explainer, h.config.days, &epoch),
            daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days)
        );
    }

    #[test]
    fn clock_skewed_ingest_surfaces_through_the_epoch_pinned_path() {
        // The overflow bucket must be visible through `daily_stats_at`
        // (the session form a live service uses), not just the direct
        // call: skewed rows arrive via `SharedEngine::ingest`, and the
        // re-pinned epoch's timeline carries them in the overflow bucket
        // while the old pin stays byte-stable.
        let (h, spec, explainer) = setup();
        let shared = eba_relational::SharedEngine::new(h.db.clone());
        let pinned = shared.load();
        let before = daily_stats_at(&spec, &h.log_cols, &explainer, h.config.days, &pinned);
        assert_eq!(before.dropped(), 0);

        let arity = h.db.table(h.t_log).schema().arity();
        let cols = h.log_cols;
        let days = h.config.days;
        let (_, report) = shared.ingest(|db| {
            for (i, day) in [
                eba_relational::Value::Int(0),
                eba_relational::Value::Int(days as i64 + 30),
                eba_relational::Value::Null,
            ]
            .into_iter()
            .enumerate()
            {
                let mut row = vec![eba_relational::Value::Null; arity];
                row[cols.lid] = eba_relational::Value::Int(2_000_000 + i as i64);
                row[cols.date] = eba_relational::Value::Date(0);
                row[cols.user] = eba_relational::Value::Int(1);
                row[cols.patient] = eba_relational::Value::Int(1);
                row[cols.day] = day;
                row[cols.is_first] = eba_relational::Value::Int(0);
                db.insert(h.t_log, row).unwrap();
            }
        });
        assert!(report.fallback_warning().is_none());

        // The old pin is untouched; the new epoch shows the skew.
        assert_eq!(
            daily_stats_at(&spec, &h.log_cols, &explainer, days, &pinned),
            before
        );
        let fresh = shared.load();
        let after = daily_stats_at(&spec, &h.log_cols, &explainer, days, &fresh);
        assert_eq!(after.dropped(), 3);
        assert_eq!(after.overflow.day, DayStats::OVERFLOW_DAY);
        assert_eq!(after.total(), before.total() + 3);
        for (b, a) in before.days.iter().zip(&after.days) {
            assert_eq!(b.total, a.total, "in-window days untouched");
        }
        // And the epoch-pinned view equals the direct call on the same db.
        assert_eq!(
            after,
            daily_stats(fresh.db(), &spec, &h.log_cols, &explainer, days)
        );
    }

    #[test]
    fn sharded_timeline_matches_unsharded_oracle() {
        let (h, spec, explainer) = setup();
        let key = eba_relational::ShardKey {
            table: spec.table,
            col: spec.patient_col,
        };
        let oracle = daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days);
        for n in [1, 3] {
            let sharded = eba_relational::ShardedEngine::new(h.db.clone(), key, n);
            let shards = sharded.load();
            assert_eq!(
                daily_stats_at_shards(&spec, &h.log_cols, &explainer, h.config.days, &shards),
                oracle,
                "{n} shards"
            );
        }
    }

    #[test]
    fn day_buckets_are_reusable_across_explained_sets() {
        // One bucket build serves any number of explained sets: the
        // empty set zeroes the explained counts, the full log explains
        // everything, and the real suite matches `daily_stats`.
        let (h, spec, explainer) = setup();
        let buckets = DayBuckets::build(&h.db, &spec, &h.log_cols, h.config.days);

        let none = buckets.timeline(&RowSet::new());
        assert_eq!(none.total(), h.log_len());
        for s in none.days.iter().chain([&none.overflow]) {
            assert_eq!(s.explained, 0);
            assert_eq!(s.first_explained, 0);
        }

        let all: RowSet = (0..h.log_len() as u32).collect();
        let everything = buckets.timeline(&all);
        for s in everything.days.iter().chain([&everything.overflow]) {
            assert_eq!(s.explained, s.total);
            assert_eq!(s.first_explained, s.first_accesses);
        }

        let explained: RowSet = explainer.explained_rows(&h.db, &spec).into_iter().collect();
        assert_eq!(
            buckets.timeline(&explained),
            daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days)
        );
    }

    #[test]
    fn first_accesses_sum_to_distinct_pairs() {
        let (h, spec, explainer) = setup();
        let stats = daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days).days;
        let firsts: usize = stats.iter().map(|s| s.first_accesses).sum();
        let mut pairs = std::collections::HashSet::new();
        for (_, row) in h.db.table(h.t_log).iter() {
            pairs.insert((row[h.log_cols.user], row[h.log_cols.patient]));
        }
        assert_eq!(firsts, pairs.len());
    }

    #[test]
    fn day_filters_compose() {
        let (h, spec, explainer) = setup();
        // Restricting the spec to day 3 zeroes all other days.
        let day3 = spec.with_filters(split::day_range(&h.log_cols, 3, 3));
        let stats = daily_stats(&h.db, &day3, &h.log_cols, &explainer, h.config.days).days;
        for s in &stats {
            if s.day != 3 {
                assert_eq!(s.total, 0);
                assert_eq!(s.explained_rate(), 1.0, "empty day rate defaults to 1");
            } else {
                assert!(s.total > 0);
            }
        }
    }

    #[test]
    fn explained_rate_is_reasonably_stable_across_days() {
        let (h, spec, explainer) = setup();
        let stats = full_timeline(&h.db, &spec, &h.log_cols, &explainer, h.config.days).days;
        let rates: Vec<f64> = stats
            .iter()
            .filter(|s| s.total > 20)
            .map(|s| s.explained_rate())
            .collect();
        assert!(rates.len() >= 3);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min < 0.45,
            "explained rate varies wildly across days: {min:.2}..{max:.2}"
        );
    }
}
