//! Per-day compliance timeline.
//!
//! The compliance-office view of the paper's misuse-detection application:
//! how much of each day's traffic is explained, and how the unexplained
//! residue trends. A day whose unexplained share spikes is where an
//! investigation starts.

use crate::explain::Explainer;
use crate::split;
use eba_core::LogSpec;
use eba_relational::{Database, Engine, RowId};
use eba_synth::LogColumns;
use std::collections::HashSet;

/// One day's explanation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayStats {
    /// 1-based day.
    pub day: u32,
    /// Accesses that day (within the spec's other filters).
    pub total: usize,
    /// Accesses explained by at least one template.
    pub explained: usize,
    /// First accesses that day.
    pub first_accesses: usize,
    /// First accesses explained.
    pub first_explained: usize,
}

impl DayStats {
    /// Fraction of the day's accesses explained (1.0 for an empty day).
    pub fn explained_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.explained as f64 / self.total as f64
        }
    }
}

/// Computes per-day statistics for days `1..=days` under `explainer`.
pub fn daily_stats(
    db: &Database,
    spec: &LogSpec,
    cols: &LogColumns,
    explainer: &Explainer,
    days: u32,
) -> Vec<DayStats> {
    // One evaluation over the whole log, then bucket by day.
    bucket_by_day(db, spec, cols, &explainer.explained_rows(db, spec), days)
}

/// [`daily_stats`] through a shared [`Engine`]: the compliance dashboard
/// recomputes this view repeatedly as the log grows, so the suite is
/// evaluated as one batch against the warm (refreshable) engine.
pub fn daily_stats_with(
    db: &Database,
    spec: &LogSpec,
    cols: &LogColumns,
    explainer: &Explainer,
    days: u32,
    engine: &Engine,
) -> Vec<DayStats> {
    bucket_by_day(
        db,
        spec,
        cols,
        &explainer.explained_rows_with(db, spec, engine),
        days,
    )
}

/// Buckets a precomputed explained set by day.
fn bucket_by_day(
    db: &Database,
    spec: &LogSpec,
    cols: &LogColumns,
    explained: &HashSet<RowId>,
    days: u32,
) -> Vec<DayStats> {
    let log = db.table(spec.table);
    let mut stats: Vec<DayStats> = (1..=days)
        .map(|day| DayStats {
            day,
            total: 0,
            explained: 0,
            first_accesses: 0,
            first_explained: 0,
        })
        .collect();
    for (rid, row) in log.iter() {
        if !spec
            .anchor_filters
            .iter()
            .all(|(col, op, v)| op.eval(&row[*col], v))
        {
            continue;
        }
        let eba_relational::Value::Int(day) = row[cols.day] else {
            continue;
        };
        let Some(s) = stats.get_mut((day as usize).saturating_sub(1)) else {
            continue;
        };
        let is_first = row[cols.is_first] == eba_relational::Value::Int(1);
        let is_explained = explained.contains(&rid);
        s.total += 1;
        if is_explained {
            s.explained += 1;
        }
        if is_first {
            s.first_accesses += 1;
            if is_explained {
                s.first_explained += 1;
            }
        }
    }
    stats
}

/// Convenience: per-day stats over the full log (no extra filters).
pub fn full_timeline(
    db: &Database,
    spec: &LogSpec,
    cols: &LogColumns,
    explainer: &Explainer,
    days: u32,
) -> Vec<DayStats> {
    let _ = split::day_range(cols, 1, days); // shape documentation only
    daily_stats(db, spec, cols, explainer, days)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handcrafted::HandcraftedTemplates;
    use eba_synth::{Hospital, SynthConfig};

    fn setup() -> (Hospital, LogSpec, Explainer) {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = LogSpec::conventional(&h.db).unwrap();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let explainer = Explainer::new(t.all().into_iter().cloned().collect());
        (h, spec, explainer)
    }

    #[test]
    fn daily_totals_sum_to_log_size() {
        let (h, spec, explainer) = setup();
        let stats = daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days);
        assert_eq!(stats.len(), h.config.days as usize);
        let total: usize = stats.iter().map(|s| s.total).sum();
        assert_eq!(total, h.log_len());
        for s in &stats {
            assert!(s.explained <= s.total);
            assert!(s.first_explained <= s.first_accesses);
            assert!(s.first_accesses <= s.total);
            assert!((0.0..=1.0).contains(&s.explained_rate()));
        }
    }

    #[test]
    fn engine_backed_timeline_matches_per_query() {
        let (h, spec, explainer) = setup();
        let engine = eba_relational::Engine::new(&h.db);
        assert_eq!(
            daily_stats_with(
                &h.db,
                &spec,
                &h.log_cols,
                &explainer,
                h.config.days,
                &engine
            ),
            daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days)
        );
    }

    #[test]
    fn first_accesses_sum_to_distinct_pairs() {
        let (h, spec, explainer) = setup();
        let stats = daily_stats(&h.db, &spec, &h.log_cols, &explainer, h.config.days);
        let firsts: usize = stats.iter().map(|s| s.first_accesses).sum();
        let mut pairs = std::collections::HashSet::new();
        for (_, row) in h.db.table(h.t_log).iter() {
            pairs.insert((row[h.log_cols.user], row[h.log_cols.patient]));
        }
        assert_eq!(firsts, pairs.len());
    }

    #[test]
    fn day_filters_compose() {
        let (h, spec, explainer) = setup();
        // Restricting the spec to day 3 zeroes all other days.
        let day3 = spec.with_filters(split::day_range(&h.log_cols, 3, 3));
        let stats = daily_stats(&h.db, &day3, &h.log_cols, &explainer, h.config.days);
        for s in &stats {
            if s.day != 3 {
                assert_eq!(s.total, 0);
                assert_eq!(s.explained_rate(), 1.0, "empty day rate defaults to 1");
            } else {
                assert!(s.total > 0);
            }
        }
    }

    #[test]
    fn explained_rate_is_reasonably_stable_across_days() {
        let (h, spec, explainer) = setup();
        let stats = full_timeline(&h.db, &spec, &h.log_cols, &explainer, h.config.days);
        let rates: Vec<f64> = stats
            .iter()
            .filter(|s| s.total > 20)
            .map(|s| s.explained_rate())
            .collect();
        assert!(rates.len() >= 3);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min < 0.45,
            "explained rate varies wildly across days: {min:.2}..{max:.2}"
        );
    }
}
