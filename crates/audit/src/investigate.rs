//! Investigating unexplained accesses.
//!
//! When an access has no explanation, the paper routes it to the
//! compliance office. An investigator's first question is *how close* the
//! access came to being explained: an access whose template paths die
//! immediately (the patient has no events at all) looks very different
//! from one where the path reached the final hop but the user was not the
//! one the data pointed to — the signature of snooping on a colleague's
//! patient.
//!
//! [`diagnose`] runs every template's chain step-by-step
//! ([`eba_relational::ChainQuery::trace`]) for one access and ranks the
//! near-misses.

use crate::explain::{Explainer, PreparedExplainer};
use eba_core::LogSpec;
use eba_relational::{Database, Result, RowId};

/// How one template related to one unexplained access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The template explains the access (not a near-miss).
    Explained,
    /// The chain survived every step but the final value set did not
    /// contain the accessing user — someone *else* had the relationship.
    WrongUser {
        /// Distinct users the path actually pointed at.
        candidates: usize,
    },
    /// The chain died mid-path.
    DiedAtStep {
        /// 0-based index of the first empty step.
        step: usize,
        /// Total steps in the chain.
        of: usize,
    },
    /// The access did not match the template's anchor filters.
    OutOfScope,
}

/// One template's diagnosis for an access.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Index into the explainer's template list.
    pub template_index: usize,
    /// Template label.
    pub label: String,
    /// What happened.
    pub outcome: Outcome,
}

impl Diagnosis {
    /// Near-miss score for ranking: explained (3) > wrong user (2) >
    /// died late (1 scaled) > out of scope (0).
    fn score(&self) -> (u8, usize) {
        match self.outcome {
            Outcome::Explained => (3, 0),
            Outcome::WrongUser { .. } => (2, 0),
            Outcome::DiedAtStep { step, .. } => (1, step),
            Outcome::OutOfScope => (0, 0),
        }
    }

    /// Human-readable one-liner.
    pub fn summary(&self) -> String {
        match &self.outcome {
            Outcome::Explained => format!("{}: explained", self.label),
            Outcome::WrongUser { candidates } => format!(
                "{}: the data points at {candidates} other user(s), not this one",
                self.label
            ),
            Outcome::DiedAtStep { step, of } => {
                format!("{}: no matching data at hop {}/{of}", self.label, step + 1)
            }
            Outcome::OutOfScope => format!("{}: not applicable", self.label),
        }
    }
}

/// Diagnoses one access against every template, sorted with the closest
/// misses first.
///
/// Convenience for one-off calls; investigating many accesses should
/// [`Explainer::prepared`] once and call [`diagnose_prepared`] per row.
pub fn diagnose(
    db: &Database,
    spec: &LogSpec,
    explainer: &Explainer,
    row: RowId,
) -> Result<Vec<Diagnosis>> {
    Ok(diagnose_prepared(
        db,
        spec,
        &explainer.prepared(db, spec)?,
        row,
    ))
}

/// [`diagnose`] against pre-validated template queries: the per-row loop
/// runs no structural validation at all.
pub fn diagnose_prepared(
    db: &Database,
    spec: &LogSpec,
    prepared: &PreparedExplainer<'_>,
    row: RowId,
) -> Vec<Diagnosis> {
    let mut out = Vec::with_capacity(prepared.templates().len());
    for (i, (t, q)) in prepared
        .templates()
        .iter()
        .zip(prepared.queries())
        .enumerate()
    {
        let trace = q.trace(db, row);
        let outcome = if !trace.anchor_matches {
            Outcome::OutOfScope
        } else if trace.closed {
            Outcome::Explained
        } else if let Some(step) = trace.died_at() {
            Outcome::DiedAtStep {
                step,
                of: trace.survivors.len(),
            }
        } else {
            Outcome::WrongUser {
                candidates: *trace.survivors.last().unwrap_or(&0),
            }
        };
        out.push(Diagnosis {
            template_index: i,
            label: t.label(db, spec),
            outcome,
        });
    }
    out.sort_by(|a, b| {
        b.score()
            .cmp(&a.score())
            .then(a.template_index.cmp(&b.template_index))
    });
    out
}

/// True when any diagnosis says the access *would* have been explained had
/// the user been the one the data references — the snooping signature.
pub fn looks_like_snooping(diagnoses: &[Diagnosis]) -> bool {
    !diagnoses
        .iter()
        .any(|d| matches!(d.outcome, Outcome::Explained))
        && diagnoses
            .iter()
            .any(|d| matches!(d.outcome, Outcome::WrongUser { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handcrafted::HandcraftedTemplates;
    use eba_synth::{AccessReason, Hospital, SynthConfig};

    fn setup() -> (Hospital, LogSpec, Explainer) {
        let config = SynthConfig {
            n_snoop_accesses: 10,
            ..SynthConfig::tiny()
        };
        let h = Hospital::generate(config);
        let spec = LogSpec::conventional(&h.db).unwrap();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let explainer = Explainer::new(t.all().into_iter().cloned().collect());
        (h, spec, explainer)
    }

    #[test]
    fn explained_accesses_diagnose_as_explained() {
        let (h, spec, explainer) = setup();
        let explained = explainer.explained_rows(&h.db, &spec);
        let rid = *explained.iter().next().expect("something explained");
        let d = diagnose(&h.db, &spec, &explainer, rid).unwrap();
        assert!(matches!(d[0].outcome, Outcome::Explained));
        assert!(!looks_like_snooping(&d));
        assert!(d[0].summary().contains("explained"));
    }

    #[test]
    fn snoops_on_treated_patients_show_wrong_user() {
        let (h, spec, explainer) = setup();
        let explained = explainer.explained_rows(&h.db, &spec);
        let prepared = explainer.prepared(&h.db, &spec).unwrap();
        let mut wrong_user_seen = false;
        for rid in 0..h.log_len() as u32 {
            if h.reason_of(rid) != AccessReason::Snoop || explained.contains(&rid) {
                continue;
            }
            let d = diagnose_prepared(&h.db, &spec, &prepared, rid);
            // Every unexplained snoop must diagnose as *something*
            // informative (near miss or dead path), never Explained.
            assert!(!matches!(d[0].outcome, Outcome::Explained));
            if looks_like_snooping(&d) {
                wrong_user_seen = true;
                let top = &d[0];
                assert!(matches!(top.outcome, Outcome::WrongUser { .. }));
                assert!(top.summary().contains("other user"));
            }
        }
        assert!(
            wrong_user_seen,
            "expected at least one snoop on a patient with events"
        );
    }

    #[test]
    fn diagnoses_are_sorted_closest_first() {
        let (h, spec, explainer) = setup();
        let prepared = explainer.prepared(&h.db, &spec).unwrap();
        for rid in 0..(h.log_len() as u32).min(50) {
            let d = diagnose_prepared(&h.db, &spec, &prepared, rid);
            for w in d.windows(2) {
                assert!(w[0].score() >= w[1].score());
            }
        }
    }

    #[test]
    fn prepared_and_unprepared_diagnoses_agree() {
        let (h, spec, explainer) = setup();
        let prepared = explainer.prepared(&h.db, &spec).unwrap();
        for rid in 0..(h.log_len() as u32).min(20) {
            let a = diagnose(&h.db, &spec, &explainer, rid).unwrap();
            let b = diagnose_prepared(&h.db, &spec, &prepared, rid);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.template_index, y.template_index);
                assert_eq!(x.outcome, y.outcome);
            }
        }
    }

    #[test]
    fn dead_paths_report_the_failing_hop() {
        let (h, spec, explainer) = setup();
        // A float access to a patient with no events: appointment template
        // dies at hop 1.
        let explained = explainer.explained_rows(&h.db, &spec);
        for rid in 0..h.log_len() as u32 {
            if h.reason_of(rid) == AccessReason::FloatAssist && !explained.contains(&rid) {
                let d = diagnose(&h.db, &spec, &explainer, rid).unwrap();
                if let Some(dead) = d
                    .iter()
                    .find(|x| matches!(x.outcome, Outcome::DiedAtStep { .. }))
                {
                    assert!(dead.summary().contains("no matching data"));
                    return;
                }
            }
        }
        panic!("no float access with a dead path found");
    }
}
