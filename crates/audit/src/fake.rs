//! The fake-log evaluation methodology (§5.3.2).
//!
//! "We constructed a fake log that contains the same number of accesses as
//! the real log. We generated each access in the fake log by selecting a
//! user and a patient uniformly at random from the set of users and
//! patients in the database. (Because the user-patient density in the log
//! is so low, it is unlikely that we will generate many fake accesses that
//! 'look' real.) We then combined the real and fake logs, and evaluated
//! the explanation templates on the combined log."

use eba_relational::{Database, RowId, Value};
use eba_synth::LogColumns;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Marker for the injected fake rows (a contiguous tail of the log table).
#[derive(Debug, Clone, Copy)]
pub struct FakeLog {
    /// Row id of the first fake row.
    pub first_row: RowId,
    /// Number of fake rows.
    pub count: usize,
}

impl FakeLog {
    /// Appends `count` uniformly random accesses to the log.
    ///
    /// Fake rows carry fresh `Lid`s, a random timestamp in `days`, and an
    /// `IsFirst` flag computed among the fakes themselves (real rows keep
    /// their original flags; with the paper's low density, collisions
    /// between fake and real pairs are negligible).
    #[allow(clippy::too_many_arguments)] // mirrors the methodology's knobs
    pub fn inject(
        db: &mut Database,
        log: eba_relational::TableId,
        cols: &LogColumns,
        user_pool: &[Value],
        patient_pool: &[Value],
        count: usize,
        days: u32,
        seed: u64,
    ) -> FakeLog {
        assert!(!user_pool.is_empty() && !patient_pool.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let first_row = db.table(log).len() as RowId;
        let next_lid = 1 + db
            .table(log)
            .iter()
            .map(|(_, row)| match row[cols.lid] {
                Value::Int(i) => i,
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        let action = db.str_value("view");
        let mut seen: HashSet<(Value, Value)> = HashSet::with_capacity(count);
        for i in 0..count {
            let user = user_pool[rng.gen_range(0..user_pool.len())];
            let patient = patient_pool[rng.gen_range(0..patient_pool.len())];
            let day = rng.gen_range(1..=days.max(1));
            let minute = rng.gen_range(0..24 * 60);
            let is_first = seen.insert((user, patient));
            let ts = i64::from(day) * 24 * 60 + i64::from(minute);
            db.insert(
                log,
                vec![
                    Value::Int(next_lid + i as i64),
                    Value::Date(ts),
                    user,
                    patient,
                    action,
                    Value::Int(i64::from(day)),
                    Value::Int(i64::from(is_first)),
                ],
            )
            .expect("fake row matches the log schema");
        }
        FakeLog { first_row, count }
    }

    /// Whether a row id denotes an injected fake access.
    pub fn is_fake(&self, row: RowId) -> bool {
        row >= self.first_row && (row as usize) < self.first_row as usize + self.count
    }

    /// The injected row ids, ascending.
    pub fn rows(&self) -> std::ops::Range<RowId> {
        self.first_row..self.first_row + self.count as RowId
    }
}

/// The distinct users of the database (from the `Users` table), for the
/// uniform sampling pool.
pub fn user_pool(db: &Database) -> Vec<Value> {
    let t = db.table_id("Users").expect("Users table exists");
    let table = db.table(t);
    let col = table.schema().col("User").expect("Users.User exists");
    let mut v: Vec<Value> = table.iter().map(|(_, row)| row[col]).collect();
    v.sort_unstable_by_key(|v| match v {
        Value::Int(i) => *i,
        _ => i64::MAX,
    });
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_core::LogSpec;
    use eba_synth::{Hospital, SynthConfig};

    fn setup() -> (Hospital, LogSpec) {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = LogSpec::conventional(&h.db).unwrap();
        (h, spec)
    }

    #[test]
    fn injection_appends_marked_rows() {
        let (mut h, _) = setup();
        let before = h.log_len();
        let users = user_pool(&h.db);
        let patients: Vec<Value> = (0..h.world.n_patients())
            .map(|p| h.patient_value(p))
            .collect();
        let fake = FakeLog::inject(
            &mut h.db,
            h.t_log,
            &h.log_cols,
            &users,
            &patients,
            before,
            h.config.days,
            7,
        );
        assert_eq!(h.log_len(), 2 * before);
        assert_eq!(fake.count, before);
        assert!(!fake.is_fake(0));
        assert!(fake.is_fake(before as RowId));
        assert!(fake.is_fake((2 * before - 1) as RowId));
        assert!(!fake.is_fake((2 * before) as RowId));
    }

    #[test]
    fn fake_lids_are_unique() {
        let (mut h, _) = setup();
        let users = user_pool(&h.db);
        let patients: Vec<Value> = (0..h.world.n_patients())
            .map(|p| h.patient_value(p))
            .collect();
        FakeLog::inject(
            &mut h.db,
            h.t_log,
            &h.log_cols,
            &users,
            &patients,
            500,
            h.config.days,
            7,
        );
        let log = h.db.table(h.t_log);
        let mut lids = HashSet::new();
        for (_, row) in log.iter() {
            assert!(lids.insert(row[h.log_cols.lid]), "duplicate lid");
        }
    }

    #[test]
    fn fakes_rarely_look_real() {
        // The paper's density argument: uniform fake pairs rarely coincide
        // with real pairs.
        let (mut h, _) = setup();
        let real_pairs: HashSet<(Value, Value)> =
            h.db.table(h.t_log)
                .iter()
                .map(|(_, row)| (row[h.log_cols.user], row[h.log_cols.patient]))
                .collect();
        let users = user_pool(&h.db);
        let patients: Vec<Value> = (0..h.world.n_patients())
            .map(|p| h.patient_value(p))
            .collect();
        let n = 1000;
        let fake = FakeLog::inject(
            &mut h.db,
            h.t_log,
            &h.log_cols,
            &users,
            &patients,
            n,
            h.config.days,
            7,
        );
        let log = h.db.table(h.t_log);
        let collisions = (fake.first_row..fake.first_row + n as RowId)
            .filter(|&rid| {
                let row = log.row(rid);
                real_pairs.contains(&(row[h.log_cols.user], row[h.log_cols.patient]))
            })
            .count();
        // Tiny world: density is higher than CareWeb's 3e-4, but still a
        // small minority.
        assert!(
            (collisions as f64) < 0.25 * n as f64,
            "{collisions}/{n} fake accesses look real"
        );
    }

    #[test]
    fn user_pool_is_distinct() {
        let (h, _) = setup();
        let pool = user_pool(&h.db);
        assert_eq!(pool.len(), h.world.n_users());
    }
}
