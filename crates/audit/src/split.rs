//! Anchor filters for train/test splits.
//!
//! The paper's experiments mine on the first six days of the log and test
//! on the seventh, often restricted to *first accesses* (the first time a
//! user opens a given patient's record). Those subsets are expressed as
//! anchor filters over the log's derived `Day` and `IsFirst` columns.

use eba_relational::{CmpOp, ColId, Value};
use eba_synth::LogColumns;

/// Filters selecting days `lo..=hi` (1-based).
pub fn day_range(cols: &LogColumns, lo: u32, hi: u32) -> Vec<(ColId, CmpOp, Value)> {
    vec![
        (cols.day, CmpOp::Ge, Value::Int(i64::from(lo))),
        (cols.day, CmpOp::Le, Value::Int(i64::from(hi))),
    ]
}

/// Filter selecting only first accesses.
pub fn first_only(cols: &LogColumns) -> Vec<(ColId, CmpOp, Value)> {
    vec![(cols.is_first, CmpOp::Eq, Value::Int(1))]
}

/// Days `lo..=hi`, first accesses only.
pub fn days_first(cols: &LogColumns, lo: u32, hi: u32) -> Vec<(ColId, CmpOp, Value)> {
    let mut f = day_range(cols, lo, hi);
    f.extend(first_only(cols));
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_core::LogSpec;
    use eba_synth::{Hospital, SynthConfig};

    #[test]
    fn filters_partition_the_log() {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = LogSpec::conventional(&h.db).unwrap();
        let total = spec.anchor_lid_count(&h.db);
        let days = h.config.days;
        let mut sum = 0;
        for d in 1..=days {
            let s = spec.with_filters(day_range(&h.log_cols, d, d));
            sum += s.anchor_lid_count(&h.db);
        }
        assert_eq!(sum, total, "per-day counts must sum to the whole log");
    }

    #[test]
    fn first_access_filter_counts_distinct_pairs() {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = LogSpec::conventional(&h.db).unwrap();
        let firsts = spec
            .with_filters(first_only(&h.log_cols))
            .anchor_lid_count(&h.db);
        // Distinct (user, patient) pairs.
        let log = h.db.table(h.t_log);
        let mut pairs = std::collections::HashSet::new();
        for (_, row) in log.iter() {
            pairs.insert((row[h.log_cols.user], row[h.log_cols.patient]));
        }
        assert_eq!(firsts, pairs.len());
    }

    #[test]
    fn train_test_split_is_disjoint_and_covering() {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = LogSpec::conventional(&h.db).unwrap();
        let train = spec
            .with_filters(days_first(&h.log_cols, 1, 6))
            .anchor_lid_count(&h.db);
        let test = spec
            .with_filters(days_first(&h.log_cols, 7, 7))
            .anchor_lid_count(&h.db);
        let all_first = spec
            .with_filters(first_only(&h.log_cols))
            .anchor_lid_count(&h.db);
        assert_eq!(train + test, all_first);
        assert!(train > 0 && test > 0);
    }
}
