//! Building and installing collaborative groups (§4).
//!
//! The access log itself reveals which users work together: users who
//! access the same records are likely collaborators. [`collaborative_groups`]
//! builds the paper's access matrix from a (typically train-period) slice
//! of the log, clusters the user-similarity graph `W = AᵀA` hierarchically,
//! and [`install_groups`] materializes the result as the
//! `Groups(Depth, Group_id, User)` table with all join metadata, after
//! which both hand-crafted and *mined* templates can traverse it.

use eba_cluster::{AccessMatrix, Hierarchy, HierarchyConfig};
use eba_core::LogSpec;
use eba_relational::{DataType, Database, RelationshipKind, Result, TableId, Value};
use std::collections::HashMap;

/// A computed collaborative-group hierarchy over the database's users.
#[derive(Debug, Clone)]
pub struct GroupsModel {
    /// The hierarchy (depth 0 is the single all-users group).
    pub hierarchy: Hierarchy,
    /// Node index → user value (as stored in `Log.User` / `Users.User`).
    pub user_values: Vec<Value>,
}

impl GroupsModel {
    /// Group id of `user_value` at `depth`, if the user is known.
    pub fn group_of(&self, user_value: Value, depth: usize) -> Option<u32> {
        let idx = self.user_values.iter().position(|&v| v == user_value)?;
        Some(self.hierarchy.assignment(depth)[idx])
    }
}

/// Derives collaborative groups from the log rows selected by `spec`
/// (train-period filters included). The user universe is the `Users`
/// table; patients are the distinct patients appearing in the selected
/// rows. `max_accessors` caps the per-record accessor count fed into
/// `W = AᵀA` (see [`AccessMatrix::similarity_graph`]).
pub fn collaborative_groups(
    db: &Database,
    spec: &LogSpec,
    config: HierarchyConfig,
    max_accessors: usize,
) -> Result<GroupsModel> {
    let users_t = db.table_id("Users")?;
    let users = db.table(users_t);
    let user_col =
        users
            .schema()
            .col("User")
            .ok_or_else(|| eba_relational::Error::UnknownColumn {
                table: "Users".into(),
                column: "User".into(),
            })?;
    let mut user_values: Vec<Value> = users.iter().map(|(_, row)| row[user_col]).collect();
    user_values.sort_unstable_by_key(|v| match v {
        Value::Int(i) => *i,
        _ => i64::MAX,
    });
    user_values.dedup();
    let user_index: HashMap<Value, u32> = user_values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();

    // Distinct (patient, user) pairs from the selected log rows.
    let log = db.table(spec.table);
    let mut patient_index: HashMap<Value, u32> = HashMap::new();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for (_, row) in log.iter() {
        if !spec
            .anchor_filters
            .iter()
            .all(|(col, op, v)| op.eval(&row[*col], v))
        {
            continue;
        }
        let (p, u) = (row[spec.patient_col], row[spec.user_col]);
        let Some(&ui) = user_index.get(&u) else {
            continue;
        };
        let next = patient_index.len() as u32;
        let pi = *patient_index.entry(p).or_insert(next);
        pairs.push((pi, ui));
    }

    let matrix = AccessMatrix::from_pairs(patient_index.len(), user_values.len(), pairs);
    let graph = matrix.similarity_graph(max_accessors);
    let hierarchy = Hierarchy::build(&graph, config);
    Ok(GroupsModel {
        hierarchy,
        user_values,
    })
}

/// Materializes `Groups(Depth, Group_id, User)` (hierarchy depths ≥ 1;
/// depth 0 — everyone in one group — is the degenerate baseline and would
/// make *any-depth* group joins vacuous, so it is evaluated separately),
/// declares `Groups.User` joinable with `Log.User` and with every
/// attribute already related to `Log.User`, and allows the `Group_id`
/// self-join the paper's Example 4.2 relies on.
pub fn install_groups(db: &mut Database, model: &GroupsModel) -> Result<TableId> {
    let groups_t = db.create_table(
        "Groups",
        &[
            ("Depth", DataType::Int),
            ("Group_id", DataType::Int),
            ("User", DataType::Int),
        ],
    )?;
    for depth in 1..model.hierarchy.depth_count() {
        let assignment = model.hierarchy.assignment(depth);
        for (node, &gid) in assignment.iter().enumerate() {
            db.insert(
                groups_t,
                vec![
                    Value::Int(depth as i64),
                    Value::Int(i64::from(gid)),
                    model.user_values[node],
                ],
            )?;
        }
    }

    let group_user = db.attr("Groups", "User")?;
    let log_user = db.attr("Log", "User")?;
    // Everything already known to join with Log.User is user-typed;
    // relate it to Groups.User too (snapshot first — we are mutating the
    // relationship list).
    let existing: Vec<_> = db
        .relationships()
        .iter()
        .filter_map(|r| {
            if r.from == log_user && r.to != log_user {
                Some(r.to)
            } else if r.to == log_user && r.from != log_user {
                Some(r.from)
            } else {
                None
            }
        })
        .collect();
    db.add_relationship(group_user, log_user, RelationshipKind::ForeignKey)?;
    let mut seen = std::collections::HashSet::new();
    for attr in existing {
        if seen.insert(attr) {
            db.add_relationship(attr, group_user, RelationshipKind::Administrator)?;
        }
    }
    db.allow_self_join("Groups", "Group_id")?;
    Ok(groups_t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handcrafted::{same_group, EventTable, HandcraftedTemplates};
    use crate::split;
    use eba_synth::{Hospital, Role, SynthConfig};

    /// Builds the grouped hospital and a warm engine that was constructed
    /// *before* [`install_groups`] and refreshed after — the long-running
    /// session lifecycle (the refresh must pick up the new `Groups` table).
    fn hospital_with_groups() -> (Hospital, LogSpec, GroupsModel, eba_relational::Engine) {
        let mut h = Hospital::generate(SynthConfig::tiny());
        let spec = LogSpec::conventional(&h.db).unwrap();
        let train = spec.with_filters(split::day_range(&h.log_cols, 1, 6));
        let model = collaborative_groups(&h.db, &train, HierarchyConfig::default(), 500).unwrap();
        let mut engine = eba_relational::Engine::new(&h.db);
        let groups_t = install_groups(&mut h.db, &model).unwrap();
        let stats = engine.refresh(&h.db).unwrap();
        assert!(stats.delta.grown.contains(&groups_t));
        (h, spec, model, engine)
    }

    #[test]
    fn groups_table_is_installed_with_metadata() {
        let (h, _, model, _) = hospital_with_groups();
        let t = h.db.table_id("Groups").unwrap();
        assert!(!h.db.table(t).is_empty());
        assert!(model.hierarchy.depth_count() >= 2);
        // Self-join declared.
        let gid = h.db.attr("Groups", "Group_id").unwrap();
        assert!(h.db.self_join_attrs().contains(&gid));
        // Groups.User relates to Log.User.
        let gu = h.db.attr("Groups", "User").unwrap();
        let lu = h.db.attr("Log", "User").unwrap();
        assert!(h
            .db
            .relationships()
            .iter()
            .any(|r| (r.from == gu && r.to == lu) || (r.from == lu && r.to == gu)));
    }

    #[test]
    fn clustering_recovers_care_teams() {
        let (h, _, model, _) = hospital_with_groups();
        // At some depth, a team's doctors and nurses should share a group
        // more often than random users do.
        let depth = 1;
        let mut same_team_same_group = 0usize;
        let mut same_team_total = 0usize;
        for team in &h.world.teams {
            let members: Vec<_> = team.members().collect();
            for (i, &a) in members.iter().enumerate() {
                for &b in members.iter().skip(i + 1) {
                    same_team_total += 1;
                    let ga = model.group_of(h.user_value(a), depth);
                    let gb = model.group_of(h.user_value(b), depth);
                    if ga.is_some() && ga == gb {
                        same_team_same_group += 1;
                    }
                }
            }
        }
        let frac = same_team_same_group as f64 / same_team_total.max(1) as f64;
        assert!(
            frac > 0.5,
            "only {frac:.2} of same-team pairs share a depth-1 group"
        );
    }

    #[test]
    fn group_template_explains_nurse_accesses() {
        let (h, spec, _, engine) = hospital_with_groups();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let group_tmpl = same_group(&h.db, &spec, EventTable::Appointments, None).unwrap();
        // The refreshed engine evaluates templates that traverse the
        // post-construction Groups table, identically to the cold path.
        let narrow: std::collections::HashSet<_> = t
            .appt_with_dr
            .explained_rows_with(&h.db, &spec, &engine)
            .unwrap()
            .into_iter()
            .collect();
        let wide = group_tmpl
            .explained_rows_with(&h.db, &spec, &engine)
            .unwrap();
        assert_eq!(wide, group_tmpl.explained_rows(&h.db, &spec).unwrap());
        // The group template explains accesses the direct template cannot —
        // specifically some nurse (CareTeam) accesses.
        let mut nurse_gain = 0;
        for rid in &wide {
            if !narrow.contains(rid) {
                let user_v = h.db.table(h.t_log).cell(*rid, h.log_cols.user);
                if let Some(idx) = h.user_index(user_v) {
                    if h.world.users[idx].role == Role::Nurse {
                        nurse_gain += 1;
                    }
                }
            }
        }
        assert!(
            nurse_gain > 0,
            "group template should newly explain nurse accesses"
        );
    }

    #[test]
    fn depth_decorated_template_is_narrower() {
        let (h, spec, model, engine) = hospital_with_groups();
        let any = same_group(&h.db, &spec, EventTable::Appointments, None).unwrap();
        let deepest = (model.hierarchy.depth_count() - 1) as i64;
        let deep = same_group(&h.db, &spec, EventTable::Appointments, Some(deepest)).unwrap();
        let any_n = any
            .explained_rows_with(&h.db, &spec, &engine)
            .unwrap()
            .len();
        let deep_n = deep
            .explained_rows_with(&h.db, &spec, &engine)
            .unwrap()
            .len();
        assert!(deep_n <= any_n, "deeper groups explain fewer accesses");
        assert_eq!(deep_n, deep.explained_rows(&h.db, &spec).unwrap().len());
    }

    #[test]
    fn group_of_unknown_user_is_none() {
        let (_, _, model, _) = hospital_with_groups();
        assert_eq!(model.group_of(Value::Int(999_999), 1), None);
    }
}
