//! User-centric auditing reports.
//!
//! The paper's motivating application (§1): a portal where a patient logs
//! in, sees every access to their record, and — instead of a bare list of
//! unfamiliar names — a short explanation of *why* each access occurred.
//! The same machinery drives the secondary application: the compliance
//! office triages the (far smaller) set of unexplained accesses.

use crate::explain::{Explainer, RankedExplanation};
use eba_core::LogSpec;
use eba_relational::{Database, Engine, Epoch, EpochVec, Result, RowId, Value};
use eba_synth::LogColumns;
use std::collections::{HashMap, HashSet};

/// One line of a patient's access report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportEntry {
    /// Log row.
    pub row: RowId,
    /// Log id.
    pub lid: Value,
    /// Access timestamp.
    pub date: Value,
    /// Accessing user.
    pub user: Value,
    /// Best (shortest-path) explanation, if any.
    pub explanation: Option<RankedExplanation>,
}

impl ReportEntry {
    /// Text shown to the patient.
    pub fn display_text(&self) -> &str {
        match &self.explanation {
            Some(e) => &e.text,
            None => "No explanation found — you may request an investigation.",
        }
    }
}

/// The patient-portal report: all accesses to `patient`'s record (within
/// the spec's anchor), chronological, each with its best explanation.
pub fn patient_report(
    db: &Database,
    spec: &LogSpec,
    cols: &LogColumns,
    explainer: &Explainer,
    patient: Value,
) -> Result<Vec<ReportEntry>> {
    let log = db.table(spec.table);
    // Validate every template query once, not once per access row.
    let prepared = explainer.prepared(db, spec)?;
    let mut entries = Vec::new();
    for rid in log.rows_with(spec.patient_col, patient) {
        let row = log.row(rid);
        if !spec
            .anchor_filters
            .iter()
            .all(|(col, op, v)| op.eval(&row[*col], v))
        {
            continue;
        }
        let explanation = prepared.explain(db, spec, rid, 1).into_iter().next();
        entries.push(ReportEntry {
            row: rid,
            lid: row[cols.lid],
            date: row[cols.date],
            user: row[cols.user],
            explanation,
        });
    }
    entries.sort_by_key(|e| match e.date {
        Value::Date(d) => d,
        _ => i64::MAX,
    });
    Ok(entries)
}

/// Per-user summary of unexplained accesses — the compliance office's
/// triage queue, most-suspicious first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuspectSummary {
    /// The user.
    pub user: Value,
    /// Unexplained accesses by this user (within the anchor).
    pub unexplained: usize,
    /// Distinct patients among those unexplained accesses.
    pub distinct_patients: usize,
}

/// Groups the unexplained accesses by user, sorted by descending count
/// (ties broken by user value for determinism).
pub fn misuse_summary(db: &Database, spec: &LogSpec, explainer: &Explainer) -> Vec<SuspectSummary> {
    summarize_unexplained(db, spec, explainer.unexplained_rows(db, spec))
}

/// [`misuse_summary`] through a shared [`Engine`]: the compliance office
/// asks this alongside the unexplained list and the timeline, so all
/// three views share one warm snapshot. The unexplained residue arrives
/// as the fused suite's compressed row-set difference
/// (`anchors \ explained`), already sorted.
pub fn misuse_summary_with(
    db: &Database,
    spec: &LogSpec,
    explainer: &Explainer,
    engine: &Engine,
) -> Vec<SuspectSummary> {
    summarize_unexplained(db, spec, explainer.unexplained_rows_with(db, spec, engine))
}

/// [`misuse_summary`] against a pinned [`Epoch`]: the triage queue the
/// compliance session sees is computed from the same frozen log as its
/// timeline and unexplained list.
pub fn misuse_summary_at(
    spec: &LogSpec,
    explainer: &Explainer,
    epoch: &Epoch,
) -> Vec<SuspectSummary> {
    misuse_summary_with(epoch.db(), spec, explainer, epoch.engine())
}

/// [`misuse_summary`] against a pinned **epoch vector**. Per-shard
/// `user → (count, patients)` maps merge by summing counts and unioning
/// patient sets (a user's accesses — and even one patient's accesses, if
/// the spec's patient column is not the partition key — may straddle
/// shards), then rank identically to the unsharded path.
pub fn misuse_summary_at_shards(
    spec: &LogSpec,
    explainer: &Explainer,
    shards: &EpochVec,
) -> Vec<SuspectSummary> {
    let per_shard = shards.par_map_shards(|_, shard| {
        per_user_unexplained(
            shard.db(),
            spec,
            explainer.unexplained_rows_at(spec, shard.epoch()),
        )
    });
    let mut merged: HashMap<Value, (usize, HashSet<Value>)> = HashMap::new();
    for map in per_shard {
        for (user, (count, patients)) in map {
            let entry = merged.entry(user).or_default();
            entry.0 += count;
            entry.1.extend(patients);
        }
    }
    rank_suspects(merged)
}

/// [`patient_report`] against a pinned epoch vector: each shard reports
/// its slice of the patient's accesses (row ids mapped back to global),
/// gathered chronologically. Under patient-keyed sharding all entries come
/// from one shard; the merge stays correct for any partition key.
pub fn patient_report_at_shards(
    spec: &LogSpec,
    cols: &LogColumns,
    explainer: &Explainer,
    patient: Value,
    shards: &EpochVec,
) -> Result<Vec<ReportEntry>> {
    let per_shard = shards.par_map_shards(|_, shard| {
        patient_report(shard.db(), spec, cols, explainer, patient).map(|entries| {
            entries
                .into_iter()
                .map(|mut e| {
                    e.row = shard.to_global(e.row);
                    e
                })
                .collect::<Vec<ReportEntry>>()
        })
    });
    let mut out = Vec::new();
    for entries in per_shard {
        out.extend(entries?);
    }
    // Same order as the unsharded report: by date, ties in log order
    // (its stable sort keeps the ascending row ids it scanned).
    out.sort_by_key(|e| {
        (
            match e.date {
                Value::Date(d) => d,
                _ => i64::MAX,
            },
            e.row,
        )
    });
    Ok(out)
}

fn summarize_unexplained(
    db: &Database,
    spec: &LogSpec,
    unexplained: Vec<RowId>,
) -> Vec<SuspectSummary> {
    rank_suspects(per_user_unexplained(db, spec, unexplained))
}

/// `user → (unexplained count, distinct patients)` — the associative
/// intermediate both the unsharded and the scatter-gather summary rank.
fn per_user_unexplained(
    db: &Database,
    spec: &LogSpec,
    unexplained: Vec<RowId>,
) -> HashMap<Value, (usize, HashSet<Value>)> {
    let log = db.table(spec.table);
    let mut per_user: HashMap<Value, (usize, HashSet<Value>)> = HashMap::new();
    for rid in unexplained {
        let row = log.row(rid);
        let entry = per_user.entry(row[spec.user_col]).or_default();
        entry.0 += 1;
        entry.1.insert(row[spec.patient_col]);
    }
    per_user
}

fn rank_suspects(per_user: HashMap<Value, (usize, HashSet<Value>)>) -> Vec<SuspectSummary> {
    let mut out: Vec<SuspectSummary> = per_user
        .into_iter()
        .map(|(user, (unexplained, patients))| SuspectSummary {
            user,
            unexplained,
            distinct_patients: patients.len(),
        })
        .collect();
    out.sort_by(|a, b| {
        b.unexplained
            .cmp(&a.unexplained)
            .then_with(|| format!("{:?}", a.user).cmp(&format!("{:?}", b.user)))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handcrafted::HandcraftedTemplates;
    use eba_synth::{Hospital, SynthConfig};

    fn setup() -> (Hospital, LogSpec, Explainer) {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = LogSpec::conventional(&h.db).unwrap();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let explainer = Explainer::new(t.all().into_iter().cloned().collect());
        (h, spec, explainer)
    }

    #[test]
    fn report_lists_all_accesses_chronologically() {
        let (h, spec, explainer) = setup();
        // Pick the most-accessed patient.
        let log = h.db.table(h.t_log);
        let idx = log.index(h.log_cols.patient);
        let (patient, rows) = idx
            .groups()
            .into_iter()
            .max_by_key(|(_, rows)| rows.len())
            .expect("log not empty");
        let expected = rows.len();
        let report = patient_report(&h.db, &spec, &h.log_cols, &explainer, patient).unwrap();
        assert_eq!(report.len(), expected);
        for w in report.windows(2) {
            let (Value::Date(a), Value::Date(b)) = (w[0].date, w[1].date) else {
                panic!("dates expected")
            };
            assert!(a <= b);
        }
        // At least one access of a busy patient is explained.
        assert!(report.iter().any(|e| e.explanation.is_some()));
    }

    #[test]
    fn unexplained_entries_show_investigation_hint() {
        let (h, spec, explainer) = setup();
        let report_texts: Vec<String> = (0..h.world.n_patients())
            .filter_map(|p| {
                patient_report(&h.db, &spec, &h.log_cols, &explainer, h.patient_value(p)).ok()
            })
            .flatten()
            .filter(|e| e.explanation.is_none())
            .map(|e| e.display_text().to_string())
            .collect();
        assert!(!report_texts.is_empty());
        assert!(report_texts[0].contains("investigation"));
    }

    #[test]
    fn engine_backed_summary_matches_per_query() {
        let (h, spec, explainer) = setup();
        let engine = Engine::new(&h.db);
        assert_eq!(
            misuse_summary_with(&h.db, &spec, &explainer, &engine),
            misuse_summary(&h.db, &spec, &explainer)
        );
    }

    #[test]
    fn sharded_portal_views_match_unsharded_oracle() {
        let (h, spec, explainer) = setup();
        let key = eba_relational::ShardKey {
            table: spec.table,
            col: spec.patient_col,
        };
        // The busiest patient exercises a non-trivial report.
        let log = h.db.table(h.t_log);
        let idx = log.index(h.log_cols.patient);
        let (patient, _) = idx
            .groups()
            .into_iter()
            .max_by_key(|(_, rows)| rows.len())
            .expect("log not empty");
        let oracle_summary = misuse_summary(&h.db, &spec, &explainer);
        let oracle_report = patient_report(&h.db, &spec, &h.log_cols, &explainer, patient).unwrap();
        for n in [1, 3] {
            let sharded = eba_relational::ShardedEngine::new(h.db.clone(), key, n);
            let shards = sharded.load();
            assert_eq!(
                misuse_summary_at_shards(&spec, &explainer, &shards),
                oracle_summary,
                "{n} shards"
            );
            assert_eq!(
                patient_report_at_shards(&spec, &h.log_cols, &explainer, patient, &shards).unwrap(),
                oracle_report,
                "{n} shards"
            );
        }
    }

    #[test]
    fn misuse_summary_ranks_float_users_high() {
        let (h, spec, explainer) = setup();
        let summary = misuse_summary(&h.db, &spec, &explainer);
        assert!(!summary.is_empty());
        // Sorted descending.
        for w in summary.windows(2) {
            assert!(w[0].unexplained >= w[1].unexplained);
        }
        // The top suspects should include float-pool users (their accesses
        // have no recorded reason).
        let top: Vec<_> = summary.iter().take(5).collect();
        let float_in_top = top.iter().any(|s| {
            h.user_index(s.user)
                .is_some_and(|i| h.world.users[i].role == eba_synth::Role::Float)
        });
        assert!(float_in_top, "expected a float user among top suspects");
    }
}
