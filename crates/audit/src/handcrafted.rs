//! The paper's hand-crafted explanation templates (§5.3.1–5.3.2) against
//! the CareWeb-shaped schema produced by [`eba_synth`].

use eba_core::{ExplanationTemplate, LogSpec, Path};
use eba_relational::{CmpOp, Database, Result, Rhs, StepFilter, Value};

/// The six event tables, with the column naming the event's primary user
/// (appointments are scheduled with the doctor; orders are requested by the
/// ordering doctor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventTable {
    /// Outpatient appointments.
    Appointments,
    /// Inpatient visits.
    Visits,
    /// Documents produced.
    Documents,
    /// Lab orders.
    Labs,
    /// Medication orders.
    Medications,
    /// Radiology orders.
    Radiology,
}

impl EventTable {
    /// All six, in paper order (data set A then B).
    pub const ALL: [EventTable; 6] = [
        EventTable::Appointments,
        EventTable::Visits,
        EventTable::Documents,
        EventTable::Labs,
        EventTable::Medications,
        EventTable::Radiology,
    ];

    /// The table name in the database.
    pub fn table_name(self) -> &'static str {
        match self {
            EventTable::Appointments => "Appointments",
            EventTable::Visits => "Visits",
            EventTable::Documents => "Documents",
            EventTable::Labs => "Labs",
            EventTable::Medications => "Medications",
            EventTable::Radiology => "Radiology",
        }
    }

    /// Column naming the primary user the event references.
    pub fn primary_user_col(self) -> &'static str {
        match self {
            EventTable::Appointments | EventTable::Visits => "Doctor",
            EventTable::Documents => "User",
            EventTable::Labs | EventTable::Medications | EventTable::Radiology => "OrderUser",
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            EventTable::Appointments => "Appt",
            EventTable::Visits => "Visit",
            EventTable::Documents => "Document",
            EventTable::Labs => "Lab",
            EventTable::Medications => "Medication",
            EventTable::Radiology => "Radiology",
        }
    }

    /// Article + noun phrase for natural-language descriptions.
    pub fn phrase(self) -> &'static str {
        match self {
            EventTable::Appointments => "an appointment",
            EventTable::Visits => "a visit",
            EventTable::Documents => "a document produced",
            EventTable::Labs => "a lab order",
            EventTable::Medications => "a medication order",
            EventTable::Radiology => "a radiology order",
        }
    }

    /// Whether this table belongs to data set B (Labs, Medications,
    /// Radiology) — whose user columns carry *audit ids* when the paper's
    /// mapping-table artifact is present.
    pub fn is_dataset_b(self) -> bool {
        matches!(
            self,
            EventTable::Labs | EventTable::Medications | EventTable::Radiology
        )
    }
}

/// Whether the database carries the paper's `Mapping(AuditId, CaregiverId)`
/// extraction artifact.
fn mapping_present(db: &Database) -> bool {
    db.table_id("Mapping").is_ok()
}

/// Hops from `Log.Patient` through `event` to a *caregiver-id*-typed user
/// attribute: inserts the mapping hop for data-set-B tables when present.
fn user_hops(
    db: &Database,
    event: EventTable,
    user_col: &'static str,
) -> Vec<(&'static str, &'static str, &'static str)> {
    let mut hops = vec![(event.table_name(), "Patient", user_col)];
    if event.is_dataset_b() && mapping_present(db) {
        hops.push(("Mapping", "AuditId", "CaregiverId"));
    }
    hops
}

/// The hand-crafted template suite.
#[derive(Debug, Clone)]
pub struct HandcraftedTemplates {
    /// "`[Patient]` had an appointment with `[User]`" — explanation (A).
    pub appt_with_dr: ExplanationTemplate,
    /// Visit with the accessing doctor.
    pub visit_with_dr: ExplanationTemplate,
    /// Document produced by the accessing user.
    pub doc_with_dr: ExplanationTemplate,
    /// Decorated repeat access: same user previously opened the record
    /// (`L2.Date < L.Date`, explanation (C)).
    pub repeat_access: ExplanationTemplate,
    /// Lab result produced by the accessing user.
    pub lab_result: ExplanationTemplate,
    /// Medication signed by the accessing pharmacist.
    pub med_sign: ExplanationTemplate,
    /// Medication administered by the accessing nurse.
    pub med_admin: ExplanationTemplate,
    /// Radiology study read by the accessing user.
    pub rad_read: ExplanationTemplate,
}

impl HandcraftedTemplates {
    /// Builds the suite against a CareWeb-shaped database.
    pub fn build(db: &Database, spec: &LogSpec) -> Result<Self> {
        let date_col = db
            .table(spec.table)
            .schema()
            .col("Date")
            .expect("log has a Date column");

        let appt_with_dr = ExplanationTemplate::new(Path::handcrafted(
            db,
            spec,
            &[("Appointments", "Patient", "Doctor")],
        )?)
        .named("Appt w/Dr.")
        .described("[L.Patient] had an appointment with [L.User] on [T1.Date].");

        let visit_with_dr = ExplanationTemplate::new(Path::handcrafted(
            db,
            spec,
            &[("Visits", "Patient", "Doctor")],
        )?)
        .named("Visit w/Dr.")
        .described("[L.Patient] had a visit with [L.User] on [T1.Date].");

        let doc_with_dr = ExplanationTemplate::new(Path::handcrafted(
            db,
            spec,
            &[("Documents", "Patient", "User")],
        )?)
        .named("Doc. w/Dr.")
        .described("[L.User] produced a document for [L.Patient] on [T1.Date].");

        let repeat_path = Path::handcrafted(db, spec, &[("Log", "Patient", "User")])?
            .decorated(
                1,
                StepFilter {
                    col: date_col,
                    op: CmpOp::Lt,
                    rhs: Rhs::AnchorCol(date_col),
                },
            )
            .expect("alias 1 exists");
        let repeat_access = ExplanationTemplate::new(repeat_path)
            .named("Repeat Access")
            .described("[L.User] previously accessed [L.Patient]'s record (on [T1.Date]).");

        let lab_result = ExplanationTemplate::new(Path::handcrafted(
            db,
            spec,
            &user_hops(db, EventTable::Labs, "ResultUser"),
        )?)
        .named("Lab result")
        .described(
            "[L.User] produced a lab result for [L.Patient] ordered by user [T1.OrderUser].",
        );

        let med_sign = ExplanationTemplate::new(Path::handcrafted(
            db,
            spec,
            &user_hops(db, EventTable::Medications, "SignUser"),
        )?)
        .named("Med. signed")
        .described("[L.User] signed a medication order for [L.Patient].");

        let med_admin = ExplanationTemplate::new(Path::handcrafted(
            db,
            spec,
            &user_hops(db, EventTable::Medications, "AdminUser"),
        )?)
        .named("Med. administered")
        .described("[L.User] administered a medication ordered for [L.Patient].");

        let rad_read = ExplanationTemplate::new(Path::handcrafted(
            db,
            spec,
            &user_hops(db, EventTable::Radiology, "ReadUser"),
        )?)
        .named("Radiology read")
        .described(
            "[L.User] read a radiology study for [L.Patient] ordered by user [T1.OrderUser].",
        );

        Ok(HandcraftedTemplates {
            appt_with_dr,
            visit_with_dr,
            doc_with_dr,
            repeat_access,
            lab_result,
            med_sign,
            med_admin,
            rad_read,
        })
    }

    /// The Figure 7/9 basic set: appointment, visit, document with the
    /// accessing user.
    pub fn basic_with_dr(&self) -> Vec<&ExplanationTemplate> {
        vec![&self.appt_with_dr, &self.visit_with_dr, &self.doc_with_dr]
    }

    /// The Figure 7 "all" set: basic plus repeat access.
    pub fn all_with_repeat(&self) -> Vec<&ExplanationTemplate> {
        let mut v = self.basic_with_dr();
        v.push(&self.repeat_access);
        v
    }

    /// The consult-order set (data set B direct explanations).
    pub fn consult(&self) -> Vec<&ExplanationTemplate> {
        vec![
            &self.lab_result,
            &self.med_sign,
            &self.med_admin,
            &self.rad_read,
        ]
    }

    /// Every hand-crafted template.
    pub fn all(&self) -> Vec<&ExplanationTemplate> {
        let mut v = self.all_with_repeat();
        v.extend(self.consult());
        v
    }
}

/// The "patient had *some* event" predicates of Figures 6/8: open paths
/// `Log.Patient = T.Patient` for each event table, labeled.
pub fn event_predicates(db: &Database, spec: &LogSpec) -> Result<Vec<(&'static str, Path)>> {
    EventTable::ALL
        .iter()
        .map(|t| {
            Path::handcrafted_open(db, spec, &[(t.table_name(), "Patient", "Patient")])
                .map(|p| (t.label(), p))
        })
        .collect()
}

/// Explanation (B)-style template: the patient had an `event`, and the
/// accessing user works in the *same department* as the event's primary
/// user (length 4, via a `Users` self-join).
pub fn same_department(
    db: &Database,
    spec: &LogSpec,
    event: EventTable,
) -> Result<ExplanationTemplate> {
    let mut hops = user_hops(db, event, event.primary_user_col());
    hops.push(("Users", "User", "Department"));
    hops.push(("Users", "Department", "User"));
    let path = Path::handcrafted(db, spec, &hops)?;
    Ok(ExplanationTemplate::new(path)
        .named(format!("{} + same dept.", event.label()))
        .described(format!(
            "[L.Patient] had {} with user [T1.{}], and [L.User] works in the same department ([T2.Department]).",
            event.phrase(),
            event.primary_user_col()
        )))
}

/// Example 4.2's template: the patient had an `event`, and the accessing
/// user is in the *same collaborative group* as the event's primary user
/// (length 4, via a `Groups` self-join). `depth` restricts both group
/// tuple variables to one hierarchy level (a decorated template); `None`
/// uses any depth, like the mined variants.
pub fn same_group(
    db: &Database,
    spec: &LogSpec,
    event: EventTable,
    depth: Option<i64>,
) -> Result<ExplanationTemplate> {
    let mut hops = user_hops(db, event, event.primary_user_col());
    let group_alias_base = hops.len() + 1; // first Groups alias (1-based)
    hops.push(("Groups", "User", "Group_id"));
    hops.push(("Groups", "Group_id", "User"));
    let mut path = Path::handcrafted(db, spec, &hops)?;
    if let Some(d) = depth {
        let depth_col = db
            .table(db.table_id("Groups")?)
            .schema()
            .col("Depth")
            .expect("Groups has a Depth column");
        for alias in [group_alias_base, group_alias_base + 1] {
            path = path
                .decorated(
                    alias,
                    StepFilter {
                        col: depth_col,
                        op: CmpOp::Eq,
                        rhs: Rhs::Const(Value::Int(d)),
                    },
                )
                .expect("group aliases exist");
        }
    }
    let name = match depth {
        Some(d) => format!("{} + group@{d}", event.label()),
        None => format!("{} + group", event.label()),
    };
    Ok(ExplanationTemplate::new(path)
        .named(name)
        .described(format!(
        "[L.Patient] had {} with user [T1.{}], and [L.User] is in the same collaborative group.",
        event.phrase(),
        event.primary_user_col()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_synth::{AccessReason, Hospital, SynthConfig};

    fn hospital() -> (Hospital, LogSpec) {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = LogSpec::conventional(&h.db).unwrap();
        (h, spec)
    }

    #[test]
    fn suite_builds_and_has_positive_support() {
        let (h, spec) = hospital();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        assert!(t.appt_with_dr.support(&h.db, &spec).unwrap() > 0);
        assert!(t.doc_with_dr.support(&h.db, &spec).unwrap() > 0);
        assert!(t.repeat_access.support(&h.db, &spec).unwrap() > 0);
        assert_eq!(t.all().len(), 8);
        // One warm engine serves the whole suite with identical supports
        // (the repeat-access template is anchor-dependent and exercises
        // the per-row fallback).
        let engine = eba_relational::Engine::new(&h.db);
        for tmpl in t.all() {
            assert_eq!(
                tmpl.support_with(&h.db, &spec, &engine).unwrap(),
                tmpl.support(&h.db, &spec).unwrap()
            );
        }
    }

    #[test]
    fn appt_template_explains_primary_care_accesses() {
        let (h, spec) = hospital();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let explained: std::collections::HashSet<_> = t
            .appt_with_dr
            .explained_rows(&h.db, &spec)
            .unwrap()
            .into_iter()
            .collect();
        // Every explained access is by the appointment doctor (or a repeat
        // / follow-up by that doctor) — never a float assist.
        for &rid in &explained {
            assert_ne!(h.reason_of(rid), AccessReason::FloatAssist);
        }
        assert!(!explained.is_empty());
    }

    #[test]
    fn repeat_template_never_explains_first_accesses() {
        let (h, spec) = hospital();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let log = h.db.table(h.t_log);
        for rid in t.repeat_access.explained_rows(&h.db, &spec).unwrap() {
            assert_eq!(
                log.cell(rid, h.log_cols.is_first),
                eba_relational::Value::Int(0),
                "a repeat-explained access cannot be a first access"
            );
        }
    }

    #[test]
    fn event_predicates_cover_more_than_templates() {
        let (h, spec) = hospital();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let preds = event_predicates(&h.db, &spec).unwrap();
        assert_eq!(preds.len(), 6);
        // "Patient had an appointment with someone" is a superset of
        // "patient had an appointment with the accessing user".
        let pred_rows = preds[0]
            .1
            .to_chain_query(&spec)
            .explained_rows(&h.db, Default::default())
            .unwrap();
        let tmpl_rows = t.appt_with_dr.explained_rows(&h.db, &spec).unwrap();
        let pred_set: std::collections::HashSet<_> = pred_rows.into_iter().collect();
        for r in tmpl_rows {
            assert!(pred_set.contains(&r));
        }
    }

    #[test]
    fn same_department_expands_coverage() {
        let (h, spec) = hospital();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let dept = same_department(&h.db, &spec, EventTable::Appointments).unwrap();
        let narrow = t.appt_with_dr.explained_rows(&h.db, &spec).unwrap().len();
        let wide = dept.explained_rows(&h.db, &spec).unwrap().len();
        assert!(
            wide >= narrow,
            "same-department ({wide}) must cover at least appt-with-dr ({narrow})"
        );
        assert_eq!(dept.length(), 4);
    }

    #[test]
    fn group_template_requires_groups_table() {
        let (h, spec) = hospital();
        assert!(same_group(&h.db, &spec, EventTable::Appointments, None).is_err());
    }
}
