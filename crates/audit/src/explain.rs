//! The explainer: per-access explanations ranked by path length.
//!
//! "When there are multiple explanation instances for a given log record,
//! we convert each to natural language and rank the explanations in
//! ascending order of path length" (§2.1).

use eba_core::{ExplanationTemplate, LogSpec};
use eba_relational::{
    ChainQuery, Database, Engine, Epoch, EpochVec, EvalOptions, PreparedChain, Result, RowId,
    RowSet, SuitePin,
};
use std::collections::HashSet;

/// One rendered explanation for a specific access.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedExplanation {
    /// Index into the explainer's template list.
    pub template_index: usize,
    /// Template path length (the ranking key; shorter = more direct).
    pub length: usize,
    /// Natural-language text.
    pub text: String,
}

/// A template suite ready to explain individual accesses.
#[derive(Debug, Clone, Default)]
pub struct Explainer {
    templates: Vec<ExplanationTemplate>,
}

impl Explainer {
    /// Builds an explainer over a set of templates.
    pub fn new(templates: Vec<ExplanationTemplate>) -> Self {
        Explainer { templates }
    }

    /// The templates, in index order.
    pub fn templates(&self) -> &[ExplanationTemplate] {
        &self.templates
    }

    /// Adds a template, returning its index.
    pub fn push(&mut self, t: ExplanationTemplate) -> usize {
        self.templates.push(t);
        self.templates.len() - 1
    }

    /// Lowers and validates every template's query **once**, for per-row
    /// loops: [`PreparedExplainer::explain`] then skips the structural
    /// re-validation [`ChainQuery::instances`](eba_relational::ChainQuery)
    /// would pay on every row.
    pub fn prepared(&self, db: &Database, spec: &LogSpec) -> Result<PreparedExplainer<'_>> {
        let queries = self
            .templates
            .iter()
            .map(|t| t.path.to_chain_query(spec).into_prepared(db))
            .collect::<Result<Vec<_>>>()?;
        Ok(PreparedExplainer {
            templates: &self.templates,
            queries,
        })
    }

    /// All explanations for one log record, rendered and sorted by
    /// ascending path length (then template order). At most
    /// `instances_per_template` witnesses are rendered per template.
    ///
    /// Convenience for one-off calls; loops over many rows should
    /// [`Explainer::prepared`] once and reuse it.
    pub fn explain(
        &self,
        db: &Database,
        spec: &LogSpec,
        row: RowId,
        instances_per_template: usize,
    ) -> Result<Vec<RankedExplanation>> {
        Ok(self
            .prepared(db, spec)?
            .explain(db, spec, row, instances_per_template))
    }

    /// The suite lowered to chain queries, in template order.
    fn suite_queries(&self, spec: &LogSpec) -> Vec<ChainQuery> {
        self.templates
            .iter()
            .map(|t| t.path.to_chain_query(spec))
            .collect()
    }

    /// The suite as a [`SuitePin`], ready to hand to
    /// [`eba_relational::SharedEngine::pin_suite`] or
    /// [`eba_relational::ShardedEngine::pin_suite`]: once pinned, every
    /// published epoch carries the materialized explained/unexplained
    /// partition, maintained incrementally per ingest and byte-identical
    /// to what [`Explainer::unexplained_rows_with`] recomputes cold.
    pub fn suite_pin(&self, spec: &LogSpec) -> SuitePin {
        SuitePin {
            log: spec.table,
            anchor_filters: spec.anchor_filters.clone(),
            queries: self.suite_queries(spec),
            opts: EvalOptions::default(),
        }
    }

    /// Rows (within the spec's anchor) explained by at least one template.
    ///
    /// One-off convenience that evaluates each template's query against
    /// the cold database; an auditing session asking this repeatedly
    /// should hold a warm [`Engine`] and use
    /// [`Explainer::explained_rows_with`] instead.
    pub fn explained_rows(&self, db: &Database, spec: &LogSpec) -> HashSet<RowId> {
        let mut out = HashSet::new();
        for q in self.suite_queries(spec) {
            let rows = q
                .explained_rows(db, EvalOptions::default())
                .expect("templates lower to valid queries");
            out.extend(rows);
        }
        out
    }

    /// [`Explainer::explained_rows`] through a shared [`Engine`]: the
    /// whole suite is evaluated as one fused batch
    /// ([`Engine::eval_suite`]), and the engine's step maps and log
    /// partitions stay warm for the next question. Results are identical
    /// to the per-query path.
    pub fn explained_rows_with(
        &self,
        db: &Database,
        spec: &LogSpec,
        engine: &Engine,
    ) -> HashSet<RowId> {
        self.explained_rowset_with(db, spec, engine)
            .iter()
            .collect()
    }

    /// [`Explainer::explained_rows_with`] in compressed [`RowSet`] form —
    /// the shape the fused suite driver produces, and what the timeline
    /// and portal layers consume without ever hashing a row id.
    pub fn explained_rowset_with(&self, db: &Database, spec: &LogSpec, engine: &Engine) -> RowSet {
        engine
            .explained_union_rowset(db, &self.suite_queries(spec), EvalOptions::default())
            .expect("templates lower to valid queries")
    }

    /// [`Explainer::explained_rows`] against a pinned [`Epoch`]: the
    /// session form — every question asked of the same epoch sees one
    /// consistent log state while ingests publish new epochs behind it.
    pub fn explained_rows_at(&self, spec: &LogSpec, epoch: &Epoch) -> HashSet<RowId> {
        self.explained_rows_with(epoch.db(), spec, epoch.engine())
    }

    /// [`Explainer::explained_rowset_with`] against a pinned [`Epoch`].
    pub fn explained_rowset_at(&self, spec: &LogSpec, epoch: &Epoch) -> RowSet {
        self.explained_rowset_with(epoch.db(), spec, epoch.engine())
    }

    /// [`Explainer::explained_rows`] against a pinned **epoch vector** —
    /// the sharded session form. Each shard evaluates the whole suite
    /// against its warm engine in parallel; the unions merge into
    /// **global** row ids, identical to what [`Explainer::explained_rows`]
    /// returns on the unsharded database.
    pub fn explained_rows_at_shards(&self, spec: &LogSpec, shards: &EpochVec) -> HashSet<RowId> {
        self.explained_rowset_at_shards(spec, shards)
            .iter()
            .collect()
    }

    /// [`Explainer::explained_rows_at_shards`] in compressed form: the
    /// per-shard global-id bitmaps fold with the associative union.
    pub fn explained_rowset_at_shards(&self, spec: &LogSpec, shards: &EpochVec) -> RowSet {
        shards
            .explained_union_rowset(&self.suite_queries(spec), EvalOptions::default())
            .expect("templates lower to valid queries")
    }

    /// Anchor rows *no* template explains — the paper's reduced set of
    /// potentially suspicious accesses.
    pub fn unexplained_rows(&self, db: &Database, spec: &LogSpec) -> Vec<RowId> {
        let explained = self.explained_rows(db, spec);
        crate::metrics::anchor_rows(db, spec)
            .into_iter()
            .filter(|rid| !explained.contains(rid))
            .collect()
    }

    /// [`Explainer::unexplained_rows`] through a shared [`Engine`]: the
    /// anchor rows and the fused suite's explained set meet as row-set
    /// algebra — `anchors \ explained` is one compressed difference, and
    /// the result reads out already sorted.
    pub fn unexplained_rows_with(
        &self,
        db: &Database,
        spec: &LogSpec,
        engine: &Engine,
    ) -> Vec<RowId> {
        self.unexplained_rowset_with(db, spec, engine).to_vec()
    }

    /// [`Explainer::unexplained_rows_with`] in compressed form.
    pub fn unexplained_rowset_with(
        &self,
        db: &Database,
        spec: &LogSpec,
        engine: &Engine,
    ) -> RowSet {
        let anchors = RowSet::from_sorted_vec(&crate::metrics::anchor_rows(db, spec));
        anchors.difference(&self.explained_rowset_with(db, spec, engine))
    }

    /// [`Explainer::unexplained_rows`] against a pinned [`Epoch`].
    pub fn unexplained_rows_at(&self, spec: &LogSpec, epoch: &Epoch) -> Vec<RowId> {
        self.unexplained_rows_with(epoch.db(), spec, epoch.engine())
    }

    /// [`Explainer::unexplained_rows`] against a pinned epoch vector:
    /// per-shard complements returned as **global-id** [`RowSet`]s and
    /// folded with the associative union — byte-identical to the
    /// unsharded answer, because anchor filters evaluate per row and
    /// shards partition the log (no re-sort needed: local ascending
    /// order maps to ascending global ids).
    pub fn unexplained_rows_at_shards(&self, spec: &LogSpec, shards: &EpochVec) -> Vec<RowId> {
        let per_shard = shards.par_map_shards(|_, shard| {
            let local = self.unexplained_rowset_with(shard.db(), spec, shard.engine());
            let global: Vec<RowId> = local.iter().map(|r| shard.to_global(r)).collect();
            RowSet::from_sorted_vec(&global)
        });
        RowSet::union_all(per_shard).to_vec()
    }
}

/// An [`Explainer`] whose template queries were lowered and validated once.
/// Produced by [`Explainer::prepared`]; see there.
#[derive(Debug)]
pub struct PreparedExplainer<'t> {
    templates: &'t [ExplanationTemplate],
    queries: Vec<PreparedChain>,
}

impl PreparedExplainer<'_> {
    /// The templates, in index order.
    pub fn templates(&self) -> &[ExplanationTemplate] {
        self.templates
    }

    /// The validated queries, parallel to [`PreparedExplainer::templates`].
    pub fn queries(&self) -> &[PreparedChain] {
        &self.queries
    }

    /// [`Explainer::explain`] without per-row query re-validation.
    pub fn explain(
        &self,
        db: &Database,
        spec: &LogSpec,
        row: RowId,
        instances_per_template: usize,
    ) -> Vec<RankedExplanation> {
        let mut out = Vec::new();
        for (i, (t, q)) in self.templates.iter().zip(&self.queries).enumerate() {
            for inst in q.instances(db, row, instances_per_template) {
                out.push(RankedExplanation {
                    template_index: i,
                    length: t.length(),
                    text: t.render(db, spec, row, &inst),
                });
            }
        }
        out.sort_by_key(|e| (e.length, e.template_index));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handcrafted::HandcraftedTemplates;
    use eba_synth::{Hospital, SynthConfig};

    fn setup() -> (Hospital, LogSpec, Explainer) {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = LogSpec::conventional(&h.db).unwrap();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let explainer = Explainer::new(t.all().into_iter().cloned().collect());
        (h, spec, explainer)
    }

    #[test]
    fn explanations_are_ranked_by_length() {
        let (h, spec, explainer) = setup();
        // Find a row with at least two explanations.
        for rid in 0..h.log_len() as RowId {
            let ex = explainer.explain(&h.db, &spec, rid, 4).unwrap();
            if ex.len() >= 2 {
                for w in ex.windows(2) {
                    assert!(w[0].length <= w[1].length);
                }
                assert!(!ex[0].text.is_empty());
                return;
            }
        }
        panic!("no multiply-explained access found");
    }

    #[test]
    fn explained_plus_unexplained_covers_anchor() {
        let (h, spec, explainer) = setup();
        let explained = explainer.explained_rows(&h.db, &spec);
        let unexplained = explainer.unexplained_rows(&h.db, &spec);
        assert_eq!(explained.len() + unexplained.len(), h.log_len());
        for rid in unexplained {
            assert!(!explained.contains(&rid));
        }
    }

    #[test]
    fn float_assists_are_unexplained() {
        let (h, spec, explainer) = setup();
        let explained = explainer.explained_rows(&h.db, &spec);
        let mut float_explained = 0;
        let mut float_total = 0;
        for rid in 0..h.log_len() as RowId {
            if h.reason_of(rid) == eba_synth::AccessReason::FloatAssist {
                float_total += 1;
                if explained.contains(&rid) {
                    float_explained += 1;
                }
            }
        }
        assert!(float_total > 0);
        // A float's *first* access has no event path; repeats of floats
        // are explained by the repeat template only.
        assert!(
            (float_explained as f64) < 0.2 * float_total as f64,
            "{float_explained}/{float_total} float accesses explained"
        );
    }

    #[test]
    fn engine_backed_suite_matches_per_query_path() {
        let (h, spec, explainer) = setup();
        let engine = eba_relational::Engine::new(&h.db);
        assert_eq!(
            explainer.explained_rows_with(&h.db, &spec, &engine),
            explainer.explained_rows(&h.db, &spec)
        );
        assert_eq!(
            explainer.unexplained_rows_with(&h.db, &spec, &engine),
            explainer.unexplained_rows(&h.db, &spec)
        );
    }

    #[test]
    fn sharded_suite_matches_unsharded_oracle() {
        let (h, spec, explainer) = setup();
        let key = eba_relational::ShardKey {
            table: spec.table,
            col: spec.patient_col,
        };
        for n in [1, 3] {
            let sharded = eba_relational::ShardedEngine::new(h.db.clone(), key, n);
            let shards = sharded.load();
            assert_eq!(
                explainer.explained_rows_at_shards(&spec, &shards),
                explainer.explained_rows(&h.db, &spec),
                "{n} shards"
            );
            assert_eq!(
                explainer.unexplained_rows_at_shards(&spec, &shards),
                explainer.unexplained_rows(&h.db, &spec),
                "{n} shards"
            );
        }
    }

    #[test]
    fn pinned_suite_maintains_the_cold_partition() {
        // A pinned suite's maintained sets must match the cold recompute
        // on every published epoch — including after ingests that extend
        // the log (tail delta) and the dimension tables (full re-eval of
        // the templates whose support grew).
        let (h, spec, explainer) = setup();
        let shared = eba_relational::SharedEngine::new(h.db.clone());
        let pin_id = shared.pin_suite(explainer.suite_pin(&spec));

        let check = |label: &str| {
            let epoch = shared.load();
            let m = epoch.maintained(pin_id).expect("pinned");
            assert_eq!(
                m.unexplained.to_vec(),
                explainer.unexplained_rows_at(&spec, &epoch),
                "{label}: unexplained"
            );
            assert_eq!(
                m.explained,
                explainer.explained_rowset_at(&spec, &epoch),
                "{label}: explained"
            );
            assert_eq!(m.log_len, epoch.db().table(spec.table).len());
        };
        check("cold pin");

        let arity = h.db.table(h.t_log).schema().arity();
        let cols = h.log_cols;
        for round in 0..3 {
            let (_, report) = shared.ingest(|db| {
                let mut row = vec![eba_relational::Value::Null; arity];
                row[cols.lid] = eba_relational::Value::Int(3_000_000 + round);
                row[cols.date] = eba_relational::Value::Date(0);
                row[cols.user] = eba_relational::Value::Int(1 + round);
                row[cols.patient] = eba_relational::Value::Int(1);
                row[cols.day] = eba_relational::Value::Int(1);
                row[cols.is_first] = eba_relational::Value::Int(0);
                db.insert(h.t_log, row).unwrap();
            });
            assert!(report.fallback_warning().is_none());
            check("after ingest");
        }
    }

    #[test]
    fn sharded_pinned_suite_maintains_the_cold_partition() {
        let (h, spec, explainer) = setup();
        let key = eba_relational::ShardKey {
            table: spec.table,
            col: spec.patient_col,
        };
        for n in [1, 3] {
            let sharded = eba_relational::ShardedEngine::new(h.db.clone(), key, n);
            let pin_id = sharded.pin_suite(explainer.suite_pin(&spec));
            let check = |label: &str| {
                let shards = sharded.load();
                let m = shards.maintained(pin_id).expect("pinned");
                assert_eq!(
                    m.unexplained.to_vec(),
                    explainer.unexplained_rows_at_shards(&spec, &shards),
                    "{label} ({n} shards): unexplained"
                );
            };
            check("cold pin");

            let arity = h.db.table(h.t_log).schema().arity();
            let cols = h.log_cols;
            let (_, report) = sharded.ingest(|batch| {
                for i in 0..4i64 {
                    let mut row = vec![eba_relational::Value::Null; arity];
                    row[cols.lid] = eba_relational::Value::Int(4_000_000 + i);
                    row[cols.date] = eba_relational::Value::Date(0);
                    row[cols.user] = eba_relational::Value::Int(1 + i);
                    row[cols.patient] = eba_relational::Value::Int(1 + i);
                    row[cols.day] = eba_relational::Value::Int(1);
                    row[cols.is_first] = eba_relational::Value::Int(0);
                    batch.insert_log(row).unwrap();
                }
            });
            assert!(report.fallback_warnings().is_empty());
            check("after ingest");
        }
    }

    #[test]
    fn push_extends_the_suite() {
        let (h, spec, mut explainer) = setup();
        let before = explainer.templates().len();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let idx = explainer.push(t.appt_with_dr.clone());
        assert_eq!(idx, before);
        assert_eq!(explainer.templates().len(), before + 1);
    }
}
