//! Precision, recall, and normalized recall (§5.3.2).
//!
//! * `recall = |real accesses explained| / |real log|`
//! * `precision = |real accesses explained| / |real + fake accesses explained|`
//! * `normalized recall = |real accesses explained| / |real accesses with
//!   events|` — the denominator discounts accesses the (truncated) database
//!   holds no information about.

use crate::fake::FakeLog;
use eba_core::{ExplanationTemplate, LogSpec};
use eba_relational::{
    ChainQuery, Database, Engine, Epoch, EpochVec, EvalOptions, Maintained, RowId, RowSet,
};
use std::collections::HashSet;

/// Counts underlying the three metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Confusion {
    /// Real anchor rows explained by at least one template.
    pub real_explained: usize,
    /// Fake anchor rows explained by at least one template.
    pub fake_explained: usize,
    /// Real anchor rows in total.
    pub real_total: usize,
    /// Fake anchor rows in total.
    pub fake_total: usize,
    /// Real anchor rows whose patient has *some* recorded event (the
    /// normalized-recall denominator); equals `real_total` when no event
    /// predicates were supplied.
    pub real_with_events: usize,
}

impl Confusion {
    /// `real_explained / real_total` (0 when empty).
    pub fn recall(&self) -> f64 {
        ratio(self.real_explained, self.real_total)
    }

    /// `real_explained / (real_explained + fake_explained)` (1 when nothing
    /// fake was explained).
    pub fn precision(&self) -> f64 {
        if self.real_explained + self.fake_explained == 0 {
            return 1.0;
        }
        self.real_explained as f64 / (self.real_explained + self.fake_explained) as f64
    }

    /// `real_explained / real_with_events` (0 when empty).
    pub fn normalized_recall(&self) -> f64 {
        ratio(self.real_explained, self.real_with_events)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Log rows passing the spec's anchor filters, ascending.
pub fn anchor_rows(db: &Database, spec: &LogSpec) -> Vec<RowId> {
    let log = db.table(spec.table);
    log.iter()
        .filter(|(_, row)| {
            spec.anchor_filters
                .iter()
                .all(|(col, op, v)| op.eval(&row[*col], v))
        })
        .map(|(rid, _)| rid)
        .collect()
}

/// Union of the rows explained by any of `templates` under `spec`.
pub fn explained_union(
    db: &Database,
    spec: &LogSpec,
    templates: &[&ExplanationTemplate],
) -> HashSet<RowId> {
    let mut out = HashSet::new();
    for t in templates {
        let rows = t
            .path
            .to_chain_query(spec)
            .explained_rows(db, EvalOptions::default())
            .expect("templates lower to valid queries");
        out.extend(rows);
    }
    out
}

/// [`explained_union`] through a shared [`Engine`]: the template set is
/// evaluated as one fused batch against the engine's warm caches.
pub fn explained_union_with(
    db: &Database,
    spec: &LogSpec,
    templates: &[&ExplanationTemplate],
    engine: &Engine,
) -> HashSet<RowId> {
    explained_union_rowset_with(db, spec, templates, engine)
        .iter()
        .collect()
}

/// [`explained_union_with`] in compressed form: the fused suite driver's
/// per-template bitmaps folded into one [`RowSet`] — no intermediate
/// hash set, and the natural input for [`confusion_from_rowset`].
pub fn explained_union_rowset_with(
    db: &Database,
    spec: &LogSpec,
    templates: &[&ExplanationTemplate],
    engine: &Engine,
) -> RowSet {
    let queries: Vec<ChainQuery> = templates
        .iter()
        .map(|t| t.path.to_chain_query(spec))
        .collect();
    engine
        .explained_union_rowset(db, &queries, EvalOptions::default())
        .expect("templates lower to valid queries")
}

/// Builds a [`Confusion`] from precomputed row sets — the general entry
/// point, also usable with open-path predicates (e.g. the depth-0
/// "everyone in one group" baseline, whose explained set is just "patient
/// has some event").
pub fn confusion_from_sets(
    anchors: &[RowId],
    explained: &HashSet<RowId>,
    is_fake: impl Fn(RowId) -> bool,
    with_events: Option<&HashSet<RowId>>,
) -> Confusion {
    confusion_from_membership(
        anchors,
        |rid| explained.contains(&rid),
        is_fake,
        with_events,
    )
}

/// [`confusion_from_sets`] with the explained set in compressed
/// [`RowSet`] form — what the fused suite paths produce.
pub fn confusion_from_rowset(
    anchors: &[RowId],
    explained: &RowSet,
    is_fake: impl Fn(RowId) -> bool,
    with_events: Option<&HashSet<RowId>>,
) -> Confusion {
    confusion_from_membership(anchors, |rid| explained.contains(rid), is_fake, with_events)
}

fn confusion_from_membership(
    anchors: &[RowId],
    explained: impl Fn(RowId) -> bool,
    is_fake: impl Fn(RowId) -> bool,
    with_events: Option<&HashSet<RowId>>,
) -> Confusion {
    let mut c = Confusion {
        real_explained: 0,
        fake_explained: 0,
        real_total: 0,
        fake_total: 0,
        real_with_events: 0,
    };
    for &rid in anchors {
        if is_fake(rid) {
            c.fake_total += 1;
            if explained(rid) {
                c.fake_explained += 1;
            }
        } else {
            c.real_total += 1;
            if with_events.is_none_or(|s| s.contains(&rid)) {
                c.real_with_events += 1;
            }
            if explained(rid) {
                c.real_explained += 1;
            }
        }
    }
    c
}

/// Evaluates a template set: anchor rows are split real/fake via `fake`,
/// and `with_events` (if given) marks the rows counted in the
/// normalized-recall denominator.
pub fn evaluate(
    db: &Database,
    spec: &LogSpec,
    templates: &[&ExplanationTemplate],
    fake: Option<&FakeLog>,
    with_events: Option<&HashSet<RowId>>,
) -> Confusion {
    let anchors = anchor_rows(db, spec);
    let explained = explained_union(db, spec, templates);
    confusion_from_sets(
        &anchors,
        &explained,
        |rid| fake.is_some_and(|f| f.is_fake(rid)),
        with_events,
    )
}

/// [`explained_union`] against a pinned [`Epoch`] (the session form of
/// [`explained_union_with`]).
pub fn explained_union_at(
    spec: &LogSpec,
    templates: &[&ExplanationTemplate],
    epoch: &Epoch,
) -> HashSet<RowId> {
    explained_union_with(epoch.db(), spec, templates, epoch.engine())
}

/// [`explained_union`] against a pinned **epoch vector**: shards evaluate
/// the template set in parallel and the unions merge into global row ids.
pub fn explained_union_at_shards(
    spec: &LogSpec,
    templates: &[&ExplanationTemplate],
    shards: &EpochVec,
) -> HashSet<RowId> {
    explained_union_rowset_at_shards(spec, templates, shards)
        .iter()
        .collect()
}

/// [`explained_union_at_shards`] in compressed form: per-shard global-id
/// bitmaps folded with the associative union.
pub fn explained_union_rowset_at_shards(
    spec: &LogSpec,
    templates: &[&ExplanationTemplate],
    shards: &EpochVec,
) -> RowSet {
    let queries: Vec<ChainQuery> = templates
        .iter()
        .map(|t| t.path.to_chain_query(spec))
        .collect();
    shards
        .explained_union_rowset(&queries, EvalOptions::default())
        .expect("templates lower to valid queries")
}

/// [`anchor_rows`] against a pinned epoch vector, in ascending **global**
/// row id order — byte-identical to the unsharded call.
pub fn anchor_rows_at_shards(shards: &EpochVec, spec: &LogSpec) -> Vec<RowId> {
    let mut out: Vec<RowId> = shards
        .par_map_shards(|_, shard| {
            anchor_rows(shard.db(), spec)
                .into_iter()
                .map(|local| shard.to_global(local))
                .collect::<Vec<RowId>>()
        })
        .into_iter()
        .flatten()
        .collect();
    out.sort_unstable();
    out
}

/// [`evaluate`] through a shared [`Engine`] over `db` — what the
/// experiments figures use so every template set of one figure shares one
/// snapshot and cache.
pub fn evaluate_with(
    db: &Database,
    spec: &LogSpec,
    templates: &[&ExplanationTemplate],
    fake: Option<&FakeLog>,
    with_events: Option<&HashSet<RowId>>,
    engine: &Engine,
) -> Confusion {
    let anchors = anchor_rows(db, spec);
    let explained = explained_union_rowset_with(db, spec, templates, engine);
    confusion_from_rowset(
        &anchors,
        &explained,
        |rid| fake.is_some_and(|f| f.is_fake(rid)),
        with_events,
    )
}

/// [`evaluate`] against a pinned [`Epoch`] — anchors and explained sets
/// are both read from the epoch's frozen database, so the confusion counts
/// cannot straddle an ingest.
pub fn evaluate_at(
    spec: &LogSpec,
    templates: &[&ExplanationTemplate],
    fake: Option<&FakeLog>,
    with_events: Option<&HashSet<RowId>>,
    epoch: &Epoch,
) -> Confusion {
    evaluate_with(
        epoch.db(),
        spec,
        templates,
        fake,
        with_events,
        epoch.engine(),
    )
}

/// [`Confusion`] read off a pinned suite's [`Maintained`] partition — the
/// O(delta)-maintained form of [`evaluate`] with no fake log and no event
/// predicate (the live-service configuration: every anchor row is real).
/// No query runs and nothing is materialized: `real_explained` is one
/// allocation-free intersection count
/// ([`RowSet::intersect_len`]) over the already-maintained sets.
pub fn confusion_from_maintained(m: &Maintained) -> Confusion {
    let real_total = m.anchors.len();
    Confusion {
        real_explained: m.anchors.intersect_len(&m.explained),
        fake_explained: 0,
        real_total,
        fake_total: 0,
        real_with_events: real_total,
    }
}

/// [`evaluate`] against a pinned epoch vector. `fake` and `with_events`
/// speak global row ids (they were built against the unsharded log), and
/// so do the anchors and explained sets gathered here — the confusion
/// counts are identical to [`evaluate`] on the oracle database.
pub fn evaluate_at_shards(
    spec: &LogSpec,
    templates: &[&ExplanationTemplate],
    fake: Option<&FakeLog>,
    with_events: Option<&HashSet<RowId>>,
    shards: &EpochVec,
) -> Confusion {
    let anchors = anchor_rows_at_shards(shards, spec);
    let explained = explained_union_rowset_at_shards(spec, templates, shards);
    confusion_from_rowset(
        &anchors,
        &explained,
        |rid| fake.is_some_and(|f| f.is_fake(rid)),
        with_events,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handcrafted::HandcraftedTemplates;
    use eba_synth::{Hospital, SynthConfig};

    #[test]
    fn metric_formulas() {
        let c = Confusion {
            real_explained: 30,
            fake_explained: 10,
            real_total: 60,
            fake_total: 60,
            real_with_events: 40,
        };
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.normalized_recall() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let c = Confusion {
            real_explained: 0,
            fake_explained: 0,
            real_total: 0,
            fake_total: 0,
            real_with_events: 0,
        };
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.normalized_recall(), 0.0);
    }

    #[test]
    fn evaluate_without_fakes_counts_all_rows_real() {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = eba_core::LogSpec::conventional(&h.db).unwrap();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let c = evaluate(&h.db, &spec, &t.all_with_repeat(), None, None);
        assert_eq!(c.fake_total, 0);
        assert_eq!(c.real_total, h.log_len());
        assert!(c.recall() > 0.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.real_with_events, c.real_total);
    }

    #[test]
    fn engine_backed_union_and_confusion_match_per_query() {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = eba_core::LogSpec::conventional(&h.db).unwrap();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let engine = Engine::new(&h.db);
        let suite = t.all();
        assert_eq!(
            explained_union_with(&h.db, &spec, &suite, &engine),
            explained_union(&h.db, &spec, &suite)
        );
        assert_eq!(
            evaluate_with(&h.db, &spec, &suite, None, None, &engine),
            evaluate(&h.db, &spec, &suite, None, None)
        );
    }

    #[test]
    fn sharded_metrics_match_unsharded_oracle() {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = eba_core::LogSpec::conventional(&h.db).unwrap();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let suite = t.all();
        let key = eba_relational::ShardKey {
            table: spec.table,
            col: spec.patient_col,
        };
        for n in [1, 3] {
            let sharded = eba_relational::ShardedEngine::new(h.db.clone(), key, n);
            let shards = sharded.load();
            assert_eq!(
                anchor_rows_at_shards(&shards, &spec),
                anchor_rows(&h.db, &spec),
                "{n} shards"
            );
            assert_eq!(
                explained_union_at_shards(&spec, &suite, &shards),
                explained_union(&h.db, &spec, &suite)
            );
            assert_eq!(
                evaluate_at_shards(&spec, &suite, None, None, &shards),
                evaluate(&h.db, &spec, &suite, None, None)
            );
        }
    }

    #[test]
    fn maintained_confusion_matches_evaluate() {
        let h = Hospital::generate(SynthConfig::tiny());
        let spec = eba_core::LogSpec::conventional(&h.db).unwrap();
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        let explainer = crate::explain::Explainer::new(t.all().into_iter().cloned().collect());
        let shared = eba_relational::SharedEngine::new(h.db.clone());
        let pin_id = shared.pin_suite(explainer.suite_pin(&spec));
        let epoch = shared.load();
        let m = epoch.maintained(pin_id).expect("pinned");
        let suite: Vec<&ExplanationTemplate> = explainer.templates().iter().collect();
        assert_eq!(
            confusion_from_maintained(m),
            evaluate(&h.db, &spec, &suite, None, None)
        );
    }

    #[test]
    fn precision_drops_with_fakes_for_permissive_templates() {
        let mut h = Hospital::generate(SynthConfig::tiny());
        let spec = eba_core::LogSpec::conventional(&h.db).unwrap();
        let users = crate::fake::user_pool(&h.db);
        let patients: Vec<_> = (0..h.world.n_patients())
            .map(|p| h.patient_value(p))
            .collect();
        let n = h.log_len();
        let fake = FakeLog::inject(
            &mut h.db,
            h.t_log,
            &h.log_cols,
            &users,
            &patients,
            n,
            h.config.days,
            99,
        );
        let t = HandcraftedTemplates::build(&h.db, &spec).unwrap();
        // Tight templates keep high precision. (The tiny test world is far
        // denser than CareWeb's 3e-4 user-patient density, so some fake
        // pairs do coincide with real appointments; at realistic scale the
        // experiments measure ≈0.99.)
        let tight = evaluate(&h.db, &spec, &[&t.appt_with_dr], Some(&fake), None);
        assert!(tight.precision() > 0.75, "precision {}", tight.precision());
        assert_eq!(tight.real_total, n);
        assert_eq!(tight.fake_total, n);
    }
}
