//! String interning.
//!
//! All string values stored in a [`crate::Database`] are interned in a
//! [`StringPool`], so a [`crate::Value`] stays `Copy` and hash-joins never
//! compare string bytes. Interning also matches how the audited hospital
//! data looks in practice: low-cardinality coded strings (department codes,
//! action codes) repeated across millions of rows.
//!
//! The pool is stored segmented, like every other append-only structure
//! that crosses an epoch boundary: symbol → string resolution lives in a
//! [`SegVec`] (sealed segments `Arc`-shared between [`crate::Database`]
//! clones), string → symbol lookup in an LSM-style [`LayeredMap`]. Before
//! this, every epoch publication deep-copied the whole pool — the one
//! remaining `O(database)` clone after the PR 5 segmentation pass.

use crate::segment::{LayeredMap, SegVec, DEFAULT_SEGMENT_ROWS};
use std::collections::HashMap;
use std::sync::Arc;

/// An interned string handle.
///
/// Symbols are only meaningful relative to the [`StringPool`] (and therefore
/// the [`crate::Database`]) that produced them. Equality of symbols from the
/// same pool is equality of the underlying strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// An append-only string interner with epoch-shareable storage: cloning
/// shares every sealed segment and lookup layer, copying only the small
/// mutable tails (metered by the segment copy meter like all segmented
/// state).
#[derive(Debug, Clone)]
pub struct StringPool {
    strings: SegVec<Box<str>>,
    lookup: LayeredMap<Box<str>, Symbol>,
}

impl Default for StringPool {
    fn default() -> Self {
        Self::with_granularity(DEFAULT_SEGMENT_ROWS)
    }
}

impl StringPool {
    /// Creates an empty pool with the default segment granularity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool sealing its segments (and lookup layers) every
    /// `granularity` strings — tests use tiny granularities so sharing
    /// kicks in on small data.
    pub fn with_granularity(granularity: usize) -> Self {
        let granularity = granularity.max(1);
        StringPool {
            strings: SegVec::new(granularity),
            lookup: LayeredMap::with_tail_cap(granularity),
        }
    }

    /// Interns `s`, returning its symbol. Re-interning an existing string
    /// returns the same symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("more than u32::MAX strings"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Looks up a symbol for `s` without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol did not come from this pool.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.strings.get(sym.0 as usize)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Seals the mutable tails into shared segments/layers, so clones made
    /// afterwards share everything interned so far. Symbols are unchanged.
    pub fn seal(&mut self) {
        self.strings.seal();
        self.lookup.seal();
    }

    /// The sealed string segments, oldest first — exposed (like
    /// [`crate::Table::sealed_row_segments`]) so the cross-epoch sharing
    /// suite can assert clones share them by pointer.
    pub fn sealed_segments(&self) -> &[Arc<[Box<str>]>] {
        self.strings.sealed_segments()
    }

    /// The sealed lookup layers, oldest first (same sharing assertion,
    /// reverse direction).
    pub fn lookup_layers(&self) -> &[Arc<HashMap<Box<str>, Symbol>>] {
        self.lookup.layers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trips() {
        let mut pool = StringPool::new();
        let a = pool.intern("Pediatrics");
        let b = pool.intern("Nursing-Pediatrics");
        assert_ne!(a, b);
        assert_eq!(pool.resolve(a), "Pediatrics");
        assert_eq!(pool.resolve(b), "Nursing-Pediatrics");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut pool = StringPool::new();
        let a = pool.intern("Radiology");
        let b = pool.intern("Radiology");
        assert_eq!(a, b);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn get_does_not_intern() {
        let mut pool = StringPool::new();
        assert!(pool.get("x").is_none());
        assert!(pool.is_empty());
        pool.intern("x");
        assert_eq!(pool.get("x"), Some(Symbol(0)));
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut pool = StringPool::new();
        let e = pool.intern("");
        assert_eq!(pool.resolve(e), "");
    }

    #[test]
    fn clones_share_sealed_segments_and_layers() {
        let mut pool = StringPool::with_granularity(4);
        for i in 0..10 {
            pool.intern(&format!("s{i}"));
        }
        let clone = pool.clone();
        assert!(!pool.sealed_segments().is_empty());
        for (a, b) in pool.sealed_segments().iter().zip(clone.sealed_segments()) {
            assert!(Arc::ptr_eq(a, b), "sealed strings copied instead of shared");
        }
        assert!(!pool.lookup_layers().is_empty());
        for (a, b) in pool.lookup_layers().iter().zip(clone.lookup_layers()) {
            assert!(Arc::ptr_eq(a, b), "lookup layers copied instead of shared");
        }
        // Symbols stay aligned across the divergence point.
        let mut diverged = pool.clone();
        let new_in_clone = diverged.intern("only-in-clone");
        assert_eq!(pool.len() as u32, new_in_clone.0);
        for i in 0..10 {
            let s = format!("s{i}");
            assert_eq!(pool.get(&s), diverged.get(&s));
        }
    }

    #[test]
    fn seal_freezes_partial_tails_without_renumbering() {
        let mut pool = StringPool::with_granularity(100);
        let a = pool.intern("a");
        let b = pool.intern("b");
        assert!(pool.sealed_segments().is_empty());
        pool.seal();
        assert_eq!(pool.sealed_segments().len(), 1);
        assert_eq!(pool.lookup_layers().len(), 1);
        assert_eq!(pool.resolve(a), "a");
        assert_eq!(pool.get("b"), Some(b));
        let c = pool.intern("c");
        assert_eq!(c, Symbol(2));
        pool.seal();
        pool.seal(); // idempotent on an empty tail
        assert_eq!(pool.sealed_segments().len(), 2);
    }
}
