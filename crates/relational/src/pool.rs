//! String interning.
//!
//! All string values stored in a [`crate::Database`] are interned in a
//! [`StringPool`], so a [`crate::Value`] stays `Copy` and hash-joins never
//! compare string bytes. Interning also matches how the audited hospital
//! data looks in practice: low-cardinality coded strings (department codes,
//! action codes) repeated across millions of rows.

use std::collections::HashMap;

/// An interned string handle.
///
/// Symbols are only meaningful relative to the [`StringPool`] (and therefore
/// the [`crate::Database`]) that produced them. Equality of symbols from the
/// same pool is equality of the underlying strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// An append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct StringPool {
    strings: Vec<Box<str>>,
    lookup: HashMap<Box<str>, Symbol>,
}

impl StringPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol. Re-interning an existing string
    /// returns the same symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("more than u32::MAX strings"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Looks up a symbol for `s` without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol did not come from this pool.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trips() {
        let mut pool = StringPool::new();
        let a = pool.intern("Pediatrics");
        let b = pool.intern("Nursing-Pediatrics");
        assert_ne!(a, b);
        assert_eq!(pool.resolve(a), "Pediatrics");
        assert_eq!(pool.resolve(b), "Nursing-Pediatrics");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut pool = StringPool::new();
        let a = pool.intern("Radiology");
        let b = pool.intern("Radiology");
        assert_eq!(a, b);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn get_does_not_intern() {
        let mut pool = StringPool::new();
        assert!(pool.get("x").is_none());
        assert!(pool.is_empty());
        pool.intern("x");
        assert_eq!(pool.get("x"), Some(Symbol(0)));
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut pool = StringPool::new();
        let e = pool.intern("");
        assert_eq!(pool.resolve(e), "");
    }
}
