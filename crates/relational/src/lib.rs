//! # eba-relational
//!
//! A small, self-contained, in-memory relational engine. It is the substrate
//! that `eba-core` runs explanation-template queries against, playing the
//! role PostgreSQL played in the original *Explanation-Based Auditing* system
//! (Fabbri & LeFevre, VLDB 2011).
//!
//! The engine provides exactly the capabilities the paper's SQL layer uses:
//!
//! * typed tables with named columns ([`TableSchema`], [`Table`]),
//! * key/foreign-key and administrator-declared relationship metadata, plus
//!   attributes explicitly allowed in self-joins ([`Database`]),
//! * hash indexes built lazily per column ([`table::Table::index`]),
//! * evaluation of *path-shaped* conjunctive equi-join queries, including the
//!   paper's support query `SELECT COUNT(DISTINCT Log.Lid) ...`
//!   ([`chain::ChainQuery`]),
//! * `SELECT DISTINCT` per-table de-duplication (the paper's "reducing result
//!   multiplicity" optimization is the default evaluation strategy),
//! * System-R-style cardinality estimation used by the paper's "skipping
//!   non-selective paths" optimization ([`stats`], [`chain::estimate_support`]).
//!
//! Strings are interned in a per-database [`StringPool`]; a [`Value`] is a
//! small, `Copy`, hashable scalar which keeps join evaluation allocation-free
//! on the hot path.
//!
//! Storage is **segmented and append-only** ([`segment`]): table row
//! heaps, interned engine columns, and the interner's lookup maps live
//! in immutable `Arc`-shared sealed segments plus a small mutable tail,
//! so cloning a [`Database`] or forking an [`Engine`] — epoch
//! publication — copies only the tails (`O(batch)`), and per-column hash
//! indexes are cached per segment so appends never drop warm indexes
//! over sealed data.
//!
//! # The evaluation engine
//!
//! [`ChainQuery`] evaluates one query at a time against the live tables.
//! Template mining instead evaluates *thousands* of candidate queries that
//! overwhelmingly share structure, so the [`engine`] module layers a shared
//! evaluation substrate on top:
//!
//! 1. **Value interner** ([`engine::InternedDb`]): one scan snapshots every
//!    table into columnar dense-`u32` form (`Value` ↔ id bijection, NULL as
//!    a sentinel), so frontier sets become bitset-deduplicated `Vec<u32>`s
//!    instead of `HashSet<Value>`s and the snapshot is `Send + Sync`.
//! 2. **Step-map cache** ([`Engine`]): each distinct step —
//!    `(table, enter_col, exit_col, const-filters, dedup)` — gets its
//!    `enter → {exits}` CSR map built **once** per engine and shared by
//!    every query that traverses it; the `(start, close) → rows` partition
//!    of the log is likewise computed once per anchor shape.
//! 3. **Batch API** ([`Engine::support_many`],
//!    [`Engine::explained_rows_many`]): a whole candidate frontier or
//!    template suite is evaluated against one cache, fanned out across
//!    threads ([`engine::par_map`]).
//! 4. **Incremental refresh** ([`Engine::refresh`]): tables are
//!    append-only, so a warm engine follows the growing log by scanning
//!    only the appended rows and dropping only the caches over tables that
//!    grew — a long-running auditing service keeps one engine per session
//!    instead of re-snapshotting per query.
//! 5. **Snapshot handoff** ([`SharedEngine`]): a service answering audit
//!    queries *while* the log ingests publishes immutable
//!    [`Epoch`]s (database + engine, frozen together); readers pin one
//!    epoch per session and are never blocked by a refresh, the single
//!    writer refreshes a private fork and swaps it in atomically. The
//!    [`Database`] itself is `Send + Sync` (poison-tolerant lazily-built
//!    caches, [`sync::unpoison`]), so one epoch serves any number of
//!    concurrent sessions — and a panicking query or ingest cannot poison
//!    the service into permanent failure.
//!
//! The engine returns **byte-identical** results to [`ChainQuery`] for
//! every query class (enforced differentially by the `engine_equivalence`
//! integration test); anchor-dependent decorated queries are transparently
//! routed to the per-row evaluator. `eba-core`'s miner drives all bottom-up
//! rounds and decoration refinement through it (`MiningConfig::opt_engine`),
//! and `eba-audit`'s explainer, metrics, timeline, and portal layers batch
//! whole template suites through it.
//!
//! ```
//! use eba_relational::{Database, DataType, Value};
//!
//! let mut db = Database::new();
//! let t = db.create_table(
//!     "Appointments",
//!     &[("Patient", DataType::Int), ("Date", DataType::Date), ("Doctor", DataType::Int)],
//! ).unwrap();
//! db.insert(t, vec![Value::Int(1), Value::Date(10), Value::Int(7)]).unwrap();
//! assert_eq!(db.table(t).len(), 1);
//! ```

pub mod chain;
pub mod csv;
pub mod database;
pub mod engine;
pub mod error;
pub mod index;
pub mod pile;
pub mod plan;
pub mod pool;
pub mod rowset;
pub mod segment;
pub mod select;
pub mod stats;
pub mod sync;
pub mod table;
pub mod types;
pub mod value;
pub mod wal;

pub use chain::{
    estimate_support, estimate_support_hinted, ChainQuery, ChainStep, CmpOp, EvalOptions, Instance,
    PreparedChain, Rhs, StepFilter, StepTrace,
};
pub use database::{AttrRef, Database, RelationshipKind, TableId};
pub use engine::{
    shard_of, Engine, Epoch, EpochVec, IngestReport, Maintained, RefreshDelta, RefreshError,
    RefreshStats, ShardEpoch, ShardKey, ShardRefresh, ShardedBatch, ShardedEngine,
    ShardedIngestReport, SharedEngine, SuitePin,
};
pub use error::{Error, PileError, Result};
pub use index::{HashIndex, TableIndex};
pub use pile::{Batch, Durability, DurableStore, PlainValue, RecoveryReport};
pub use plan::{explain, Plan, PlanStep};
pub use pool::{StringPool, Symbol};
pub use rowset::RowSet;
pub use segment::{SegVec, DEFAULT_SEGMENT_ROWS};
pub use select::Selection;
pub use stats::ColumnStats;
pub use table::{Row, RowId, Table};
pub use types::{ColId, Column, DataType, TableSchema};
pub use value::Value;
pub use wal::{FaultAfter, Media, RecordFile, ScanReport, SharedMem};
