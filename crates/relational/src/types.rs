//! Schema definitions: data types, columns, and table schemas.

use std::fmt;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integers (ids).
    Int,
    /// Interned strings (codes, names).
    Str,
    /// Timestamps (minutes since epoch).
    Date,
}

impl DataType {
    /// Short name for error messages and SQL rendering.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "Int",
            DataType::Str => "Str",
            DataType::Date => "Date",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Index of a column within its table schema.
pub type ColId = usize;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within the table.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

/// The schema of a table: an ordered list of columns.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Table name, unique within the database.
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(name: impl Into<String>, columns: &[(&str, DataType)]) -> Self {
        TableSchema {
            name: name.into(),
            columns: columns
                .iter()
                .map(|(n, t)| Column {
                    name: (*n).to_string(),
                    dtype: *t,
                })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Finds a column by name.
    pub fn col(&self, name: &str) -> Option<ColId> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column name for a [`ColId`].
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn col_name(&self, id: ColId) -> &str {
        &self.columns[id].name
    }

    /// Column type for a [`ColId`].
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn col_type(&self, id: ColId) -> DataType {
        self.columns[id].dtype
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
    }

    #[test]
    fn col_lookup_by_name() {
        let s = schema();
        assert_eq!(s.col("Lid"), Some(0));
        assert_eq!(s.col("Patient"), Some(3));
        assert_eq!(s.col("Nope"), None);
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn col_metadata_round_trips() {
        let s = schema();
        assert_eq!(s.col_name(2), "User");
        assert_eq!(s.col_type(1), DataType::Date);
    }

    #[test]
    fn datatype_display() {
        assert_eq!(DataType::Int.to_string(), "Int");
        assert_eq!(DataType::Date.name(), "Date");
    }
}
