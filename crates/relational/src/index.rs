//! Hash indexes over single columns.
//!
//! With segmented storage ([`crate::segment`]) a table's rows live in
//! immutable sealed segments plus a mutable tail, so the index layer is
//! segmented the same way: one immutable [`HashIndex`] per sealed segment
//! (shared via `Arc` across table clones — i.e. across epochs) plus a
//! small index over the tail, composed into a [`TableIndex`] view. An
//! append therefore invalidates only the tail's part; indexes over sealed
//! data survive ingests and are shared between epochs.

use crate::table::RowId;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// An equality index: value → row ids holding that value.
///
/// NULLs are excluded: SQL equi-joins never match NULL, so indexing them
/// would only waste memory. Row ids are *global* table row ids — an index
/// over a segment is built with that segment's base offset.
#[derive(Debug, Default, Clone)]
pub struct HashIndex {
    map: HashMap<Value, Vec<RowId>>,
    entries: usize,
}

impl HashIndex {
    /// Builds an index from a column iterator (in row order), numbering
    /// rows from 0.
    pub fn build<I: IntoIterator<Item = Value>>(column: I) -> Self {
        Self::build_offset(column, 0)
    }

    /// Builds an index from a column iterator whose first element is
    /// table row `base` — the segment-local form.
    pub fn build_offset<I: IntoIterator<Item = Value>>(column: I, base: RowId) -> Self {
        let mut map: HashMap<Value, Vec<RowId>> = HashMap::new();
        let mut entries = 0usize;
        for (row, value) in column.into_iter().enumerate() {
            if value.is_null() {
                continue;
            }
            entries += 1;
            map.entry(value).or_default().push(base + row as RowId);
        }
        Self { map, entries }
    }

    /// Row ids whose column equals `value` (never matches NULL).
    pub fn get(&self, value: Value) -> &[RowId] {
        self.map.get(&value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if any row holds `value`.
    pub fn contains(&self, value: Value) -> bool {
        !value.is_null() && self.map.contains_key(&value)
    }

    /// Number of distinct non-null values.
    pub fn distinct_count(&self) -> usize {
        self.map.len()
    }

    /// Number of non-null rows indexed.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Iterate over `(value, row ids)` groups.
    pub fn groups(&self) -> impl Iterator<Item = (&Value, &[RowId])> {
        self.map.iter().map(|(v, rows)| (v, rows.as_slice()))
    }
}

/// A whole-column index view composed from per-segment parts: one
/// immutable [`HashIndex`] per sealed segment plus one over the tail, in
/// row order. Cheap to clone (a handful of `Arc`s); parts over sealed
/// segments are shared across table clones, so a warm index survives both
/// an ingest and an epoch publication.
#[derive(Debug, Clone)]
pub struct TableIndex {
    parts: Vec<Arc<HashIndex>>,
}

impl TableIndex {
    /// Composes a view from per-segment parts (in row order).
    pub(crate) fn new(parts: Vec<Arc<HashIndex>>) -> Self {
        TableIndex { parts }
    }

    /// The per-segment parts, in row order (sealed segments first, the
    /// tail part last). Exposed so tests can assert `Arc::ptr_eq` reuse.
    pub fn parts(&self) -> &[Arc<HashIndex>] {
        &self.parts
    }

    /// Row ids whose column equals `value`, ascending (empty for NULL
    /// probes, per SQL equality).
    pub fn rows_of(&self, value: Value) -> impl Iterator<Item = RowId> + '_ {
        let null = value.is_null();
        self.parts
            .iter()
            .filter(move |_| !null)
            .flat_map(move |p| p.get(value).iter().copied())
    }

    /// True if any row holds `value`.
    pub fn contains(&self, value: Value) -> bool {
        self.parts.iter().any(|p| p.contains(value))
    }

    /// Number of non-null rows indexed.
    pub fn entry_count(&self) -> usize {
        self.parts.iter().map(|p| p.entry_count()).sum()
    }

    /// Number of distinct non-null values across all segments.
    pub fn distinct_count(&self) -> usize {
        match self.parts.len() {
            0 => 0,
            1 => self.parts[0].distinct_count(),
            _ => {
                let mut seen = std::collections::HashSet::new();
                for p in &self.parts {
                    seen.extend(p.groups().map(|(v, _)| *v));
                }
                seen.len()
            }
        }
    }

    /// Merged `(value, row ids)` groups across all segments, materialized
    /// (row ids ascending per value; group order arbitrary).
    pub fn groups(&self) -> Vec<(Value, Vec<RowId>)> {
        let mut merged: HashMap<Value, Vec<RowId>> = HashMap::new();
        for p in &self.parts {
            for (v, rows) in p.groups() {
                merged.entry(*v).or_default().extend_from_slice(rows);
            }
        }
        let mut out: Vec<(Value, Vec<RowId>)> = merged.into_iter().collect();
        for (_, rows) in &mut out {
            rows.sort_unstable();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_groups_rows_by_value() {
        let idx = HashIndex::build(vec![
            Value::Int(7),
            Value::Int(8),
            Value::Int(7),
            Value::Null,
        ]);
        assert_eq!(idx.get(Value::Int(7)), &[0, 2]);
        assert_eq!(idx.get(Value::Int(8)), &[1]);
        assert_eq!(idx.get(Value::Int(9)), &[] as &[RowId]);
        assert_eq!(idx.distinct_count(), 2);
        assert_eq!(idx.entry_count(), 3);
    }

    #[test]
    fn nulls_are_not_indexed() {
        let idx = HashIndex::build(vec![Value::Null, Value::Null]);
        assert_eq!(idx.distinct_count(), 0);
        assert_eq!(idx.entry_count(), 0);
        assert!(!idx.contains(Value::Null));
    }

    #[test]
    fn offset_build_numbers_rows_globally() {
        let idx = HashIndex::build_offset(vec![Value::Int(5), Value::Int(5)], 10);
        assert_eq!(idx.get(Value::Int(5)), &[10, 11]);
    }

    #[test]
    fn groups_cover_all_values() {
        let idx = HashIndex::build(vec![Value::Int(1), Value::Int(2), Value::Int(1)]);
        let mut total = 0;
        for (_, rows) in idx.groups() {
            total += rows.len();
        }
        assert_eq!(total, 3);
    }

    #[test]
    fn table_index_merges_segment_parts_in_row_order() {
        let a = Arc::new(HashIndex::build_offset(
            vec![Value::Int(1), Value::Int(2), Value::Null],
            0,
        ));
        let b = Arc::new(HashIndex::build_offset(
            vec![Value::Int(2), Value::Int(3)],
            3,
        ));
        let idx = TableIndex::new(vec![a, b]);
        assert_eq!(idx.rows_of(Value::Int(2)).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(idx.rows_of(Value::Int(9)).count(), 0);
        assert_eq!(idx.rows_of(Value::Null).count(), 0);
        assert!(idx.contains(Value::Int(3)));
        assert!(!idx.contains(Value::Null));
        assert_eq!(idx.entry_count(), 4);
        assert_eq!(idx.distinct_count(), 3);
        let mut groups = idx.groups();
        groups.sort_by_key(|(v, _)| match v {
            Value::Int(i) => *i,
            _ => unreachable!(),
        });
        assert_eq!(
            groups,
            vec![
                (Value::Int(1), vec![0]),
                (Value::Int(2), vec![1, 3]),
                (Value::Int(3), vec![4]),
            ]
        );
    }
}
