//! Hash indexes over single columns.

use crate::table::RowId;
use crate::value::Value;
use std::collections::HashMap;

/// An equality index: value → row ids holding that value.
///
/// NULLs are excluded: SQL equi-joins never match NULL, so indexing them
/// would only waste memory.
#[derive(Debug, Default, Clone)]
pub struct HashIndex {
    map: HashMap<Value, Vec<RowId>>,
}

impl HashIndex {
    /// Builds an index from a column iterator (in row order).
    pub fn build<I: IntoIterator<Item = Value>>(column: I) -> Self {
        let mut map: HashMap<Value, Vec<RowId>> = HashMap::new();
        for (row, value) in column.into_iter().enumerate() {
            if value.is_null() {
                continue;
            }
            map.entry(value).or_default().push(row as RowId);
        }
        Self { map }
    }

    /// Row ids whose column equals `value` (never matches NULL).
    pub fn get(&self, value: Value) -> &[RowId] {
        self.map.get(&value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if any row holds `value`.
    pub fn contains(&self, value: Value) -> bool {
        !value.is_null() && self.map.contains_key(&value)
    }

    /// Number of distinct non-null values.
    pub fn distinct_count(&self) -> usize {
        self.map.len()
    }

    /// Iterate over `(value, row ids)` groups.
    pub fn groups(&self) -> impl Iterator<Item = (&Value, &[RowId])> {
        self.map.iter().map(|(v, rows)| (v, rows.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_groups_rows_by_value() {
        let idx = HashIndex::build(vec![
            Value::Int(7),
            Value::Int(8),
            Value::Int(7),
            Value::Null,
        ]);
        assert_eq!(idx.get(Value::Int(7)), &[0, 2]);
        assert_eq!(idx.get(Value::Int(8)), &[1]);
        assert_eq!(idx.get(Value::Int(9)), &[] as &[RowId]);
        assert_eq!(idx.distinct_count(), 2);
    }

    #[test]
    fn nulls_are_not_indexed() {
        let idx = HashIndex::build(vec![Value::Null, Value::Null]);
        assert_eq!(idx.distinct_count(), 0);
        assert!(!idx.contains(Value::Null));
    }

    #[test]
    fn groups_cover_all_values() {
        let idx = HashIndex::build(vec![Value::Int(1), Value::Int(2), Value::Int(1)]);
        let mut total = 0;
        for (_, rows) in idx.groups() {
            total += rows.len();
        }
        assert_eq!(total, 3);
    }
}
