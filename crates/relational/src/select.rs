//! Simple single-table selection, for application-level queries
//! (e.g. "all log rows for patient 42" in the patient portal).

use crate::chain::CmpOp;
use crate::database::{Database, TableId};
use crate::table::RowId;
use crate::types::ColId;
use crate::value::Value;

/// A conjunctive single-table filter.
///
/// The first equality predicate (if any) is served from a hash index; the
/// rest are applied as residual filters.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    predicates: Vec<(ColId, CmpOp, Value)>,
}

impl Selection {
    /// An empty (all-rows) selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `col op value` to the conjunction.
    pub fn and(mut self, col: ColId, op: CmpOp, value: Value) -> Self {
        self.predicates.push((col, op, value));
        self
    }

    /// Adds an equality predicate.
    pub fn and_eq(self, col: ColId, value: Value) -> Self {
        self.and(col, CmpOp::Eq, value)
    }

    /// Evaluates the selection, returning matching row ids in row order.
    pub fn run(&self, db: &Database, table: TableId) -> Vec<RowId> {
        let t = db.table(table);
        // Pick the first equality predicate as the index probe.
        let probe = self
            .predicates
            .iter()
            .position(|(_, op, v)| *op == CmpOp::Eq && !v.is_null());
        let residual = |rid: RowId| {
            let row = t.row(rid);
            self.predicates
                .iter()
                .enumerate()
                .filter(|(i, _)| Some(*i) != probe)
                .all(|(_, (col, op, v))| op.eval(&row[*col], v))
        };
        match probe {
            Some(i) => {
                let (col, _, v) = self.predicates[i];
                let mut rows = t.rows_with(col, v);
                rows.retain(|&r| residual(r));
                rows
            }
            None => t
                .iter()
                .filter(|(rid, _)| residual(*rid))
                .map(|(rid, _)| rid)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn db() -> (Database, TableId) {
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("Date", DataType::Date),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        for (lid, date, user, patient) in [
            (1, 10, 7, 42),
            (2, 20, 8, 42),
            (3, 30, 7, 43),
            (4, 40, 7, 42),
        ] {
            db.insert(
                log,
                vec![
                    Value::Int(lid),
                    Value::Date(date),
                    Value::Int(user),
                    Value::Int(patient),
                ],
            )
            .unwrap();
        }
        (db, log)
    }

    #[test]
    fn equality_probe_uses_index() {
        let (db, log) = db();
        let rows = Selection::new().and_eq(3, Value::Int(42)).run(&db, log);
        assert_eq!(rows, vec![0, 1, 3]);
    }

    #[test]
    fn conjunction_applies_residual_filters() {
        let (db, log) = db();
        let rows = Selection::new()
            .and_eq(3, Value::Int(42))
            .and_eq(2, Value::Int(7))
            .run(&db, log);
        assert_eq!(rows, vec![0, 3]);
    }

    #[test]
    fn range_only_selection_scans() {
        let (db, log) = db();
        let rows = Selection::new()
            .and(1, CmpOp::Gt, Value::Date(15))
            .run(&db, log);
        assert_eq!(rows, vec![1, 2, 3]);
    }

    #[test]
    fn empty_selection_returns_everything() {
        let (db, log) = db();
        assert_eq!(Selection::new().run(&db, log).len(), 4);
    }
}
