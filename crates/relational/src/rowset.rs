//! Compressed row-id sets: a Roaring-style chunked bitmap over `u32` row
//! ids.
//!
//! The audit layer's central artifacts are *sets of log rows* — the rows a
//! template suite explains, the anchor rows under audit, their difference
//! (the unexplained residue). Historically those flowed around as sorted
//! `Vec<u32>`s and `HashSet<u32>`s, re-sorted and re-hashed at every
//! layer. A [`RowSet`] stores the same sets in the two-level layout
//! popularized by Roaring bitmaps:
//!
//! * rows are partitioned by their **high 16 bits** (`row >> 16`) into
//!   containers of up to 65 536 consecutive ids;
//! * a sparse container is a sorted `Vec<u16>` of the low bits (an
//!   **array** container); once it would exceed [`ARRAY_MAX`] entries it
//!   is promoted to a 1024-word **bitmap** container (8 KiB, one bit per
//!   possible low value). A bitmap container whose population falls back
//!   to [`ARRAY_MAX`] or below demotes on the next mutation that shrinks
//!   it.
//!
//! The break-even point is the classic one: an array of N `u16`s costs
//! `2N` bytes, the bitmap costs 8192 bytes, so arrays win below ~4096
//! elements and bitmaps win above.
//!
//! Set algebra ([`union_with`](RowSet::union_with),
//! [`intersect`](RowSet::intersect), [`difference`](RowSet::difference))
//! works container-by-container — word-wise `|`/`&`/`&!` when both sides
//! are bitmaps — and union is **associative and commutative**, which is
//! what makes a `RowSet` the natural scatter-gather payload: each shard
//! returns its explained rows as a bitmap over global ids and the
//! coordinator folds them together in any order
//! ([`RowSet::union_all`]).
//!
//! Iteration ([`iter`](RowSet::iter)) yields rows in ascending order, so
//! converting to the legacy sorted-`Vec<u32>` form
//! ([`to_vec`](RowSet::to_vec)) needs no sort, and a set built from rows
//! inserted in *any* order still reads out sorted — the fused suite
//! evaluator exploits this by emitting rows in group-iteration order.
//! [`rank`](RowSet::rank) (how many set rows are `< row`) is a popcount
//! walk, giving day-bucketing and pagination a counting primitive that
//! never materializes the set.

/// Array containers hold at most this many entries; the 4096-element
/// break-even point of `2 bytes/entry` array vs fixed 8 KiB bitmap.
pub const ARRAY_MAX: usize = 4096;

/// Words in a bitmap container: 65 536 bits.
const BITMAP_WORDS: usize = 1024;

/// One container: the low 16 bits of every row sharing a high half.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Container {
    /// Sorted, deduplicated low halves; `len <= ARRAY_MAX`.
    Array(Vec<u16>),
    /// One bit per possible low half, plus the cached population count.
    Bitmap {
        words: Box<[u64; BITMAP_WORDS]>,
        len: u32,
    },
}

impl Container {
    fn len(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitmap { len, .. } => *len as usize,
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(v) => v.binary_search(&low).is_ok(),
            Container::Bitmap { words, .. } => words[low as usize / 64] & (1u64 << (low % 64)) != 0,
        }
    }

    /// Inserts `low`; returns true when it was new. Promotes to a bitmap
    /// when the array form would exceed [`ARRAY_MAX`].
    fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    if v.len() == ARRAY_MAX {
                        let mut words = Box::new([0u64; BITMAP_WORDS]);
                        for &x in v.iter() {
                            words[x as usize / 64] |= 1u64 << (x % 64);
                        }
                        words[low as usize / 64] |= 1u64 << (low % 64);
                        *self = Container::Bitmap {
                            words,
                            len: ARRAY_MAX as u32 + 1,
                        };
                        true
                    } else {
                        v.insert(pos, low);
                        true
                    }
                }
            },
            Container::Bitmap { words, len } => {
                let (w, bit) = (low as usize / 64, 1u64 << (low % 64));
                if words[w] & bit != 0 {
                    false
                } else {
                    words[w] |= bit;
                    *len += 1;
                    true
                }
            }
        }
    }

    /// Number of entries strictly below `low`.
    fn rank_below(&self, low: u16) -> usize {
        match self {
            Container::Array(v) => v.partition_point(|&x| x < low),
            Container::Bitmap { words, .. } => {
                let (w, b) = (low as usize / 64, low as usize % 64);
                let mut count = words[..w].iter().map(|x| x.count_ones() as usize).sum();
                if b > 0 {
                    count += (words[w] & ((1u64 << b) - 1)).count_ones() as usize;
                }
                count
            }
        }
    }

    fn to_bitmap_words(&self) -> Box<[u64; BITMAP_WORDS]> {
        match self {
            Container::Array(v) => {
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                for &x in v.iter() {
                    words[x as usize / 64] |= 1u64 << (x % 64);
                }
                words
            }
            Container::Bitmap { words, .. } => words.clone(),
        }
    }

    /// Demotes a bitmap back to an array when it fits, so `difference`
    /// and `intersect` results use the compact form the population
    /// calls for.
    fn normalize(self) -> Container {
        match self {
            Container::Bitmap { ref words, len } if (len as usize) <= ARRAY_MAX => {
                let mut v = Vec::with_capacity(len as usize);
                for (w, &word) in words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        v.push((w * 64 + b as usize) as u16);
                        bits &= bits - 1;
                    }
                }
                Container::Array(v)
            }
            other => other,
        }
    }

    /// In-place union with `other`.
    fn union_with(&mut self, other: &Container) {
        match (&mut *self, other) {
            (Container::Bitmap { words, len }, Container::Bitmap { words: ow, .. }) => {
                let mut n = 0u32;
                for (a, b) in words.iter_mut().zip(ow.iter()) {
                    *a |= *b;
                    n += a.count_ones();
                }
                *len = n;
            }
            (Container::Bitmap { words, len }, Container::Array(ov)) => {
                for &x in ov.iter() {
                    let (w, bit) = (x as usize / 64, 1u64 << (x % 64));
                    if words[w] & bit == 0 {
                        words[w] |= bit;
                        *len += 1;
                    }
                }
            }
            (Container::Array(v), Container::Array(ov)) => {
                if v.len() + ov.len() <= ARRAY_MAX {
                    // Merge two sorted arrays; stays an array.
                    let mut merged = Vec::with_capacity(v.len() + ov.len());
                    let (mut i, mut j) = (0, 0);
                    while i < v.len() && j < ov.len() {
                        match v[i].cmp(&ov[j]) {
                            std::cmp::Ordering::Less => {
                                merged.push(v[i]);
                                i += 1;
                            }
                            std::cmp::Ordering::Greater => {
                                merged.push(ov[j]);
                                j += 1;
                            }
                            std::cmp::Ordering::Equal => {
                                merged.push(v[i]);
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    merged.extend_from_slice(&v[i..]);
                    merged.extend_from_slice(&ov[j..]);
                    *v = merged;
                } else {
                    // Could exceed ARRAY_MAX: go through the bitmap form
                    // (normalize demotes if the merge stayed small).
                    let mut words = Box::new([0u64; BITMAP_WORDS]);
                    for &x in v.iter() {
                        words[x as usize / 64] |= 1u64 << (x % 64);
                    }
                    let mut len = v.len() as u32;
                    for &x in ov.iter() {
                        let (w, bit) = (x as usize / 64, 1u64 << (x % 64));
                        if words[w] & bit == 0 {
                            words[w] |= bit;
                            len += 1;
                        }
                    }
                    *self = Container::Bitmap { words, len }.normalize();
                }
            }
            (a @ Container::Array(_), Container::Bitmap { .. }) => {
                let arr = std::mem::replace(a, Container::Array(Vec::new()));
                let mut merged = Container::Bitmap {
                    words: other.to_bitmap_words(),
                    len: other.len() as u32,
                };
                merged.union_with(&arr);
                *a = merged;
            }
        }
    }

    /// `self ∩ other` (normalized).
    fn intersect(&self, other: &Container) -> Option<Container> {
        let out = match (self, other) {
            (Container::Bitmap { words: a, .. }, Container::Bitmap { words: b, .. }) => {
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                let mut len = 0u32;
                for (o, (&x, &y)) in words.iter_mut().zip(a.iter().zip(b.iter())) {
                    *o = x & y;
                    len += o.count_ones();
                }
                Container::Bitmap { words, len }.normalize()
            }
            (Container::Array(v), b) => {
                Container::Array(v.iter().copied().filter(|&x| b.contains(x)).collect())
            }
            (a @ Container::Bitmap { .. }, Container::Array(v)) => {
                Container::Array(v.iter().copied().filter(|&x| a.contains(x)).collect())
            }
        };
        (out.len() > 0).then_some(out)
    }

    /// `self \ other` (normalized).
    fn difference(&self, other: &Container) -> Option<Container> {
        let out = match (self, other) {
            (Container::Bitmap { words: a, .. }, Container::Bitmap { words: b, .. }) => {
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                let mut len = 0u32;
                for (o, (&x, &y)) in words.iter_mut().zip(a.iter().zip(b.iter())) {
                    *o = x & !y;
                    len += o.count_ones();
                }
                Container::Bitmap { words, len }.normalize()
            }
            (Container::Array(v), b) => {
                Container::Array(v.iter().copied().filter(|&x| !b.contains(x)).collect())
            }
            (a @ Container::Bitmap { .. }, Container::Array(v)) => {
                let mut words = a.to_bitmap_words();
                let mut len = a.len() as u32;
                for &x in v.iter() {
                    let (w, bit) = (x as usize / 64, 1u64 << (x % 64));
                    if words[w] & bit != 0 {
                        words[w] &= !bit;
                        len -= 1;
                    }
                }
                Container::Bitmap { words, len }.normalize()
            }
        };
        (out.len() > 0).then_some(out)
    }

    fn iter(&self) -> ContainerIter<'_> {
        match self {
            Container::Array(v) => ContainerIter::Array(v.iter()),
            Container::Bitmap { words, .. } => ContainerIter::Bitmap {
                words,
                word_idx: 0,
                bits: words[0],
            },
        }
    }

    /// Ascending iteration over the entries `>= low`.
    fn iter_from(&self, low: u16) -> ContainerIter<'_> {
        match self {
            Container::Array(v) => {
                ContainerIter::Array(v[v.partition_point(|&x| x < low)..].iter())
            }
            Container::Bitmap { words, .. } => {
                let (w, b) = (low as usize / 64, low as usize % 64);
                ContainerIter::Bitmap {
                    words,
                    word_idx: w,
                    bits: words[w] & (u64::MAX << b),
                }
            }
        }
    }

    /// `|self ∩ other|` without materializing the intersection.
    fn intersect_len(&self, other: &Container) -> usize {
        match (self, other) {
            (Container::Bitmap { words: a, .. }, Container::Bitmap { words: b, .. }) => a
                .iter()
                .zip(b.iter())
                .map(|(&x, &y)| (x & y).count_ones() as usize)
                .sum(),
            (Container::Array(v), b) => v.iter().filter(|&&x| b.contains(x)).count(),
            (a @ Container::Bitmap { .. }, Container::Array(v)) => {
                v.iter().filter(|&&x| a.contains(x)).count()
            }
        }
    }
}

enum ContainerIter<'a> {
    Array(std::slice::Iter<'a, u16>),
    Bitmap {
        words: &'a [u64; BITMAP_WORDS],
        word_idx: usize,
        bits: u64,
    },
}

impl Iterator for ContainerIter<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        match self {
            ContainerIter::Array(it) => it.next().copied(),
            ContainerIter::Bitmap {
                words,
                word_idx,
                bits,
            } => loop {
                if *bits != 0 {
                    let b = bits.trailing_zeros();
                    *bits &= *bits - 1;
                    return Some((*word_idx * 64 + b as usize) as u16);
                }
                if *word_idx + 1 >= BITMAP_WORDS {
                    return None;
                }
                *word_idx += 1;
                *bits = words[*word_idx];
            },
        }
    }
}

/// A compressed set of `u32` row ids. See the module docs for the
/// container layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowSet {
    /// `(high half, container)`, sorted by high half, no empty containers.
    containers: Vec<(u16, Container)>,
}

impl RowSet {
    /// The empty set.
    pub fn new() -> RowSet {
        RowSet::default()
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        self.containers.iter().map(|(_, c)| c.len()).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    /// Index of the container for `high`, or where to insert one.
    #[inline]
    fn find(&self, high: u16) -> std::result::Result<usize, usize> {
        self.containers.binary_search_by_key(&high, |(h, _)| *h)
    }

    /// Inserts `row`; returns true when it was not already present.
    pub fn insert(&mut self, row: u32) -> bool {
        let (high, low) = ((row >> 16) as u16, row as u16);
        match self.find(high) {
            Ok(i) => self.containers[i].1.insert(low),
            Err(i) => {
                self.containers
                    .insert(i, (high, Container::Array(vec![low])));
                true
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, row: u32) -> bool {
        match self.find((row >> 16) as u16) {
            Ok(i) => self.containers[i].1.contains(row as u16),
            Err(_) => false,
        }
    }

    /// Number of set rows strictly less than `row` — the set's sorted
    /// position of `row`. `rank(u32::MAX)` plus membership of `u32::MAX`
    /// recovers `len()`.
    pub fn rank(&self, row: u32) -> usize {
        let (high, low) = ((row >> 16) as u16, row as u16);
        match self.find(high) {
            Ok(i) => {
                let below: usize = self.containers[..i].iter().map(|(_, c)| c.len()).sum();
                below + self.containers[i].1.rank_below(low)
            }
            Err(i) => self.containers[..i].iter().map(|(_, c)| c.len()).sum(),
        }
    }

    /// In-place union: `self ∪= other`. Associative and commutative
    /// across any fold order, which is what makes per-shard row sets
    /// safely mergeable at the scatter-gather seam.
    pub fn union_with(&mut self, other: &RowSet) {
        for (high, oc) in &other.containers {
            match self.find(*high) {
                Ok(i) => self.containers[i].1.union_with(oc),
                Err(i) => self.containers.insert(i, (*high, oc.clone())),
            }
        }
    }

    /// Folds any number of sets into one (associative merge).
    pub fn union_all<I: IntoIterator<Item = RowSet>>(sets: I) -> RowSet {
        let mut iter = sets.into_iter();
        let mut acc = iter.next().unwrap_or_default();
        for s in iter {
            // Merge the smaller into the larger.
            if s.len() > acc.len() {
                let mut s = s;
                s.union_with(&acc);
                acc = s;
            } else {
                acc.union_with(&s);
            }
        }
        acc
    }

    /// `self ∩ other` as a new set.
    pub fn intersect(&self, other: &RowSet) -> RowSet {
        let mut out = Vec::new();
        for (high, c) in &self.containers {
            if let Ok(j) = other.find(*high) {
                if let Some(r) = c.intersect(&other.containers[j].1) {
                    out.push((*high, r));
                }
            }
        }
        RowSet { containers: out }
    }

    /// `self \ other` as a new set.
    pub fn difference(&self, other: &RowSet) -> RowSet {
        let mut out = Vec::new();
        for (high, c) in &self.containers {
            match other.find(*high) {
                Ok(j) => {
                    if let Some(r) = c.difference(&other.containers[j].1) {
                        out.push((*high, r));
                    }
                }
                Err(_) => out.push((*high, c.clone())),
            }
        }
        RowSet { containers: out }
    }

    /// Ascending iteration over the rows.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.containers.iter().flat_map(|(high, c)| {
            let base = (*high as u32) << 16;
            c.iter().map(move |low| base | low as u32)
        })
    }

    /// Ascending iteration over the rows `>= row` (inclusive). This is
    /// the pagination primitive: a listing that resumes "after cursor
    /// `c`" is `iter_from(c + 1)` — containers wholly below the cursor
    /// are skipped by binary search, never walked, so emitting a page
    /// costs the page, not the prefix.
    pub fn iter_from(&self, row: u32) -> impl Iterator<Item = u32> + '_ {
        let (high, low) = ((row >> 16) as u16, row as u16);
        let start = match self.find(high) {
            Ok(i) | Err(i) => i,
        };
        self.containers[start..].iter().flat_map(move |(h, c)| {
            let base = (*h as u32) << 16;
            let it = if *h == high {
                c.iter_from(low)
            } else {
                c.iter()
            };
            it.map(move |l| base | l as u32)
        })
    }

    /// `|self ∩ other|` without materializing the intersection — the
    /// timeline's counting primitive (a day bucket's explained count is
    /// an intersection cardinality, not a set), word-wise popcounts when
    /// both sides hold bitmap containers.
    pub fn intersect_len(&self, other: &RowSet) -> usize {
        let mut n = 0;
        for (high, c) in &self.containers {
            if let Ok(j) = other.find(*high) {
                n += c.intersect_len(&other.containers[j].1);
            }
        }
        n
    }

    /// Builds from an ascending sorted, deduplicated `Vec<u32>` (the
    /// legacy row-list form) without per-element binary searches.
    pub fn from_sorted_vec(rows: &[u32]) -> RowSet {
        let mut containers: Vec<(u16, Container)> = Vec::new();
        let mut i = 0;
        while i < rows.len() {
            let high = (rows[i] >> 16) as u16;
            let end = rows[i..].partition_point(|&r| (r >> 16) as u16 == high) + i;
            let lows: Vec<u16> = rows[i..end].iter().map(|&r| r as u16).collect();
            let container = if lows.len() > ARRAY_MAX {
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                for &x in &lows {
                    words[x as usize / 64] |= 1u64 << (x % 64);
                }
                Container::Bitmap {
                    words,
                    len: lows.len() as u32,
                }
            } else {
                Container::Array(lows)
            };
            containers.push((high, container));
            i = end;
        }
        RowSet { containers }
    }

    /// The set as the legacy ascending `Vec<u32>` (no sort needed —
    /// iteration is already ordered).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.iter());
        out
    }

    /// How many containers currently use the bitmap form (diagnostics
    /// and tests).
    pub fn bitmap_containers(&self) -> usize {
        self.containers
            .iter()
            .filter(|(_, c)| matches!(c, Container::Bitmap { .. }))
            .count()
    }
}

impl FromIterator<u32> for RowSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> RowSet {
        let mut set = RowSet::new();
        for row in iter {
            set.insert(row);
        }
        set
    }
}

impl Extend<u32> for RowSet {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for row in iter {
            self.insert(row);
        }
    }
}

impl<'a> IntoIterator for &'a RowSet {
    type Item = u32;
    type IntoIter = Box<dyn Iterator<Item = u32> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random rows (xorshift).
    fn pseudo_rows(seed: u64, n: usize, span: u32) -> Vec<u32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % span as u64) as u32
            })
            .collect()
    }

    fn sorted_dedup(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn insert_contains_len_roundtrip() {
        let rows = pseudo_rows(7, 10_000, 1 << 20);
        let set: RowSet = rows.iter().copied().collect();
        let expect = sorted_dedup(rows.clone());
        assert_eq!(set.len(), expect.len());
        assert_eq!(set.to_vec(), expect);
        for &r in expect.iter().take(100) {
            assert!(set.contains(r));
        }
        assert!(!set.contains((1 << 20) + 5));
    }

    #[test]
    fn arrays_promote_to_bitmaps_past_the_threshold() {
        // Dense rows in one 64K chunk: must promote exactly once past
        // ARRAY_MAX entries.
        let mut set = RowSet::new();
        for r in 0..ARRAY_MAX as u32 {
            set.insert(r * 2); // spread within the first chunk
        }
        assert_eq!(set.bitmap_containers(), 0, "at the threshold: still array");
        set.insert(1); // odd, not yet present
        assert_eq!(set.bitmap_containers(), 1, "past the threshold: bitmap");
        assert_eq!(set.len(), ARRAY_MAX + 1);
        // Round-trips unchanged.
        assert_eq!(set.to_vec().len(), set.len());
        assert!(set.contains(1) && set.contains(0) && !set.contains(3));
    }

    #[test]
    fn from_sorted_vec_matches_insertion_and_picks_bitmaps() {
        let dense: Vec<u32> = (0..30_000).map(|i| i * 2).collect();
        let set = RowSet::from_sorted_vec(&dense);
        let inserted: RowSet = dense.iter().copied().collect();
        assert_eq!(set.to_vec(), dense);
        assert_eq!(set, inserted);
        assert!(set.bitmap_containers() > 0);
    }

    #[test]
    fn union_matches_reference_and_is_associative() {
        let a = pseudo_rows(3, 6000, 1 << 18);
        let b = pseudo_rows(11, 6000, 1 << 18);
        let c = pseudo_rows(19, 600, 1 << 22);
        let sets: Vec<RowSet> = [&a, &b, &c]
            .iter()
            .map(|v| v.iter().copied().collect())
            .collect();
        let mut expect = a.clone();
        expect.extend(&b);
        expect.extend(&c);
        let expect = sorted_dedup(expect);

        // Every fold order gives the same result.
        let left = RowSet::union_all(sets.clone());
        let right = RowSet::union_all(sets.iter().rev().cloned());
        let mut pair = sets[2].clone();
        pair.union_with(&sets[0]);
        pair.union_with(&sets[1]);
        assert_eq!(left.to_vec(), expect);
        assert_eq!(right.to_vec(), expect);
        assert_eq!(pair.to_vec(), expect);
    }

    #[test]
    fn intersect_and_difference_match_reference() {
        let a = sorted_dedup(pseudo_rows(5, 8000, 1 << 17));
        let b = sorted_dedup(pseudo_rows(9, 8000, 1 << 17));
        let sa: RowSet = a.iter().copied().collect();
        let sb: RowSet = b.iter().copied().collect();
        let bset: std::collections::HashSet<u32> = b.iter().copied().collect();
        let inter: Vec<u32> = a.iter().copied().filter(|r| bset.contains(r)).collect();
        let diff: Vec<u32> = a.iter().copied().filter(|r| !bset.contains(r)).collect();
        assert_eq!(sa.intersect(&sb).to_vec(), inter);
        assert_eq!(sa.difference(&sb).to_vec(), diff);
        // Difference against self is empty; intersect with self is identity.
        assert!(sa.difference(&sa).is_empty());
        assert_eq!(sa.intersect(&sa).to_vec(), a);
    }

    #[test]
    fn dense_difference_demotes_back_to_arrays() {
        let dense: Vec<u32> = (0..10_000).collect();
        let most: Vec<u32> = (0..9_000).collect();
        let sd = RowSet::from_sorted_vec(&dense);
        let sm = RowSet::from_sorted_vec(&most);
        let diff = sd.difference(&sm);
        assert_eq!(diff.to_vec(), (9_000..10_000).collect::<Vec<u32>>());
        assert_eq!(diff.bitmap_containers(), 0, "1000 rows fit an array");
    }

    #[test]
    fn rank_counts_rows_below() {
        let rows = sorted_dedup(pseudo_rows(13, 5000, 1 << 19));
        let set: RowSet = rows.iter().copied().collect();
        assert_eq!(set.rank(0), 0);
        for &probe in &[1u32, 100, 65_535, 65_536, 70_000, 1 << 18, u32::MAX] {
            let expect = rows.partition_point(|&r| r < probe);
            assert_eq!(set.rank(probe), expect, "rank({probe})");
        }
        // rank of a present element equals its index.
        for (i, &r) in rows.iter().enumerate().step_by(997) {
            assert_eq!(set.rank(r), i);
        }
    }

    #[test]
    fn iter_from_resumes_anywhere() {
        // Mixed forms: a dense (bitmap) chunk and sparse (array) chunks.
        let mut rows = sorted_dedup(pseudo_rows(21, 9000, 1 << 17));
        rows.extend(200_000..201_000);
        let rows = sorted_dedup(rows);
        let set = RowSet::from_sorted_vec(&rows);
        for &probe in &[
            0u32,
            1,
            63,
            64,
            65_535,
            65_536,
            70_000,
            199_999,
            200_500,
            1 << 21,
        ] {
            let expect: Vec<u32> = rows.iter().copied().filter(|&r| r >= probe).collect();
            assert_eq!(
                set.iter_from(probe).collect::<Vec<u32>>(),
                expect,
                "iter_from({probe})"
            );
        }
        // Resuming after a present element yields exactly the suffix —
        // the pagination cursor contract.
        for (i, &r) in rows.iter().enumerate().step_by(1231) {
            assert_eq!(set.iter_from(r + 1).collect::<Vec<u32>>(), rows[i + 1..]);
        }
        assert_eq!(set.iter_from(0).collect::<Vec<u32>>(), rows);
    }

    #[test]
    fn intersect_len_matches_materialized_intersection() {
        let a = sorted_dedup(pseudo_rows(5, 8000, 1 << 17));
        let b = sorted_dedup(pseudo_rows(9, 8000, 1 << 17));
        let dense: Vec<u32> = (0..20_000).collect();
        for (x, y) in [(&a, &b), (&a, &dense), (&dense, &a), (&dense, &dense)] {
            let sx = RowSet::from_sorted_vec(x);
            let sy = RowSet::from_sorted_vec(y);
            assert_eq!(sx.intersect_len(&sy), sx.intersect(&sy).len());
            assert_eq!(sy.intersect_len(&sx), sx.intersect_len(&sy));
        }
        assert_eq!(RowSet::new().intersect_len(&RowSet::from_sorted_vec(&a)), 0);
    }

    #[test]
    fn empty_set_behaves() {
        let empty = RowSet::new();
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.to_vec(), Vec::<u32>::new());
        assert_eq!(empty.rank(123), 0);
        assert!(!empty.contains(0));
        assert!(empty.difference(&empty).is_empty());
        assert!(empty.intersect(&empty).is_empty());
        assert_eq!(RowSet::union_all(Vec::new()), empty);
        let full: RowSet = (0..10u32).collect();
        assert_eq!(full.difference(&empty).to_vec(), full.to_vec());
        assert!(empty.difference(&full).is_empty());
    }

    #[test]
    fn cross_form_unions_mix_arrays_and_bitmaps() {
        // One side dense (bitmap), one sparse (array), in the same chunk.
        let dense: Vec<u32> = (0..20_000).map(|i| i * 3).collect();
        let sparse: Vec<u32> = (0..50).map(|i| i * 1000 + 1).collect();
        let sd = RowSet::from_sorted_vec(&dense);
        let ss = RowSet::from_sorted_vec(&sparse);
        let mut expect = dense.clone();
        expect.extend(&sparse);
        let expect = sorted_dedup(expect);
        let mut u1 = sd.clone();
        u1.union_with(&ss);
        let mut u2 = ss.clone();
        u2.union_with(&sd);
        assert_eq!(u1.to_vec(), expect);
        assert_eq!(u2.to_vec(), expect);
    }
}
