//! Table and column statistics for cardinality estimation.
//!
//! The paper's third mining optimization ("skipping non-selective paths",
//! §3.2.1) asks the *database optimizer* for the expected number of log ids
//! in a path query's result and skips support evaluation when the estimate
//! comfortably exceeds the support threshold. These statistics are what our
//! estimator consults — the same row-count / distinct-count summaries a
//! System-R style optimizer keeps.

use crate::table::Table;
use crate::types::ColId;

/// Summary statistics for one column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Total rows in the table.
    pub row_count: usize,
    /// Rows with a non-null value in this column.
    pub non_null_count: usize,
    /// Distinct non-null values.
    pub distinct_count: usize,
}

impl ColumnStats {
    /// Computes statistics by scanning the table's index for `col`.
    pub fn compute(table: &Table, col: ColId) -> Self {
        let idx = table.index(col);
        ColumnStats {
            row_count: table.len(),
            non_null_count: idx.entry_count(),
            distinct_count: idx.distinct_count(),
        }
    }

    /// Average number of rows per distinct value ("fan-out" of an equi-join
    /// probe that finds a match). Zero for an empty column.
    pub fn avg_fanout(&self) -> f64 {
        if self.distinct_count == 0 {
            0.0
        } else {
            self.non_null_count as f64 / self.distinct_count as f64
        }
    }

    /// Probability that a value drawn uniformly from a domain of
    /// `domain_size` distinct values appears in this column, under the
    /// standard containment assumption (the smaller distinct set is contained
    /// in the larger).
    pub fn containment_match_prob(&self, domain_size: usize) -> f64 {
        if domain_size == 0 {
            return 0.0;
        }
        let d = self.distinct_count as f64;
        (d / domain_size as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DataType, TableSchema};
    use crate::value::Value;

    fn table_with(col_values: &[Option<i64>]) -> Table {
        let mut t = Table::new(TableSchema::new("T", &[("A", DataType::Int)]));
        for v in col_values {
            let cell = match v {
                Some(i) => Value::Int(*i),
                None => Value::Null,
            };
            t.insert(vec![cell]).unwrap();
        }
        t
    }

    #[test]
    fn compute_counts() {
        let t = table_with(&[Some(1), Some(1), Some(2), None]);
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.row_count, 4);
        assert_eq!(s.non_null_count, 3);
        assert_eq!(s.distinct_count, 2);
    }

    #[test]
    fn fanout_is_rows_per_distinct() {
        let t = table_with(&[Some(1), Some(1), Some(1), Some(2)]);
        let s = ColumnStats::compute(&t, 0);
        assert!((s.avg_fanout() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fanout_of_empty_column_is_zero() {
        let t = table_with(&[None, None]);
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.avg_fanout(), 0.0);
    }

    #[test]
    fn containment_probability_caps_at_one() {
        let t = table_with(&[Some(1), Some(2), Some(3)]);
        let s = ColumnStats::compute(&t, 0);
        assert!((s.containment_match_prob(6) - 0.5).abs() < 1e-12);
        assert_eq!(s.containment_match_prob(2), 1.0);
        assert_eq!(s.containment_match_prob(0), 0.0);
    }
}
