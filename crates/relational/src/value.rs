//! Scalar values.

use crate::pool::{StringPool, Symbol};
use crate::types::DataType;
use std::cmp::Ordering;
use std::fmt;

/// A scalar value stored in a table cell.
///
/// `Value` is deliberately small and `Copy`: strings are interned
/// ([`Symbol`]) and dates are stored as an integer number of minutes since
/// an arbitrary epoch (the access logs the paper studies have minute
/// resolution timestamps, e.g. `Mon Jan 03 10:16:57 2010`). Being `Copy`
/// with no interior mutability is also what lets sealed storage segments
/// ([`crate::segment::SegVec`]) be shared immutably across epochs: a cell
/// can be handed to any thread by memcpy and can never change under a
/// reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL. Per SQL semantics, NULL never equi-joins with anything,
    /// including another NULL.
    Null,
    /// 64-bit integer (ids, counts).
    Int(i64),
    /// Interned string (codes, names).
    Str(Symbol),
    /// Timestamp in minutes since the data-set epoch.
    Date(i64),
}

impl Value {
    /// The value's runtime type, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int(_) => "Int",
            Value::Str(_) => "Str",
            Value::Date(_) => "Date",
        }
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL equality: NULL is not equal to anything (three-valued logic
    /// collapsed to `false`, which is what a `WHERE` clause does).
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self == other
    }

    /// SQL ordering comparison; returns `None` when either side is NULL or
    /// the types are not comparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Renders the value for humans, resolving strings through `pool`.
    pub fn display<'a>(&'a self, pool: &'a StringPool) -> ValueDisplay<'a> {
        ValueDisplay { value: self, pool }
    }
}

/// Helper returned by [`Value::display`].
pub struct ValueDisplay<'a> {
    value: &'a Value,
    pool: &'a StringPool,
}

impl fmt::Display for ValueDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{}", self.pool.resolve(*s)),
            Value::Date(m) => {
                // Render minutes-since-epoch as `day N hh:mm` for readability.
                let day = m.div_euclid(60 * 24);
                let rem = m.rem_euclid(60 * 24);
                let (h, min) = (rem / 60, rem % 60);
                write!(f, "day {day} {h:02}:{min:02}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<Symbol> for Value {
    fn from(v: Symbol) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_never_equals() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
        assert!(!Value::Int(1).sql_eq(&Value::Null));
    }

    #[test]
    fn eq_respects_type() {
        assert!(Value::Int(3).sql_eq(&Value::Int(3)));
        assert!(!Value::Int(3).sql_eq(&Value::Date(3)));
        assert!(!Value::Int(3).sql_eq(&Value::Int(4)));
    }

    #[test]
    fn cmp_only_within_type() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Date(5).sql_cmp(&Value::Date(5)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Int(1).sql_cmp(&Value::Date(2)), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn display_date_breaks_into_days() {
        let pool = StringPool::new();
        let v = Value::Date(3 * 24 * 60 + 10 * 60 + 17);
        assert_eq!(v.display(&pool).to_string(), "day 3 10:17");
    }

    #[test]
    fn display_str_resolves() {
        let mut pool = StringPool::new();
        let s = pool.intern("Dr. Dave");
        assert_eq!(Value::Str(s).display(&pool).to_string(), "Dr. Dave");
        assert_eq!(Value::Null.display(&pool).to_string(), "NULL");
    }

    #[test]
    fn data_type_matches_variant() {
        assert_eq!(Value::Int(0).data_type(), Some(DataType::Int));
        assert_eq!(Value::Date(0).data_type(), Some(DataType::Date));
        assert_eq!(Value::Null.data_type(), None);
    }
}
