//! Row storage.

use crate::error::{Error, Result};
use crate::index::HashIndex;
use crate::sync::unpoison;
use crate::types::{ColId, TableSchema};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A row is a boxed slice of values, one per schema column.
pub type Row = Box<[Value]>;

/// Index of a row within its table.
pub type RowId = u32;

/// A heap of rows plus lazily-built per-column hash indexes.
///
/// Tables are append-only: the auditing workload never updates or deletes
/// (access logs are immutable by design), which keeps indexes valid once
/// built. The index cache sits behind a poison-tolerant `RwLock` so that
/// read-only query evaluation (`&Table`) can populate it from any thread —
/// a pinned [`Epoch`](crate::engine::Epoch) is read concurrently by every
/// auditing session that loaded it.
#[derive(Debug)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
    /// Lazily built hash indexes, one per column; entries are immutable
    /// once inserted (shared via `Arc`), so recovering a poisoned guard is
    /// always safe.
    indexes: RwLock<HashMap<ColId, Arc<HashIndex>>>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            // Index objects are immutable; the clone shares them until its
            // own inserts invalidate its copy of the cache.
            indexes: RwLock::new(unpoison(self.indexes.read()).clone()),
        }
    }
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            indexes: RwLock::new(HashMap::new()),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validates and appends a row. Invalidates cached indexes.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId> {
        if values.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            if let Some(dt) = v.data_type() {
                if dt != self.schema.col_type(i) {
                    return Err(Error::TypeMismatch {
                        table: self.schema.name.clone(),
                        column: self.schema.col_name(i).to_string(),
                        expected: self.schema.col_type(i).name(),
                        got: v.type_name(),
                    });
                }
            }
        }
        let id = u32::try_from(self.rows.len()).expect("more than u32::MAX rows");
        self.rows.push(values.into_boxed_slice());
        unpoison(self.indexes.write()).clear();
        Ok(id)
    }

    /// Bulk insert; stops at the first invalid row.
    pub fn insert_all<I: IntoIterator<Item = Vec<Value>>>(&mut self, rows: I) -> Result<()> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Borrow a row by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn row(&self, id: RowId) -> &[Value] {
        &self.rows[id as usize]
    }

    /// A single cell.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn cell(&self, id: RowId, col: ColId) -> Value {
        self.rows[id as usize][col]
    }

    /// Iterate over `(RowId, &row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, r)| (i as RowId, r.as_ref()))
    }

    /// Returns (building if necessary) the hash index for `col`.
    ///
    /// The index is shared behind an `Arc` so callers can keep it across
    /// subsequent lookups without re-entering the cache.
    pub fn index(&self, col: ColId) -> Arc<HashIndex> {
        if let Some(idx) = unpoison(self.indexes.read()).get(&col) {
            return idx.clone();
        }
        let built = Arc::new(HashIndex::build(self.rows.iter().map(|r| r[col])));
        unpoison(self.indexes.write())
            .entry(col)
            .or_insert(built)
            .clone()
    }

    /// Row ids whose `col` equals `value` (empty for NULL probes, per SQL
    /// equality).
    pub fn rows_with(&self, col: ColId, value: Value) -> Vec<RowId> {
        if value.is_null() {
            return Vec::new();
        }
        self.index(col).get(value).to_vec()
    }

    /// Number of distinct non-null values in `col`.
    pub fn distinct_count(&self, col: ColId) -> usize {
        self.index(col).distinct_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn log_table() -> Table {
        Table::new(TableSchema::new(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        ))
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = log_table();
        let id = t
            .insert(vec![Value::Int(1), Value::Int(10), Value::Int(100)])
            .unwrap();
        assert_eq!(id, 0);
        assert_eq!(t.row(0), &[Value::Int(1), Value::Int(10), Value::Int(100)]);
        assert_eq!(t.cell(0, 2), Value::Int(100));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_is_checked() {
        let mut t = log_table();
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            Error::ArityMismatch {
                expected: 3,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn types_are_checked_but_null_is_allowed() {
        let mut t = log_table();
        let err = t
            .insert(vec![Value::Int(1), Value::Date(0), Value::Int(2)])
            .unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
        // NULL fits any column.
        t.insert(vec![Value::Int(1), Value::Null, Value::Int(2)])
            .unwrap();
    }

    #[test]
    fn index_lookup_finds_all_matches() {
        let mut t = log_table();
        for (lid, user, patient) in [(1, 10, 100), (2, 11, 100), (3, 10, 101)] {
            t.insert(vec![Value::Int(lid), Value::Int(user), Value::Int(patient)])
                .unwrap();
        }
        assert_eq!(t.rows_with(2, Value::Int(100)), vec![0, 1]);
        assert_eq!(t.rows_with(1, Value::Int(10)), vec![0, 2]);
        assert_eq!(t.rows_with(1, Value::Int(99)), Vec::<RowId>::new());
        assert_eq!(t.distinct_count(1), 2);
    }

    #[test]
    fn null_probe_matches_nothing() {
        let mut t = log_table();
        t.insert(vec![Value::Int(1), Value::Null, Value::Int(2)])
            .unwrap();
        assert!(t.rows_with(1, Value::Null).is_empty());
    }

    #[test]
    fn insert_invalidates_indexes() {
        let mut t = log_table();
        t.insert(vec![Value::Int(1), Value::Int(5), Value::Int(9)])
            .unwrap();
        assert_eq!(t.rows_with(1, Value::Int(5)).len(), 1);
        t.insert(vec![Value::Int(2), Value::Int(5), Value::Int(9)])
            .unwrap();
        assert_eq!(t.rows_with(1, Value::Int(5)).len(), 2);
    }
}
