//! Row storage.

use crate::error::{Error, Result};
use crate::index::{HashIndex, TableIndex};
use crate::segment::{SegVec, DEFAULT_SEGMENT_ROWS};
use crate::sync::unpoison;
use crate::types::{ColId, TableSchema};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A row is a boxed slice of values, one per schema column.
pub type Row = Box<[Value]>;

/// Index of a row within its table.
pub type RowId = u32;

/// Cached per-column index state: one immutable index per sealed row
/// segment (aligned with [`SegVec::sealed_segments`]) plus one over the
/// tail rows covered at build time. Sealed parts stay valid forever
/// (segments are immutable); only the tail part goes stale on append.
#[derive(Debug, Clone)]
struct ColIndexCache {
    sealed: Vec<Arc<HashIndex>>,
    tail: Arc<HashIndex>,
    /// Rows covered when the tail part was built (`== table.len()` at
    /// build time; a smaller value means the tail part is stale).
    covered: usize,
}

/// A heap of rows plus lazily-built per-column hash indexes.
///
/// Tables are **append-only**: the auditing workload never updates or
/// deletes (access logs are immutable by design). Rows therefore live in
/// a [`SegVec`]: immutable sealed segments shared via `Arc` between
/// clones — i.e. between published [`Epoch`](crate::engine::Epoch)s —
/// plus a small mutable tail, which is all a clone copies. That makes
/// epoch publication `O(batch)`, not `O(table)`.
///
/// The index cache is segmented the same way ([`ColIndexCache`]): an
/// append leaves every index over sealed data warm and shared; only the
/// small tail part is rebuilt on next use. The cache sits behind a
/// poison-tolerant `RwLock` so that read-only query evaluation
/// (`&Table`) can populate it from any thread — a pinned epoch is read
/// concurrently by every auditing session that loaded it.
#[derive(Debug)]
pub struct Table {
    schema: TableSchema,
    rows: SegVec<Row>,
    indexes: RwLock<HashMap<ColId, ColIndexCache>>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            schema: self.schema.clone(),
            // Sealed segments are Arc-shared; only the tail is copied.
            rows: self.rows.clone(),
            // Index parts are immutable; the clone shares them and each
            // side extends its own cache as its rows grow.
            indexes: RwLock::new(unpoison(self.indexes.read()).clone()),
        }
    }
}

impl Table {
    /// Creates an empty table with the given schema and the default
    /// segment capacity.
    pub fn new(schema: TableSchema) -> Self {
        Self::with_segment_rows(schema, DEFAULT_SEGMENT_ROWS)
    }

    /// Creates an empty table sealing row segments at `seg_rows` rows
    /// (tests use tiny capacities to exercise segmentation on small
    /// data).
    pub fn with_segment_rows(schema: TableSchema, seg_rows: usize) -> Self {
        Table {
            schema,
            rows: SegVec::new(seg_rows),
            indexes: RwLock::new(HashMap::new()),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row-segment capacity this table seals at.
    pub fn segment_rows(&self) -> usize {
        self.rows.segment_rows()
    }

    /// The sealed (immutable, `Arc`-shared) row segments, oldest first.
    /// Clones of this table share them by pointer — the storage
    /// equivalence suite asserts exactly that across epochs.
    pub fn sealed_row_segments(&self) -> &[Arc<[Row]>] {
        self.rows.sealed_segments()
    }

    /// Seals the mutable tail into an immutable shared segment (contents
    /// and row ids are unchanged; only the share boundary moves). The
    /// append path seals automatically at the segment capacity; this is
    /// the explicit form for snapshot/ops flows and tests.
    pub fn seal(&mut self) {
        self.rows.seal();
    }

    /// Validates and appends a row. Indexes over sealed segments stay
    /// warm; only the tail part of each column's index goes stale (and is
    /// rebuilt on next use).
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId> {
        if values.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            if let Some(dt) = v.data_type() {
                if dt != self.schema.col_type(i) {
                    return Err(Error::TypeMismatch {
                        table: self.schema.name.clone(),
                        column: self.schema.col_name(i).to_string(),
                        expected: self.schema.col_type(i).name(),
                        got: v.type_name(),
                    });
                }
            }
        }
        let id = u32::try_from(self.rows.len()).expect("more than u32::MAX rows");
        self.rows.push(values.into_boxed_slice());
        Ok(id)
    }

    /// Bulk insert; stops at the first invalid row.
    pub fn insert_all<I: IntoIterator<Item = Vec<Value>>>(&mut self, rows: I) -> Result<()> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Borrow a row by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn row(&self, id: RowId) -> &[Value] {
        self.rows.get(id as usize)
    }

    /// A single cell.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn cell(&self, id: RowId, col: ColId) -> Value {
        self.rows.get(id as usize)[col]
    }

    /// Iterate over `(RowId, &row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, r)| (i as RowId, r.as_ref()))
    }

    /// Returns (building what is missing) the composed hash index for
    /// `col`.
    ///
    /// The view is assembled from per-segment parts: parts over sealed
    /// segments are cached forever (and shared with clones of this
    /// table); the tail part is rebuilt only when rows were appended
    /// since it was built. The returned [`TableIndex`] is a cheap handle
    /// callers can keep across lookups without re-entering the cache.
    pub fn index(&self, col: ColId) -> TableIndex {
        let n_segments = self.rows.sealed_segments().len();
        let len = self.rows.len();
        if let Some(cached) = unpoison(self.indexes.read()).get(&col) {
            if cached.sealed.len() == n_segments && cached.covered == len {
                return self.compose(cached);
            }
        }
        // Reconcile: reuse every cached sealed part, build indexes for
        // segments sealed since, rebuild the tail part.
        let cached_sealed: Vec<Arc<HashIndex>> = unpoison(self.indexes.read())
            .get(&col)
            .map(|c| c.sealed.clone())
            .unwrap_or_default();
        let mut sealed = cached_sealed;
        sealed.truncate(n_segments);
        for (i, seg) in self
            .rows
            .sealed_segments()
            .iter()
            .enumerate()
            .skip(sealed.len())
        {
            let (start, _) = self.rows.segment_bounds(i);
            sealed.push(Arc::new(HashIndex::build_offset(
                seg.iter().map(|r| r[col]),
                start as RowId,
            )));
        }
        let tail_base = self.rows.sealed_len();
        let tail = Arc::new(HashIndex::build_offset(
            self.rows.tail().iter().map(|r| r[col]),
            tail_base as RowId,
        ));
        let fresh = ColIndexCache {
            sealed,
            tail,
            covered: len,
        };
        let view = self.compose(&fresh);
        let mut cache = unpoison(self.indexes.write());
        // Another thread may have reconciled meanwhile; the newer state
        // (more coverage) wins — both are correct for their coverage.
        match cache.get(&col) {
            Some(existing) if existing.covered >= len && existing.sealed.len() >= n_segments => {}
            _ => {
                cache.insert(col, fresh);
            }
        }
        view
    }

    fn compose(&self, cache: &ColIndexCache) -> TableIndex {
        let mut parts = Vec::with_capacity(cache.sealed.len() + 1);
        parts.extend(cache.sealed.iter().cloned());
        if cache.tail.entry_count() > 0 {
            parts.push(cache.tail.clone());
        }
        TableIndex::new(parts)
    }

    /// Row ids whose `col` equals `value`, ascending (empty for NULL
    /// probes, per SQL equality).
    pub fn rows_with(&self, col: ColId, value: Value) -> Vec<RowId> {
        if value.is_null() {
            return Vec::new();
        }
        self.index(col).rows_of(value).collect()
    }

    /// Number of distinct non-null values in `col`.
    pub fn distinct_count(&self, col: ColId) -> usize {
        self.index(col).distinct_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn log_table() -> Table {
        Table::new(TableSchema::new(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        ))
    }

    fn tiny_seg_table(seg_rows: usize) -> Table {
        Table::with_segment_rows(
            TableSchema::new(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            ),
            seg_rows,
        )
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = log_table();
        let id = t
            .insert(vec![Value::Int(1), Value::Int(10), Value::Int(100)])
            .unwrap();
        assert_eq!(id, 0);
        assert_eq!(t.row(0), &[Value::Int(1), Value::Int(10), Value::Int(100)]);
        assert_eq!(t.cell(0, 2), Value::Int(100));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_is_checked() {
        let mut t = log_table();
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            Error::ArityMismatch {
                expected: 3,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn types_are_checked_but_null_is_allowed() {
        let mut t = log_table();
        let err = t
            .insert(vec![Value::Int(1), Value::Date(0), Value::Int(2)])
            .unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
        // NULL fits any column.
        t.insert(vec![Value::Int(1), Value::Null, Value::Int(2)])
            .unwrap();
    }

    #[test]
    fn index_lookup_finds_all_matches() {
        let mut t = log_table();
        for (lid, user, patient) in [(1, 10, 100), (2, 11, 100), (3, 10, 101)] {
            t.insert(vec![Value::Int(lid), Value::Int(user), Value::Int(patient)])
                .unwrap();
        }
        assert_eq!(t.rows_with(2, Value::Int(100)), vec![0, 1]);
        assert_eq!(t.rows_with(1, Value::Int(10)), vec![0, 2]);
        assert_eq!(t.rows_with(1, Value::Int(99)), Vec::<RowId>::new());
        assert_eq!(t.distinct_count(1), 2);
    }

    #[test]
    fn null_probe_matches_nothing() {
        let mut t = log_table();
        t.insert(vec![Value::Int(1), Value::Null, Value::Int(2)])
            .unwrap();
        assert!(t.rows_with(1, Value::Null).is_empty());
    }

    #[test]
    fn appends_are_visible_through_a_warm_index() {
        let mut t = log_table();
        t.insert(vec![Value::Int(1), Value::Int(5), Value::Int(9)])
            .unwrap();
        assert_eq!(t.rows_with(1, Value::Int(5)).len(), 1);
        t.insert(vec![Value::Int(2), Value::Int(5), Value::Int(9)])
            .unwrap();
        assert_eq!(t.rows_with(1, Value::Int(5)).len(), 2);
    }

    #[test]
    fn warm_index_over_sealed_segments_survives_an_ingest() {
        // Regression for the coarse invalidation this cache replaced: an
        // append used to drop *every* cached index; now only the tail
        // part is rebuilt and the sealed parts are reused by pointer.
        let mut t = tiny_seg_table(2);
        for i in 0..5i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 2), Value::Int(9)])
                .unwrap();
        }
        assert_eq!(t.sealed_row_segments().len(), 2);
        let warm = t.index(1);
        assert_eq!(warm.parts().len(), 3, "two sealed parts + tail");
        // Ingest one more row (still in the tail).
        t.insert(vec![Value::Int(5), Value::Int(1), Value::Int(9)])
            .unwrap();
        let after = t.index(1);
        for (w, a) in warm.parts().iter().zip(after.parts()) {
            if w.get(Value::Int(0)).iter().any(|&r| r < 4) {
                assert!(Arc::ptr_eq(w, a), "sealed index part was rebuilt");
            }
        }
        assert!(
            Arc::ptr_eq(&warm.parts()[0], &after.parts()[0]),
            "first sealed part survives the ingest"
        );
        assert!(
            Arc::ptr_eq(&warm.parts()[1], &after.parts()[1]),
            "second sealed part survives the ingest"
        );
        // And results are exact: old rows plus the appended one.
        assert_eq!(t.rows_with(1, Value::Int(1)), vec![1, 3, 5]);
        // Crossing a segment boundary promotes tail rows into a new
        // sealed part; earlier sealed parts are *still* reused.
        t.insert(vec![Value::Int(6), Value::Int(0), Value::Int(9)])
            .unwrap();
        let promoted = t.index(1);
        assert!(Arc::ptr_eq(&after.parts()[0], &promoted.parts()[0]));
        assert!(Arc::ptr_eq(&after.parts()[1], &promoted.parts()[1]));
        assert_eq!(t.rows_with(1, Value::Int(0)), vec![0, 2, 4, 6]);
    }

    #[test]
    fn clones_share_sealed_segments_and_diverge_in_the_tail() {
        let mut t = tiny_seg_table(2);
        for i in 0..5i64 {
            t.insert(vec![Value::Int(i), Value::Int(0), Value::Int(0)])
                .unwrap();
        }
        let epoch = t.clone();
        for (a, b) in t
            .sealed_row_segments()
            .iter()
            .zip(epoch.sealed_row_segments())
        {
            assert!(Arc::ptr_eq(a, b), "clone shares sealed segments");
        }
        t.insert(vec![Value::Int(9), Value::Int(0), Value::Int(0)])
            .unwrap();
        assert_eq!(epoch.len(), 5, "the clone is frozen");
        assert_eq!(t.len(), 6);
        assert_eq!(epoch.cell(4, 0), Value::Int(4));
    }

    #[test]
    fn explicit_seal_keeps_contents_and_indexes_exact() {
        let mut t = log_table();
        t.insert(vec![Value::Int(1), Value::Int(5), Value::Int(9)])
            .unwrap();
        let before = t.rows_with(1, Value::Int(5));
        t.seal();
        assert_eq!(t.sealed_row_segments().len(), 1);
        assert_eq!(t.rows_with(1, Value::Int(5)), before);
        assert_eq!(t.row(0), &[Value::Int(1), Value::Int(5), Value::Int(9)]);
        t.insert(vec![Value::Int(2), Value::Int(5), Value::Int(9)])
            .unwrap();
        assert_eq!(t.rows_with(1, Value::Int(5)), vec![0, 1]);
    }
}
