//! The catalog: tables, relationship metadata, and the string pool.

use crate::error::{Error, Result};
use crate::pool::{StringPool, Symbol};
use crate::stats::ColumnStats;
use crate::sync::unpoison;
use crate::table::{RowId, Table};
use crate::types::{ColId, DataType, TableSchema};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::RwLock;

/// Identifier of a table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

/// A fully-qualified attribute: `table.column`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// Owning table.
    pub table: TableId,
    /// Column within the table.
    pub col: ColId,
}

impl AttrRef {
    /// Convenience constructor.
    pub fn new(table: TableId, col: ColId) -> Self {
        AttrRef { table, col }
    }
}

/// Why two attributes are declared joinable (Def. 5 restricts explanation
/// edges to exactly these three sources, plus self-joins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationshipKind {
    /// Key–foreign-key relationship derived from the schema.
    ForeignKey,
    /// Relationship explicitly provided by the administrator.
    Administrator,
}

/// A declared equi-join relationship between two attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Relationship {
    /// One endpoint.
    pub from: AttrRef,
    /// Other endpoint.
    pub to: AttrRef,
    /// Declaration source.
    pub kind: RelationshipKind,
}

/// An in-memory database: tables, join metadata, and interned strings.
///
/// `Database` is `Send + Sync`: its lazily-populated caches (per-column
/// hash indexes, column statistics) sit behind poison-tolerant locks, so a
/// read-only snapshot — e.g. the one pinned inside an
/// [`Epoch`](crate::engine::Epoch) — can serve query evaluation from many
/// auditing sessions concurrently.
#[derive(Debug)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    relationships: Vec<Relationship>,
    self_join_attrs: Vec<AttrRef>,
    pool: StringPool,
    stats_cache: RwLock<HashMap<AttrRef, ColumnStats>>,
    seg_rows: usize,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        Database {
            // Tables are segmented ([`crate::segment::SegVec`]): the
            // clone shares every sealed row segment by pointer and copies
            // only each table's small mutable tail — this is what makes
            // epoch publication `O(batch)`.
            tables: self.tables.clone(),
            by_name: self.by_name.clone(),
            relationships: self.relationships.clone(),
            self_join_attrs: self.self_join_attrs.clone(),
            pool: self.pool.clone(),
            stats_cache: RwLock::new(unpoison(self.stats_cache.read()).clone()),
            seg_rows: self.seg_rows,
        }
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database {
            tables: Vec::new(),
            by_name: HashMap::new(),
            relationships: Vec::new(),
            self_join_attrs: Vec::new(),
            pool: StringPool::new(),
            stats_cache: RwLock::new(HashMap::new()),
            seg_rows: crate::segment::DEFAULT_SEGMENT_ROWS,
        }
    }

    /// Sets the row-segment capacity used by tables created *after* this
    /// call (existing tables keep theirs). Tests use tiny capacities to
    /// exercise segment sealing and cross-epoch sharing on small data.
    pub fn set_segment_rows(&mut self, seg_rows: usize) {
        assert!(seg_rows > 0, "segment capacity must be positive");
        self.seg_rows = seg_rows;
        // The string pool shares the granularity so its sealing cadence
        // tracks the tables'; it can only be re-granulated while empty
        // (symbols are indexes into the existing segments).
        if self.pool.is_empty() {
            self.pool = StringPool::with_granularity(seg_rows);
        }
    }

    /// The row-segment capacity tables created next will use.
    pub fn segment_rows(&self) -> usize {
        self.seg_rows
    }

    /// Seals every table's mutable tail into immutable shared segments
    /// (contents and row ids unchanged — only the share boundary moves),
    /// so the next clone of this database copies nothing but empty
    /// tails.
    pub fn seal(&mut self) {
        for t in &mut self.tables {
            t.seal();
        }
        self.pool.seal();
    }

    /// A clone of this database with table `id`'s rows removed (schema,
    /// relationships, pool, and every other table shared/cloned as
    /// usual). This is how [`ShardedEngine`](crate::engine::ShardedEngine)
    /// builds per-shard databases: dimension tables and the string pool
    /// stay identical — so [`Symbol`]s align across shards — while the
    /// partitioned log is re-inserted shard by shard.
    pub(crate) fn clone_with_empty_table(&self, id: TableId) -> Database {
        let mut db = self.clone();
        let seg_rows = db.tables[id.0].segment_rows();
        let schema = db.tables[id.0].schema().clone();
        db.tables[id.0] = Table::with_segment_rows(schema, seg_rows);
        unpoison(db.stats_cache.write()).retain(|attr, _| attr.table != id);
        db
    }

    // ---------------------------------------------------------------- schema

    /// Creates a table from `(column, type)` pairs and registers it.
    pub fn create_table(&mut self, name: &str, columns: &[(&str, DataType)]) -> Result<TableId> {
        if self.by_name.contains_key(name) {
            return Err(Error::DuplicateTable(name.to_string()));
        }
        let id = TableId(self.tables.len());
        self.tables.push(Table::with_segment_rows(
            TableSchema::new(name, columns),
            self.seg_rows,
        ));
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks a table up by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Borrows a table.
    ///
    /// # Panics
    /// Panics if `id` is not a valid table id for this database.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    /// Mutably borrows a table (invalidates cached statistics for it).
    ///
    /// # Panics
    /// Panics if `id` is not a valid table id for this database.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        unpoison(self.stats_cache.write()).retain(|attr, _| attr.table != id);
        &mut self.tables[id.0]
    }

    /// All table ids in creation order.
    pub fn table_ids(&self) -> impl Iterator<Item = TableId> {
        (0..self.tables.len()).map(TableId)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Resolves `"Table.Column"`-style references.
    pub fn attr(&self, table: &str, column: &str) -> Result<AttrRef> {
        let tid = self.table_id(table)?;
        let col = self
            .table(tid)
            .schema()
            .col(column)
            .ok_or_else(|| Error::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        Ok(AttrRef::new(tid, col))
    }

    /// Human-readable `Table.Column` name of an attribute.
    pub fn attr_name(&self, attr: AttrRef) -> String {
        let t = self.table(attr.table);
        format!("{}.{}", t.name(), t.schema().col_name(attr.col))
    }

    // ------------------------------------------------------------------ data

    /// Inserts a row into `table`.
    pub fn insert(&mut self, table: TableId, values: Vec<Value>) -> Result<RowId> {
        self.table_mut(table).insert(values)
    }

    /// Interns a string, returning its symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.pool.intern(s)
    }

    /// Interns a string and wraps it as a [`Value`].
    pub fn str_value(&mut self, s: &str) -> Value {
        Value::Str(self.pool.intern(s))
    }

    /// The string pool (for display).
    pub fn pool(&self) -> &StringPool {
        &self.pool
    }

    // --------------------------------------------------------- relationships

    /// Declares an equi-join relationship between two attributes. Both
    /// directions become usable as explanation edges.
    pub fn add_relationship(
        &mut self,
        from: AttrRef,
        to: AttrRef,
        kind: RelationshipKind,
    ) -> Result<()> {
        let ft = self.table(from.table).schema().col_type(from.col);
        let tt = self.table(to.table).schema().col_type(to.col);
        if ft != tt {
            return Err(Error::IncompatibleRelationship(format!(
                "{} ({ft}) vs {} ({tt})",
                self.attr_name(from),
                self.attr_name(to)
            )));
        }
        self.relationships.push(Relationship { from, to, kind });
        Ok(())
    }

    /// Declares a key–foreign-key relationship by name.
    pub fn add_fk(
        &mut self,
        from_table: &str,
        from_col: &str,
        to_table: &str,
        to_col: &str,
    ) -> Result<()> {
        let from = self.attr(from_table, from_col)?;
        let to = self.attr(to_table, to_col)?;
        self.add_relationship(from, to, RelationshipKind::ForeignKey)
    }

    /// Marks an attribute as allowed in self-joins (Def. 5 restriction 3:
    /// "an attribute and table can only be used in a self-join if the
    /// administrator explicitly allows" it).
    pub fn allow_self_join(&mut self, table: &str, column: &str) -> Result<()> {
        let attr = self.attr(table, column)?;
        if !self.self_join_attrs.contains(&attr) {
            self.self_join_attrs.push(attr);
        }
        Ok(())
    }

    /// All declared relationships.
    pub fn relationships(&self) -> &[Relationship] {
        &self.relationships
    }

    /// All attributes allowed in self-joins.
    pub fn self_join_attrs(&self) -> &[AttrRef] {
        &self.self_join_attrs
    }

    // ----------------------------------------------------------------- stats

    /// Cached column statistics for `attr`.
    pub fn stats(&self, attr: AttrRef) -> ColumnStats {
        if let Some(s) = unpoison(self.stats_cache.read()).get(&attr) {
            return *s;
        }
        let s = ColumnStats::compute(self.table(attr.table), attr.col);
        unpoison(self.stats_cache.write()).insert(attr, s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Appointments",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("Doctor", DataType::Int),
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_and_lookup_tables() {
        let db = db();
        assert_eq!(db.table_count(), 2);
        let log = db.table_id("Log").unwrap();
        assert_eq!(db.table(log).name(), "Log");
        assert!(db.table_id("Nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        let err = db.create_table("Log", &[("X", DataType::Int)]).unwrap_err();
        assert_eq!(err, Error::DuplicateTable("Log".into()));
    }

    #[test]
    fn attr_resolution() {
        let db = db();
        let a = db.attr("Appointments", "Doctor").unwrap();
        assert_eq!(db.attr_name(a), "Appointments.Doctor");
        assert!(db.attr("Appointments", "Nope").is_err());
        assert!(db.attr("Nope", "X").is_err());
    }

    #[test]
    fn fk_requires_matching_types() {
        let mut db = db();
        db.add_fk("Log", "Patient", "Appointments", "Patient")
            .unwrap();
        assert_eq!(db.relationships().len(), 1);
        let err = db
            .add_fk("Log", "Patient", "Appointments", "Date")
            .unwrap_err();
        assert!(matches!(err, Error::IncompatibleRelationship(_)));
    }

    #[test]
    fn self_join_attrs_deduplicate() {
        let mut db = db();
        db.allow_self_join("Appointments", "Doctor").unwrap();
        db.allow_self_join("Appointments", "Doctor").unwrap();
        assert_eq!(db.self_join_attrs().len(), 1);
    }

    #[test]
    fn stats_cache_invalidated_on_write() {
        let mut db = db();
        let log = db.table_id("Log").unwrap();
        db.insert(log, vec![Value::Int(1), Value::Int(2), Value::Int(3)])
            .unwrap();
        let attr = db.attr("Log", "User").unwrap();
        assert_eq!(db.stats(attr).row_count, 1);
        db.insert(log, vec![Value::Int(2), Value::Int(2), Value::Int(4)])
            .unwrap();
        assert_eq!(db.stats(attr).row_count, 2);
        assert_eq!(db.stats(attr).distinct_count, 1);
    }

    #[test]
    fn interning_round_trips_through_values() {
        let mut db = db();
        let v = db.str_value("Pediatrics");
        match v {
            Value::Str(sym) => assert_eq!(db.pool().resolve(sym), "Pediatrics"),
            _ => panic!("expected Str"),
        }
    }
}
