//! Error type shared by all engine operations.

use std::fmt;

/// Convenience alias used across the engine.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by schema definition, data loading and query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table with this name already exists in the catalog.
    DuplicateTable(String),
    /// No table with this name exists.
    UnknownTable(String),
    /// The table exists but has no column with this name.
    UnknownColumn {
        /// Table that was searched.
        table: String,
        /// Column that was not found.
        column: String,
    },
    /// A row's arity does not match the table schema.
    ArityMismatch {
        /// Table being inserted into.
        table: String,
        /// Number of columns the schema declares.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A value's type does not match the declared column type.
    TypeMismatch {
        /// Table being inserted into.
        table: String,
        /// Column whose type was violated.
        column: String,
        /// Declared type, as a string.
        expected: &'static str,
        /// Supplied type, as a string.
        got: &'static str,
    },
    /// A relationship referenced attributes of incompatible types.
    IncompatibleRelationship(String),
    /// A query referenced a table id that does not exist.
    InvalidTableId(usize),
    /// A query was structurally invalid (empty chain, bad column, ...).
    InvalidQuery(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            Error::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            Error::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            Error::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch inserting into `{table}`: expected {expected} values, got {got}"
            ),
            Error::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in `{table}.{column}`: expected {expected}, got {got}"
            ),
            Error::IncompatibleRelationship(msg) => {
                write!(f, "incompatible relationship: {msg}")
            }
            Error::InvalidTableId(id) => write!(f, "invalid table id {id}"),
            Error::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::UnknownColumn {
            table: "Log".into(),
            column: "Zid".into(),
        };
        assert_eq!(e.to_string(), "unknown column `Zid` in table `Log`");

        let e = Error::ArityMismatch {
            table: "Log".into(),
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(e.to_string().contains("got 2"));

        let e = Error::TypeMismatch {
            table: "Log".into(),
            column: "Date".into(),
            expected: "Date",
            got: "Str",
        };
        assert!(e.to_string().contains("Log.Date"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}
