//! Error types shared by all engine operations: [`Error`] for schema,
//! loading and query evaluation, and [`PileError`] for the durability
//! layer ([`crate::pile`] / [`crate::wal`]).

use std::fmt;

/// Convenience alias used across the engine.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by schema definition, data loading and query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table with this name already exists in the catalog.
    DuplicateTable(String),
    /// No table with this name exists.
    UnknownTable(String),
    /// The table exists but has no column with this name.
    UnknownColumn {
        /// Table that was searched.
        table: String,
        /// Column that was not found.
        column: String,
    },
    /// A row's arity does not match the table schema.
    ArityMismatch {
        /// Table being inserted into.
        table: String,
        /// Number of columns the schema declares.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A value's type does not match the declared column type.
    TypeMismatch {
        /// Table being inserted into.
        table: String,
        /// Column whose type was violated.
        column: String,
        /// Declared type, as a string.
        expected: &'static str,
        /// Supplied type, as a string.
        got: &'static str,
    },
    /// A relationship referenced attributes of incompatible types.
    IncompatibleRelationship(String),
    /// A query referenced a table id that does not exist.
    InvalidTableId(usize),
    /// A query was structurally invalid (empty chain, bad column, ...).
    InvalidQuery(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            Error::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            Error::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            Error::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch inserting into `{table}`: expected {expected} values, got {got}"
            ),
            Error::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in `{table}.{column}`: expected {expected}, got {got}"
            ),
            Error::IncompatibleRelationship(msg) => {
                write!(f, "incompatible relationship: {msg}")
            }
            Error::InvalidTableId(id) => write!(f, "invalid table id {id}"),
            Error::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Errors raised by the durability layer ([`crate::pile`] /
/// [`crate::wal`]). Every failure mode a durable store can hit is a typed
/// variant — corruption that can be *safely* repaired (a torn tail from a
/// crash mid-write) is instead truncated and reported through
/// [`crate::pile::RecoveryReport`], never an error and never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PileError {
    /// An underlying I/O operation failed (the error is carried as text
    /// so `PileError` stays `Clone`/`Eq` for differential tests).
    Io {
        /// The file the operation was against.
        file: String,
        /// What was being attempted (`open`, `append`, `sync`, ...).
        op: &'static str,
        /// The rendered `std::io::Error`.
        err: String,
    },
    /// The file exists but does not start with the expected magic — it is
    /// not (this kind of) pile/WAL file. Nothing is touched.
    NotAStore {
        /// The file that was opened.
        file: String,
        /// The magic bytes expected.
        expected: String,
        /// The bytes found (lossy-rendered).
        found: String,
    },
    /// The file carries a format version this build does not speak
    /// (typically: written by a newer version). Nothing is touched —
    /// downgrading software must not destroy a newer store.
    UnsupportedVersion {
        /// The file that was opened.
        file: String,
        /// The version found in the header.
        found: u32,
        /// The single version this build supports.
        supported: u32,
    },
    /// A record passed its checksum but its payload does not decode —
    /// either a format bug or in-place tampering. Refused outright
    /// (truncating would silently discard data that *claims* to be
    /// valid).
    Corrupt {
        /// The file the record was read from.
        file: String,
        /// Byte offset of the record.
        offset: u64,
        /// What failed to decode.
        what: String,
    },
    /// The store's row numbering does not line up with the database it is
    /// being replayed into (or appended from) — e.g. the base CSVs
    /// changed underneath an existing pile.
    BaseMismatch {
        /// The table whose row count disagrees.
        table: String,
        /// The row offset the store expected next.
        expected: u64,
        /// The row offset that was presented.
        found: u64,
    },
    /// Replaying a recovered batch into the database was rejected by the
    /// schema (wrong arity/types — the store belongs to another schema).
    Replay(Error),
}

impl fmt::Display for PileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PileError::Io { file, op, err } => write!(f, "{file}: {op} failed: {err}"),
            PileError::NotAStore {
                file,
                expected,
                found,
            } => write!(f, "{file}: not a {expected} file (starts with {found:?})"),
            PileError::UnsupportedVersion {
                file,
                found,
                supported,
            } => write!(
                f,
                "{file}: format version {found} not supported (this build speaks {supported})"
            ),
            PileError::Corrupt { file, offset, what } => {
                write!(f, "{file}: corrupt record at byte {offset}: {what}")
            }
            PileError::BaseMismatch {
                table,
                expected,
                found,
            } => write!(
                f,
                "store/database mismatch on `{table}`: store continues at row {expected}, \
                 database presents row {found} (did the base data change under the pile?)"
            ),
            PileError::Replay(e) => write!(f, "replaying a recovered batch: {e}"),
        }
    }
}

impl std::error::Error for PileError {}

impl From<Error> for PileError {
    fn from(e: Error) -> PileError {
        PileError::Replay(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::UnknownColumn {
            table: "Log".into(),
            column: "Zid".into(),
        };
        assert_eq!(e.to_string(), "unknown column `Zid` in table `Log`");

        let e = Error::ArityMismatch {
            table: "Log".into(),
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(e.to_string().contains("got 2"));

        let e = Error::TypeMismatch {
            table: "Log".into(),
            column: "Date".into(),
            expected: "Date",
            got: "Str",
        };
        assert!(e.to_string().contains("Log.Date"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}
