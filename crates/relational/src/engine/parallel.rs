//! Scoped-thread work-stealing `map`, the engine's parallel substrate.
//!
//! The build environment cannot fetch `rayon`, so batch evaluation uses a
//! minimal equivalent built on `std::thread::scope`: workers pull item
//! indexes from a shared atomic counter (natural load balancing for
//! heterogeneous query costs) and the results are reassembled in input
//! order. Worker panics propagate to the caller.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, in parallel, preserving input order.
///
/// Spawns at most `available_parallelism` threads; falls back to a
/// sequential loop for single-item batches or single-core machines.
pub fn par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    par_map_with(threads, items, f)
}

/// [`par_map`] with an explicit worker count (also what lets the threaded
/// path be tested on single-core machines).
pub fn par_map_with<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(
    threads: usize,
    items: &[T],
    f: F,
) -> Vec<R> {
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let counter = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                }
                // Re-raise the worker's own panic payload.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        // Force the threaded path even on single-core machines.
        let out = par_map_with(4, &items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(par_map(&items, |&x| x * 2), out);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[7u8], |&x| x + 1), vec![8]);
        assert_eq!(par_map_with(8, &[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn all_work_lands_across_threads() {
        let items: Vec<u64> = (0..10_000).collect();
        let sum: u64 = par_map_with(3, &items, |&x| x).into_iter().sum();
        assert_eq!(sum, 10_000 * 9_999 / 2);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map_with(2, &items, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }
}
