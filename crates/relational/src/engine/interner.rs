//! Value interning and columnar interned table storage.
//!
//! The [`Engine`](super::Engine) never joins on [`Value`]s directly: at
//! construction it scans the database once, assigns every distinct non-null
//! cell value a dense `u32` id, and stores each table column-major as
//! `Vec<u32>`. Join evaluation then works purely on dense ids — frontier
//! sets are bitset-deduplicated `Vec<u32>`s instead of `HashSet<Value>`s,
//! and step maps are CSR arrays indexed by id ([`super::stepmap`]).
//!
//! Interning is *exact*: two cells get the same id iff their `Value`s are
//! equal (`Int(3)` and `Date(3)` stay distinct), so id equality is exactly
//! SQL equality for non-null values. NULL cells are stored as the reserved
//! [`NULL_ID`] sentinel, which no join ever matches — the same "NULL never
//! equi-joins" rule the row evaluator applies.

use crate::database::Database;
use crate::value::Value;
use std::collections::HashMap;

/// Reserved id for SQL NULL. Never joins, never enters step maps.
pub const NULL_ID: u32 = u32::MAX;

/// Bijection between distinct non-null [`Value`]s and dense `u32` ids.
#[derive(Debug, Default)]
pub struct Interner {
    ids: HashMap<Value, u32>,
    values: Vec<Value>,
}

impl Interner {
    /// Interns `v`, returning its dense id.
    ///
    /// # Panics
    /// Panics on [`Value::Null`] (NULL has the reserved [`NULL_ID`]) and
    /// when the id space is exhausted.
    fn intern(&mut self, v: Value) -> u32 {
        debug_assert!(!v.is_null(), "NULL is represented by NULL_ID");
        if let Some(&id) = self.ids.get(&v) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("more than u32::MAX - 1 distinct values");
        assert!(id != NULL_ID, "id space exhausted");
        self.values.push(v);
        self.ids.insert(v, id);
        id
    }

    /// The id of `v`, if it occurs anywhere in the snapshot.
    pub fn id_of(&self, v: &Value) -> Option<u32> {
        self.ids.get(v).copied()
    }

    /// The value behind an id ([`NULL_ID`] resolves to [`Value::Null`]).
    ///
    /// # Panics
    /// Panics if `id` is neither [`NULL_ID`] nor an id this interner issued.
    pub fn value(&self, id: u32) -> Value {
        if id == NULL_ID {
            Value::Null
        } else {
            self.values[id as usize]
        }
    }

    /// Number of distinct interned values — the size of the dense id space.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// One table stored column-major as interned ids.
#[derive(Debug)]
pub struct InternedTable {
    /// `cols[c][r]` is the interned id of cell `(r, c)`.
    pub cols: Vec<Vec<u32>>,
    /// Number of rows.
    pub n_rows: usize,
}

impl InternedTable {
    /// The interned id at `(row, col)`.
    #[inline]
    pub fn id(&self, row: usize, col: usize) -> u32 {
        self.cols[col][row]
    }
}

/// A full interned, columnar snapshot of a [`Database`].
///
/// The snapshot is immutable and self-contained (`Send + Sync`), which is
/// what lets batch evaluation fan out across threads — the live `Database`
/// with its lazily-populated `RefCell` caches cannot cross thread
/// boundaries.
#[derive(Debug)]
pub struct InternedDb {
    /// One interned table per catalog table, in [`crate::TableId`] order.
    pub tables: Vec<InternedTable>,
    /// The shared id space.
    pub interner: Interner,
}

impl InternedDb {
    /// Scans `db` once and interns every cell of every table.
    pub fn snapshot(db: &Database) -> Self {
        let mut interner = Interner::default();
        let tables = db
            .table_ids()
            .map(|tid| {
                let table = db.table(tid);
                let arity = table.schema().arity();
                let mut cols: Vec<Vec<u32>> = (0..arity)
                    .map(|_| Vec::with_capacity(table.len()))
                    .collect();
                for (_, row) in table.iter() {
                    for (c, v) in row.iter().enumerate() {
                        cols[c].push(if v.is_null() {
                            NULL_ID
                        } else {
                            interner.intern(*v)
                        });
                    }
                }
                InternedTable {
                    cols,
                    n_rows: table.len(),
                }
            })
            .collect();
        InternedDb { tables, interner }
    }

    /// The interned table behind a catalog id.
    #[inline]
    pub fn table(&self, id: crate::database::TableId) -> &InternedTable {
        &self.tables[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    #[test]
    fn snapshot_interns_exactly() {
        let mut db = Database::new();
        let t = db
            .create_table("T", &[("A", DataType::Int), ("B", DataType::Date)])
            .unwrap();
        db.insert(t, vec![Value::Int(3), Value::Date(3)]).unwrap();
        db.insert(t, vec![Value::Int(3), Value::Null]).unwrap();
        let snap = InternedDb::snapshot(&db);
        let it = snap.table(t);
        // Int(3) and Date(3) are distinct values, hence distinct ids.
        assert_ne!(it.id(0, 0), it.id(0, 1));
        // The repeated Int(3) shares its id.
        assert_eq!(it.id(0, 0), it.id(1, 0));
        // NULL is the sentinel.
        assert_eq!(it.id(1, 1), NULL_ID);
        assert_eq!(snap.interner.value(NULL_ID), Value::Null);
        assert_eq!(snap.interner.value(it.id(0, 0)), Value::Int(3));
        assert_eq!(snap.interner.len(), 2);
    }

    #[test]
    fn id_lookup_round_trips() {
        let mut db = Database::new();
        let t = db.create_table("T", &[("A", DataType::Int)]).unwrap();
        for i in 0..10 {
            db.insert(t, vec![Value::Int(i % 4)]).unwrap();
        }
        let snap = InternedDb::snapshot(&db);
        for i in 0..4 {
            let id = snap.interner.id_of(&Value::Int(i)).unwrap();
            assert_eq!(snap.interner.value(id), Value::Int(i));
        }
        assert_eq!(snap.interner.id_of(&Value::Int(99)), None);
        assert_eq!(snap.interner.len(), 4);
    }
}
