//! Value interning and columnar interned table storage.
//!
//! The [`Engine`](super::Engine) never joins on [`Value`]s directly: at
//! construction it scans the database once, assigns every distinct non-null
//! cell value a dense `u32` id, and stores each table column-major as
//! `Vec<u32>`. Join evaluation then works purely on dense ids — frontier
//! sets are bitset-deduplicated `Vec<u32>`s instead of `HashSet<Value>`s,
//! and step maps are CSR arrays indexed by id ([`super::stepmap`]).
//!
//! Interning is *exact*: two cells get the same id iff their `Value`s are
//! equal (`Int(3)` and `Date(3)` stay distinct), so id equality is exactly
//! SQL equality for non-null values. NULL cells are stored as the reserved
//! [`NULL_ID`] sentinel, which no join ever matches — the same "NULL never
//! equi-joins" rule the row evaluator applies.

use crate::database::Database;
use crate::segment::{LayeredMap, SegVec};
use crate::value::Value;

/// Reserved id for SQL NULL. Never joins, never enters step maps.
pub const NULL_ID: u32 = u32::MAX;

/// Bijection between distinct non-null [`Value`]s and dense `u32` ids.
///
/// Both directions are stored in epoch-shareable form: `id → value` is a
/// segmented [`SegVec`] (sealed segments `Arc`-shared between forks),
/// `value → id` an LSM-style [`LayeredMap`] (immutable layers shared,
/// only the small tail copied). Cloning the interner — half of what
/// [`Engine::fork`](super::Engine::fork) does — is therefore `O(recent
/// values)`, not `O(distinct values)`; without this the reverse map alone
/// would make every epoch publication `O(database)` again (log ids are
/// distinct per row).
#[derive(Debug, Clone)]
pub struct Interner {
    ids: LayeredMap<Value, u32>,
    values: SegVec<Value>,
}

impl Default for Interner {
    fn default() -> Self {
        Self::with_granularity(crate::segment::DEFAULT_SEGMENT_ROWS)
    }
}

impl Interner {
    /// An empty interner sealing its value segments (and lookup layers)
    /// every `granularity` entries. [`InternedDb::snapshot`] mirrors the
    /// source database's segment capacity so publication cost bounds
    /// track the database's own.
    pub fn with_granularity(granularity: usize) -> Self {
        Interner {
            ids: LayeredMap::with_tail_cap(granularity.max(1)),
            values: SegVec::new(granularity.max(1)),
        }
    }
    /// Interns `v`, returning its dense id.
    ///
    /// # Panics
    /// Panics on [`Value::Null`] (NULL has the reserved [`NULL_ID`]) and
    /// when the id space is exhausted.
    fn intern(&mut self, v: Value) -> u32 {
        debug_assert!(!v.is_null(), "NULL is represented by NULL_ID");
        if let Some(&id) = self.ids.get(&v) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("more than u32::MAX - 1 distinct values");
        assert!(id != NULL_ID, "id space exhausted");
        self.values.push(v);
        self.ids.insert(v, id);
        id
    }

    /// The id of `v`, if it occurs anywhere in the snapshot.
    pub fn id_of(&self, v: &Value) -> Option<u32> {
        self.ids.get(v).copied()
    }

    /// The value behind an id ([`NULL_ID`] resolves to [`Value::Null`]).
    ///
    /// # Panics
    /// Panics if `id` is neither [`NULL_ID`] nor an id this interner issued.
    pub fn value(&self, id: u32) -> Value {
        if id == NULL_ID {
            Value::Null
        } else {
            *self.values.get(id as usize)
        }
    }

    /// Number of distinct interned values — the size of the dense id space.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// One table stored column-major as interned ids, each column a
/// segmented [`SegVec`]: sealed segments are immutable and `Arc`-shared
/// between engine forks (epochs), the tail is what a fork copies.
#[derive(Debug, Clone)]
pub struct InternedTable {
    /// `cols[c][r]` is the interned id of cell `(r, c)`. Full scans
    /// should iterate [`SegVec::chunks`]/[`SegVec::iter`] rather than
    /// index row-by-row.
    pub cols: Vec<SegVec<u32>>,
    /// Number of rows.
    pub n_rows: usize,
}

impl InternedTable {
    /// The interned id at `(row, col)`.
    #[inline]
    pub fn id(&self, row: usize, col: usize) -> u32 {
        self.cols[col][row]
    }
}

/// A full interned, columnar snapshot of a [`Database`].
///
/// The snapshot is immutable between refreshes and self-contained
/// (`Send + Sync`), which is what lets batch evaluation fan out across
/// threads without ever touching the live `Database` (itself also
/// `Send + Sync` now, but contended differently: its lazily-built index
/// caches are lock-guarded, while the snapshot's columns are plain
/// shared memory).
///
/// Because [`Table`](crate::Table)s are structurally append-only (there is
/// no row update or delete API), a snapshot can be brought up to date
/// *incrementally*: [`InternedDb::refresh`] scans only the rows appended
/// since the last snapshot/refresh and interns only values it has never
/// seen — existing ids are never reassigned, so data structures keyed on
/// old ids (step maps over tables that did not grow, scratch bitsets)
/// remain valid.
#[derive(Debug, Clone)]
pub struct InternedDb {
    /// One interned table per catalog table, in [`crate::TableId`] order.
    pub tables: Vec<InternedTable>,
    /// The shared id space.
    pub interner: Interner,
}

/// Why a refresh was refused. Refreshing is only defined against the
/// append-only database a snapshot was built from; a shrinking table is the
/// telltale of refreshing against an unrelated (or rolled-back) database.
///
/// A failed refresh leaves the snapshot **untouched** — shrinkage is
/// detected in a read-only pre-pass before anything is interned — so the
/// caller can keep serving from the old snapshot, or rebuild from scratch
/// (what [`SharedEngine`](super::SharedEngine)'s writer does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefreshError {
    /// A table has fewer rows than the snapshot recorded.
    TableShrank {
        /// Name of the offending table.
        table: String,
        /// Rows the snapshot holds.
        had: usize,
        /// Rows the database now reports.
        now: usize,
    },
    /// The database has fewer tables than the snapshot recorded.
    CatalogShrank {
        /// Tables the snapshot holds.
        had: usize,
        /// Tables the database now reports.
        now: usize,
    },
    /// The caller declared the database **replaced** rather than extended
    /// (an operator reload): even when every table's row count lines up,
    /// existing cells may differ, so an incremental refresh — which skips
    /// rows it has already interned — would silently keep answering from
    /// the replaced data. [`SharedEngine::replace`](super::SharedEngine)
    /// refuses the incremental path up front with this reason and
    /// rebuilds from scratch.
    Replaced,
}

impl std::fmt::Display for RefreshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefreshError::TableShrank { table, had, now } => write!(
                f,
                "table `{table}` shrank ({had} -> {now} rows): snapshots only refresh \
                 against the append-only database they were built from"
            ),
            RefreshError::CatalogShrank { had, now } => write!(
                f,
                "catalog shrank ({had} -> {now} tables): snapshots only refresh \
                 against the append-only database they were built from"
            ),
            RefreshError::Replaced => write!(
                f,
                "database replaced wholesale: a replacement is never assumed to be \
                 an append-only extension of the published epoch"
            ),
        }
    }
}

impl std::error::Error for RefreshError {}

/// What a [`InternedDb::refresh`] changed — the engine uses this to
/// invalidate exactly the caches the append touched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefreshDelta {
    /// Tables that gained rows (including tables created after the last
    /// snapshot, which arrive with all their rows "new").
    pub grown: Vec<crate::database::TableId>,
    /// Total rows appended across all tables.
    pub new_rows: usize,
    /// Distinct values interned for the first time.
    pub new_values: usize,
}

impl RefreshDelta {
    /// True when the refresh found nothing to do.
    pub fn is_empty(&self) -> bool {
        self.grown.is_empty()
    }
}

impl InternedDb {
    /// Scans `db` once and interns every cell of every table.
    pub fn snapshot(db: &Database) -> Self {
        let mut snap = InternedDb {
            tables: Vec::new(),
            interner: Interner::with_granularity(db.segment_rows()),
        };
        snap.refresh(db)
            .expect("a fresh snapshot has nothing to shrink");
        snap
    }

    /// Brings the snapshot up to date with `db`, scanning **only** the
    /// rows appended since the last snapshot/refresh (plus any tables
    /// created since). Returns which tables grew so callers can invalidate
    /// dependent caches selectively.
    ///
    /// Interning is append-only: ids issued earlier keep their values, so
    /// anything built against an un-grown table stays exact.
    ///
    /// # Errors
    /// Returns a [`RefreshError`] — and leaves the snapshot untouched — if
    /// a table (or the catalog) shrank: the `Table` API is append-only, so
    /// a shorter table means `db` is not the database this snapshot was
    /// built from.
    pub fn refresh(&mut self, db: &Database) -> Result<RefreshDelta, RefreshError> {
        // Read-only pre-pass: refuse (without mutating anything) before a
        // partial refresh could tear the snapshot.
        if db.table_count() < self.tables.len() {
            return Err(RefreshError::CatalogShrank {
                had: self.tables.len(),
                now: db.table_count(),
            });
        }
        for tid in db.table_ids() {
            if tid.0 < self.tables.len() && db.table(tid).len() < self.tables[tid.0].n_rows {
                return Err(RefreshError::TableShrank {
                    table: db.table(tid).name().to_string(),
                    had: self.tables[tid.0].n_rows,
                    now: db.table(tid).len(),
                });
            }
        }
        let mut delta = RefreshDelta::default();
        let values_before = self.interner.len();
        for tid in db.table_ids() {
            let table = db.table(tid);
            let it = if tid.0 < self.tables.len() {
                &mut self.tables[tid.0]
            } else {
                debug_assert_eq!(tid.0, self.tables.len(), "table ids are dense");
                self.tables.push(InternedTable {
                    // Mirror the source table's segment capacity so the
                    // snapshot's share boundaries track the database's.
                    cols: (0..table.schema().arity())
                        .map(|_| SegVec::new(table.segment_rows()))
                        .collect(),
                    n_rows: 0,
                });
                self.tables.last_mut().expect("just pushed")
            };
            if table.len() == it.n_rows {
                continue;
            }
            for r in it.n_rows..table.len() {
                for (c, v) in table.row(r as crate::table::RowId).iter().enumerate() {
                    it.cols[c].push(if v.is_null() {
                        NULL_ID
                    } else {
                        self.interner.intern(*v)
                    });
                }
            }
            delta.new_rows += table.len() - it.n_rows;
            it.n_rows = table.len();
            delta.grown.push(tid);
        }
        delta.new_values = self.interner.len() - values_before;
        Ok(delta)
    }

    /// The interned table behind a catalog id.
    #[inline]
    pub fn table(&self, id: crate::database::TableId) -> &InternedTable {
        &self.tables[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    #[test]
    fn snapshot_interns_exactly() {
        let mut db = Database::new();
        let t = db
            .create_table("T", &[("A", DataType::Int), ("B", DataType::Date)])
            .unwrap();
        db.insert(t, vec![Value::Int(3), Value::Date(3)]).unwrap();
        db.insert(t, vec![Value::Int(3), Value::Null]).unwrap();
        let snap = InternedDb::snapshot(&db);
        let it = snap.table(t);
        // Int(3) and Date(3) are distinct values, hence distinct ids.
        assert_ne!(it.id(0, 0), it.id(0, 1));
        // The repeated Int(3) shares its id.
        assert_eq!(it.id(0, 0), it.id(1, 0));
        // NULL is the sentinel.
        assert_eq!(it.id(1, 1), NULL_ID);
        assert_eq!(snap.interner.value(NULL_ID), Value::Null);
        assert_eq!(snap.interner.value(it.id(0, 0)), Value::Int(3));
        assert_eq!(snap.interner.len(), 2);
    }

    #[test]
    fn refresh_extends_without_reassigning_ids() {
        let mut db = Database::new();
        let t = db.create_table("T", &[("A", DataType::Int)]).unwrap();
        db.insert(t, vec![Value::Int(1)]).unwrap();
        let mut snap = InternedDb::snapshot(&db);
        let id1 = snap.interner.id_of(&Value::Int(1)).unwrap();

        // Appending an existing value grows the table but not the id space.
        db.insert(t, vec![Value::Int(1)]).unwrap();
        // A new value and a new table both extend the id space.
        db.insert(t, vec![Value::Int(2)]).unwrap();
        let u = db.create_table("U", &[("B", DataType::Int)]).unwrap();
        db.insert(u, vec![Value::Int(2)]).unwrap();
        db.insert(u, vec![Value::Int(3)]).unwrap();

        let delta = snap.refresh(&db).unwrap();
        assert_eq!(delta.grown, vec![t, u]);
        assert_eq!(delta.new_rows, 4);
        assert_eq!(delta.new_values, 2); // Int(2), Int(3)
        assert_eq!(snap.interner.id_of(&Value::Int(1)), Some(id1));
        assert_eq!(snap.table(t).n_rows, 3);
        assert_eq!(snap.table(t).id(1, 0), id1);
        // The shared id space: U's Int(2) matches T's Int(2).
        assert_eq!(snap.table(u).id(0, 0), snap.table(t).id(2, 0));

        // A second refresh with nothing appended is a no-op.
        let delta = snap.refresh(&db).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.new_rows, 0);
    }

    #[test]
    fn refresh_against_a_shrunk_database_fails_without_tearing() {
        let mut db = Database::new();
        let t = db.create_table("T", &[("A", DataType::Int)]).unwrap();
        db.insert(t, vec![Value::Int(1)]).unwrap();
        db.insert(t, vec![Value::Int(2)]).unwrap();
        let mut snap = InternedDb::snapshot(&db);

        // An unrelated database whose T has fewer rows.
        let mut other = Database::new();
        let ot = other.create_table("T", &[("A", DataType::Int)]).unwrap();
        other.insert(ot, vec![Value::Int(9)]).unwrap();
        let err = snap.refresh(&other).unwrap_err();
        assert_eq!(
            err,
            RefreshError::TableShrank {
                table: "T".into(),
                had: 2,
                now: 1
            }
        );
        assert!(err.to_string().contains("shrank"));
        // The snapshot is untouched and still refreshes against its own db.
        assert_eq!(snap.table(t).n_rows, 2);
        assert_eq!(snap.interner.len(), 2);
        db.insert(t, vec![Value::Int(3)]).unwrap();
        assert_eq!(snap.refresh(&db).unwrap().new_rows, 1);
        assert_eq!(snap.table(t).n_rows, 3);
    }

    #[test]
    fn refresh_against_a_shrunk_catalog_fails() {
        let mut db = Database::new();
        db.create_table("T", &[("A", DataType::Int)]).unwrap();
        db.create_table("U", &[("B", DataType::Int)]).unwrap();
        let mut snap = InternedDb::snapshot(&db);
        let mut other = Database::new();
        other.create_table("T", &[("A", DataType::Int)]).unwrap();
        assert_eq!(
            snap.refresh(&other).unwrap_err(),
            RefreshError::CatalogShrank { had: 2, now: 1 }
        );
    }

    #[test]
    fn refresh_interns_appended_nulls_as_sentinel() {
        let mut db = Database::new();
        let t = db.create_table("T", &[("A", DataType::Int)]).unwrap();
        let mut snap = InternedDb::snapshot(&db);
        db.insert(t, vec![Value::Null]).unwrap();
        let delta = snap.refresh(&db).unwrap();
        assert_eq!(delta.new_values, 0);
        assert_eq!(snap.table(t).id(0, 0), NULL_ID);
    }

    #[test]
    fn id_lookup_round_trips() {
        let mut db = Database::new();
        let t = db.create_table("T", &[("A", DataType::Int)]).unwrap();
        for i in 0..10 {
            db.insert(t, vec![Value::Int(i % 4)]).unwrap();
        }
        let snap = InternedDb::snapshot(&db);
        for i in 0..4 {
            let id = snap.interner.id_of(&Value::Int(i)).unwrap();
            assert_eq!(snap.interner.value(id), Value::Int(i));
        }
        assert_eq!(snap.interner.id_of(&Value::Int(99)), None);
        assert_eq!(snap.interner.len(), 4);
    }
}
