//! The batch chain-query evaluation engine.
//!
//! [`ChainQuery::support`](crate::ChainQuery::support) is correct but
//! rebuilds every step's `enter → {exits}` map from a full table scan on
//! every call, keys its frontiers on full tagged [`Value`](crate::Value)s,
//! and evaluates one query at a time. Template mining evaluates thousands
//! of candidate queries against the *same* database, and candidate paths
//! overwhelmingly share steps — exactly the redundancy this module removes.
//! Three layers (see the crate docs for the architecture overview):
//!
//! 1. **Interning** ([`interner`]): one scan snapshots the database into
//!    columnar dense-`u32` form; frontier sets become bitset-deduplicated
//!    `Vec<u32>`s.
//! 2. **Step-map cache** ([`stepmap`]): each distinct step — keyed on
//!    `(table, enter_col, exit_col, const-filters, dedup)` — is built once
//!    per [`Engine`] and shared by every query that uses it.
//! 3. **Batch parallelism** ([`parallel`]): [`Engine::support_many`] and
//!    [`Engine::explained_rows_many`] evaluate a whole batch — a mining
//!    frontier, or an auditor's entire template suite — against one cache,
//!    fanned out over scoped threads.
//!
//! Results are **identical** to the row evaluator's — the same
//! `explained_rows` and `support` for every query class (the
//! `engine_equivalence` integration test enforces this differentially).
//! Queries whose decorations reference the anchor log row have no shareable
//! *step* maps (the decoration must be re-evaluated per log row), so the
//! engine routes them to its own per-row path over shared
//! `(table, enter_col) → rows` **row maps** ([`stepmap::RowMap`]) —
//! filter-free identity, one map per entered column, bitset frontiers —
//! which keeps even the decorated part of an audit suite off the live
//! tables' hash indexes.
//!
//! # Snapshot lifecycle
//!
//! The engine snapshots at construction and answers from that snapshot
//! only: rows inserted into the `Database` afterwards are **not** visible
//! until [`Engine::refresh`] is called. Because tables are structurally
//! append-only (there is no update/delete API), a refresh is incremental:
//! it scans only the appended rows, extends the interner (existing ids are
//! never reassigned) and the columnar tables in place, and then invalidates
//! exactly the caches the append touched.
//!
//! # Cache invalidation rules
//!
//! On refresh, for every table that gained rows (or was created since the
//! last snapshot):
//!
//! * **step maps over that table** are dropped — their CSR arrays
//!   describe the old rows — and are lazily rebuilt on next use;
//! * **row maps and log partitions over that table** are **kept**: they
//!   are chunked by row range ([`stepmap::RowMapChunks`],
//!   [`GroupChunks`]), and because tables are append-only a chunk over
//!   old rows stays exact forever — growth appends one chunk over just
//!   the new rows on next use (`O(batch)`), with periodic compaction
//!   bounding the chunk count;
//! * everything else is **kept**: a step/row map over an un-grown table
//!   stays exact even though the id space grew, because a newly-interned
//!   value cannot occur in rows that have not changed (probing such a map
//!   with a new id yields the empty slice — see
//!   [`StepMap::exits_of`](stepmap::StepMap)).
//!
//! # When to hold a warm engine
//!
//! Construction costs one full database scan; each distinct step map costs
//! one table scan on first use. Those costs only amortize across queries,
//! so hold **one engine per logical session** and refresh it as the log
//! grows, rather than constructing one per call:
//!
//! * a mining run (thousands of candidates sharing steps),
//! * an interactive audit session (every "which accesses does this suite
//!   explain?" question re-uses the suite's step maps),
//! * a long-running service over an append-only log ([`Engine::refresh`]
//!   after each ingest batch keeps the snapshot warm at the cost of
//!   scanning only the new rows).
//!
//! Do **not** share one engine across databases: a snapshot refreshed
//! against a database it was not built from fails with a typed
//! [`RefreshError`] (table shrank) or silently diverges. Clones of a
//! database count as different databases once either side mutates.
//!
//! # Serving queries while the log ingests
//!
//! [`Engine::refresh`] takes `&mut Engine`, so a service that refreshes
//! the engine readers are using must serialize readers against every
//! ingest. [`SharedEngine`] removes that coupling with an epoch-style
//! snapshot handoff: readers [`load`](SharedEngine::load) an immutable
//! [`Epoch`] (database + engine) and evaluate against it for their whole
//! session, while the single writer forks the current engine
//! ([`Engine::fork`]), refreshes the fork privately, and publishes it as
//! the next epoch — a pointer swap, never a wait for in-flight queries.
//! See [`shared`]'s module docs for the writer/reader pattern.
//!
//! # Panic hygiene
//!
//! The engine's caches are guarded by poison-tolerant locks
//! ([`crate::sync::unpoison`]): they hold only memoized, immutable-once-
//! inserted results, so a panicking query can never leave them in a state
//! that is unsafe to read, and recovering the guard is always correct. A
//! long-running auditor therefore survives a panicking query — subsequent
//! queries keep answering (the `catch_unwind` regression tests below and
//! in `tests/engine_equivalence.rs` enforce this).

mod interner;
mod parallel;
mod sharded;
mod shared;
mod stepmap;

pub use interner::{InternedDb, InternedTable, Interner, RefreshDelta, RefreshError, NULL_ID};
pub use parallel::{par_map, par_map_with};
pub use sharded::{
    shard_of, EpochVec, ShardEpoch, ShardKey, ShardRefresh, ShardedBatch, ShardedEngine,
    ShardedIngestReport,
};
pub use shared::{Epoch, IngestReport, Maintained, SharedEngine, SuitePin};

use crate::chain::{ChainQuery, EvalOptions, Rhs, StepFilter};
use crate::database::{Database, TableId};
use crate::error::Result;
use crate::rowset::RowSet;
use crate::sync::unpoison;
use crate::table::RowId;
use crate::types::ColId;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use stepmap::{RowMap, RowMapChunks, StepKey, StepMap, MAX_CACHE_CHUNKS};

/// A shared evaluation engine over one database snapshot. See the module
/// docs.
#[derive(Debug)]
pub struct Engine {
    snapshot: InternedDb,
    cache: Mutex<HashMap<StepKey, Arc<StepMap>>>,
    groups: Mutex<HashMap<GroupKey, GroupChunks>>,
    /// `(table, enter_col) → rows` maps for the anchor-dependent per-row
    /// path; filter-free identity, so every decorated query shares them.
    /// Chunked by row range: growth appends a chunk over the new rows.
    rowmaps: Mutex<HashMap<(TableId, ColId), RowMapChunks>>,
}

/// What one [`Engine::refresh`] did: the snapshot delta, how many step
/// maps had to be dropped, and how many chunked caches merely went stale
/// (they extend themselves over just the appended rows on next use —
/// `O(batch)`, not a rebuild).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Which tables grew, how many rows/values were appended.
    pub delta: RefreshDelta,
    /// Step maps dropped because their table grew (rebuilt lazily from a
    /// full scan on next use — their CSR identity is whole-table).
    pub dropped_step_maps: usize,
    /// Log partitions left stale by the append: **kept**, and extended
    /// over only the new rows when next queried.
    pub stale_partitions: usize,
    /// Per-row maps left stale by the append: **kept**, and extended
    /// over only the new rows when next queried.
    pub stale_row_maps: usize,
}

/// Identity of a log grouping: all queries sharing the anchor shape (same
/// log table, start/close columns and anchor filters) walk the same
/// `(start, close) → rows` partition, so it is computed once per engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    log: crate::database::TableId,
    start_col: crate::types::ColId,
    close_col: Option<crate::types::ColId>,
    anchor_filters: Vec<(
        crate::types::ColId,
        crate::chain::CmpOp,
        crate::value::Value,
    )>,
}

impl GroupKey {
    fn of(q: &ChainQuery) -> GroupKey {
        GroupKey {
            log: q.log,
            start_col: q.start_col,
            close_col: q.close_col,
            anchor_filters: q.anchor_filters.clone(),
        }
    }
}

/// One close bucket of a start group: `(close id, rows)`.
type CloseBucket = (u32, Vec<RowId>);

/// One chunk of a log partition: a contiguous row range grouped by
/// `(start id, close id)`. Chunks over already-partitioned rows are
/// immutable and `Arc`-shared across engine forks; growth appends a new
/// chunk over just the appended rows ([`GroupChunks`]).
#[derive(Debug)]
struct GroupChunk {
    /// `start → per-close rows` within this chunk's range; for open
    /// queries the close id is [`NULL_ID`] (one bucket per start).
    by_start: HashMap<u32, Vec<CloseBucket>>,
}

/// The chunked per-anchor-shape log partition: `Arc`-shared chunks over
/// disjoint row ranges covering `[0, covered)` of the log.
#[derive(Debug, Clone, Default)]
struct GroupChunks {
    chunks: Vec<Arc<GroupChunk>>,
    /// Log rows covered by the chunks (the log's `n_rows` when last
    /// extended).
    covered: usize,
}

/// One set-based template of a fused-suite bucket: its result slot and
/// warm step maps.
struct GroupedTemplate<'q> {
    slot: usize,
    q: &'q ChainQuery,
    maps: Vec<Arc<StepMap>>,
}

/// One anchor-shape bucket of a fused suite: the shared log partition,
/// its distinct starts (gathered once), and every template walking it.
struct GroupedBucket<'q> {
    groups: GroupChunks,
    starts: Vec<u32>,
    templates: Vec<GroupedTemplate<'q>>,
}

/// One anchor-dependent template of a fused-suite scan.
struct PerRowTemplate<'q> {
    slot: usize,
    q: &'q ChainQuery,
    rowmaps: Vec<RowMapChunks>,
}

/// Every anchor-dependent template over one log table: fused into a
/// single scan of that log.
struct PerRowBucket<'q> {
    log: TableId,
    templates: Vec<PerRowTemplate<'q>>,
}

/// A family of anchor-dependent templates sharing the anchor start
/// column and the first step's (table, enter column) — for any anchor
/// row their step-0 candidate sets are identical, so one candidate pass
/// serves every member. The plan pre-factors the members' step-0
/// filters: `filters` holds each distinct filter once, `universal`
/// indexes the ones every member requires (a miss skips the candidate
/// family-wide), and `member_extras[m]` indexes member `m`'s remaining
/// filters.
struct FamilyPlan {
    members: Vec<usize>,
    filters: Vec<StepFilter>,
    universal: Vec<usize>,
    member_extras: Vec<Vec<usize>>,
}

/// Groups a per-row bucket's templates into [`FamilyPlan`]s.
fn plan_families(templates: &[PerRowTemplate]) -> Vec<FamilyPlan> {
    let mut families: Vec<FamilyPlan> = Vec::new();
    let mut ix: HashMap<(ColId, TableId, ColId), usize> = HashMap::new();
    let mut member_all: Vec<Vec<Vec<usize>>> = Vec::new();
    for (t, tmpl) in templates.iter().enumerate() {
        let s0 = &tmpl.q.steps[0];
        let fam = match ix.entry((tmpl.q.start_col, s0.table, s0.enter_col)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(families.len());
                families.push(FamilyPlan {
                    members: Vec::new(),
                    filters: Vec::new(),
                    universal: Vec::new(),
                    member_extras: Vec::new(),
                });
                member_all.push(Vec::new());
                families.len() - 1
            }
        };
        let plan = &mut families[fam];
        let indices: Vec<usize> = s0
            .filters
            .iter()
            .map(|f| match plan.filters.iter().position(|g| g == f) {
                Some(i) => i,
                None => {
                    plan.filters.push(*f);
                    plan.filters.len() - 1
                }
            })
            .collect();
        plan.members.push(t);
        member_all[fam].push(indices);
    }
    for (plan, all) in families.iter_mut().zip(&member_all) {
        plan.universal = (0..plan.filters.len())
            .filter(|i| all.iter().all(|m| m.contains(i)))
            .collect();
        plan.member_extras = all
            .iter()
            .map(|m| {
                m.iter()
                    .copied()
                    .filter(|i| !plan.universal.contains(i))
                    .collect()
            })
            .collect();
    }
    families
}

/// Splits `[0, n)` into at most `parts` contiguous near-even ranges
/// (none empty).
fn split_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let hi = lo + base + usize::from(i < extra);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Maximal consecutive runs of a sorted, deduplicated row-id slice, as
/// half-open `(start, end)` ranges in row-id space.
fn consecutive_runs(rows: &[u32]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < rows.len() {
        let mut j = i + 1;
        while j < rows.len() && rows[j] == rows[j - 1] + 1 {
            j += 1;
        }
        runs.push((rows[i] as usize, rows[j - 1] as usize + 1));
        i = j;
    }
    runs
}

impl Engine {
    /// Snapshots `db` (one scan of every table) and starts with an empty
    /// step-map cache.
    pub fn new(db: &Database) -> Self {
        Engine {
            snapshot: InternedDb::snapshot(db),
            cache: Mutex::new(HashMap::new()),
            groups: Mutex::new(HashMap::new()),
            rowmaps: Mutex::new(HashMap::new()),
        }
    }

    /// The interned snapshot (exposed for diagnostics and tests).
    pub fn snapshot(&self) -> &InternedDb {
        &self.snapshot
    }

    /// Number of distinct step maps built so far.
    pub fn cached_step_maps(&self) -> usize {
        unpoison(self.cache.lock()).len()
    }

    /// Number of distinct log partitions built so far.
    pub fn cached_partitions(&self) -> usize {
        unpoison(self.groups.lock()).len()
    }

    /// Number of distinct per-row maps built so far (the anchor-dependent
    /// path's cache).
    pub fn cached_row_maps(&self) -> usize {
        unpoison(self.rowmaps.lock()).len()
    }

    /// Brings the engine up to date with `db` incrementally: scans only
    /// the rows appended since construction (or the previous refresh) and
    /// drops only the step maps and log partitions over tables that grew.
    /// See the module docs for the invalidation rules.
    ///
    /// `db` must be the database this engine was built from (tables are
    /// append-only, so "the same database, possibly longer"). Refreshing
    /// against a database where a table shrank returns a typed
    /// [`RefreshError`] and leaves the engine untouched — it keeps
    /// answering from its current snapshot — so a long-running service can
    /// log the mismatch and rebuild instead of dying.
    pub fn refresh(&mut self, db: &Database) -> std::result::Result<RefreshStats, RefreshError> {
        let delta = self.snapshot.refresh(db)?;
        if delta.is_empty() {
            return Ok(RefreshStats {
                delta,
                ..RefreshStats::default()
            });
        }
        let grown: std::collections::HashSet<TableId> = delta.grown.iter().copied().collect();
        let cache = unpoison(self.cache.get_mut());
        let maps_before = cache.len();
        cache.retain(|key, _| !grown.contains(&key.table));
        let dropped_step_maps = maps_before - cache.len();
        // Chunked caches are *kept*: a partition or row map over rows that
        // existed before the append is still exact (tables are
        // append-only), so growth only marks them stale — they extend
        // themselves over the new rows on next use, in `O(batch)`.
        let stale_partitions = unpoison(self.groups.get_mut())
            .keys()
            .filter(|key| grown.contains(&key.log))
            .count();
        let stale_row_maps = unpoison(self.rowmaps.get_mut())
            .keys()
            .filter(|(table, _)| grown.contains(table))
            .count();
        Ok(RefreshStats {
            delta,
            dropped_step_maps,
            stale_partitions,
            stale_row_maps,
        })
    }

    /// A private successor of this engine: same snapshot, same warm caches
    /// (the cached maps are immutable and `Arc`-shared, so this is a
    /// columnar memcpy plus cache-map clones — no re-interning, no map
    /// rebuilds).
    ///
    /// This is the writer half of [`SharedEngine`]'s epoch handoff: the
    /// published engine stays frozen for its readers while the fork is
    /// refreshed against the grown database and published as the next
    /// epoch.
    pub fn fork(&self) -> Engine {
        Engine {
            snapshot: self.snapshot.clone(),
            cache: Mutex::new(unpoison(self.cache.lock()).clone()),
            groups: Mutex::new(unpoison(self.groups.lock()).clone()),
            rowmaps: Mutex::new(unpoison(self.rowmaps.lock()).clone()),
        }
    }

    /// Log row ids explained by `q`, identical to
    /// [`ChainQuery::explained_rows`].
    ///
    /// `db` is used for validation only; evaluation runs on the snapshot
    /// (anchor-dependent decorated queries take the per-row path over the
    /// shared row maps, everything else the grouped set-based path).
    pub fn explained_rows(
        &self,
        db: &Database,
        q: &ChainQuery,
        opts: EvalOptions,
    ) -> Result<Vec<RowId>> {
        q.validate(db)?;
        if q.is_anchor_dependent() {
            return Ok(self.explained_anchor_dep(q, &self.rowmaps_for(q)));
        }
        let maps = self.maps_for(q, opts);
        Ok(self.explained_grouped(q, &maps))
    }

    /// Support of `q` (distinct explained log ids), identical to
    /// [`ChainQuery::support`].
    pub fn support(&self, db: &Database, q: &ChainQuery, opts: EvalOptions) -> Result<usize> {
        q.validate(db)?;
        if q.is_anchor_dependent() {
            let rows = self.explained_anchor_dep(q, &self.rowmaps_for(q));
            return Ok(self.distinct_lids(q, &rows));
        }
        let maps = self.maps_for(q, opts);
        Ok(self.support_grouped(q, &maps))
    }

    /// Batch support evaluation: one result per query, in input order.
    ///
    /// Builds every missing step map first (in parallel), then evaluates
    /// the whole batch in parallel against the shared cache. This is the
    /// API mining rounds call once per candidate frontier.
    pub fn support_many(
        &self,
        db: &Database,
        queries: &[ChainQuery],
        opts: EvalOptions,
    ) -> Vec<Result<usize>> {
        self.eval_many(
            db,
            queries,
            opts,
            |q, maps| self.support_grouped(q, maps),
            |q, rowmaps| {
                let rows = self.explained_anchor_dep(q, rowmaps);
                self.distinct_lids(q, &rows)
            },
        )
    }

    /// Batch `explained_rows` evaluation: one sorted row set per query, in
    /// input order, identical to [`ChainQuery::explained_rows`] per query.
    ///
    /// This is the audit-layer entry point: an explainer evaluates its
    /// whole template suite as one fanned-out batch. It rides the fused
    /// suite driver ([`Engine::eval_suite`]): one pass over each shared
    /// log partition / log scan evaluates **all** templates, and the
    /// per-query [`RowSet`]s convert to the legacy sorted `Vec` form
    /// without a sort (bitmap iteration is ordered).
    pub fn explained_rows_many(
        &self,
        db: &Database,
        queries: &[ChainQuery],
        opts: EvalOptions,
    ) -> Vec<Result<Vec<RowId>>> {
        self.eval_suite(db, queries, opts)
            .into_iter()
            .map(|set| set.map(|s| s.to_vec()))
            .collect()
    }

    /// Union of the rows explained by any of `queries` — the audit layer's
    /// "which accesses does this template suite explain?" primitive, built
    /// on [`Engine::eval_suite`]. Fails on the first invalid query.
    pub fn explained_union(
        &self,
        db: &Database,
        queries: &[ChainQuery],
        opts: EvalOptions,
    ) -> Result<std::collections::HashSet<RowId>> {
        Ok(self
            .explained_union_rowset(db, queries, opts)?
            .iter()
            .collect())
    }

    /// [`Engine::explained_union`] in compressed form: the union of every
    /// template's explained rows as one [`RowSet`], with no intermediate
    /// hash set. Fails on the first invalid query.
    pub fn explained_union_rowset(
        &self,
        db: &Database,
        queries: &[ChainQuery],
        opts: EvalOptions,
    ) -> Result<RowSet> {
        let mut sets = Vec::with_capacity(queries.len());
        for set in self.eval_suite(db, queries, opts) {
            sets.push(set?);
        }
        Ok(RowSet::union_all(sets))
    }

    /// The fused suite driver: evaluates **all** templates against each
    /// log chunk before moving on, returning one compressed [`RowSet`]
    /// of explained rows per query (input order; invalid queries report
    /// their error in place).
    ///
    /// Where [`Engine::eval_many`] fans out *per query* — so N templates
    /// sharing an anchor shape re-walk the same partition's distinct
    /// starts N times, and N decorated templates re-scan the log N times
    /// — this driver groups the suite first and pays each scan once:
    ///
    /// * **set-based templates** are bucketed by anchor shape
    ///   ([`GroupKey`]); per bucket, the distinct starts and each start's
    ///   close buckets are gathered once, then every template's chain is
    ///   walked against them (shared scratch bitset, per-chunk warm step
    ///   maps). Parallelism is over *start ranges*, not templates, so a
    ///   one-template suite still uses every core;
    /// * **anchor-dependent templates** are bucketed by log table; one
    ///   scan of `0..n_rows` evaluates every decorated template against
    ///   each row (parallel over row ranges).
    ///
    /// Workers emit per-template [`RowSet`]s that merge associatively,
    /// so the fan-out/fan-in never re-sorts: results are identical to
    /// [`ChainQuery::explained_rows`] per query (the
    /// `rowset_equivalence` suite enforces this differentially).
    pub fn eval_suite(
        &self,
        db: &Database,
        queries: &[ChainQuery],
        opts: EvalOptions,
    ) -> Vec<Result<RowSet>> {
        let mut results: Vec<Option<Result<RowSet>>> = queries
            .iter()
            .map(|q| q.validate(db).err().map(Err))
            .collect();
        let valid: Vec<(usize, &ChainQuery)> = results
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_none())
            .map(|(i, _)| (i, &queries[i]))
            .collect();
        self.build_missing_maps(
            valid
                .iter()
                .map(|(_, q)| *q)
                .filter(|q| !q.is_anchor_dependent()),
            opts,
        );

        // Bucket set-based templates by anchor shape; each bucket owns
        // the shared partition and its distinct starts, gathered once.
        let mut grouped: Vec<GroupedBucket> = Vec::new();
        let mut bucket_ix: HashMap<GroupKey, usize> = HashMap::new();
        // Bucket anchor-dependent templates by log table: one fused scan
        // per log evaluates all of them.
        let mut per_row: Vec<PerRowBucket> = Vec::new();
        let mut per_row_ix: HashMap<TableId, usize> = HashMap::new();
        for (slot, q) in &valid {
            if q.is_anchor_dependent() {
                let ix = *per_row_ix.entry(q.log).or_insert_with(|| {
                    per_row.push(PerRowBucket {
                        log: q.log,
                        templates: Vec::new(),
                    });
                    per_row.len() - 1
                });
                per_row[ix].templates.push(PerRowTemplate {
                    slot: *slot,
                    q,
                    rowmaps: self.rowmaps_for(q),
                });
            } else {
                let key = GroupKey::of(q);
                let ix = match bucket_ix.get(&key) {
                    Some(&ix) => ix,
                    None => {
                        let groups = self.groups_for(q);
                        let mut starts: Vec<u32> = Vec::new();
                        with_scratch_marks(self.snapshot.interner.len(), |marks| {
                            for chunk in &groups.chunks {
                                for &start in chunk.by_start.keys() {
                                    if marks.insert(start) {
                                        starts.push(start);
                                    }
                                }
                            }
                            marks.remove_all(&starts);
                        });
                        grouped.push(GroupedBucket {
                            groups,
                            starts,
                            templates: Vec::new(),
                        });
                        bucket_ix.insert(key, grouped.len() - 1);
                        grouped.len() - 1
                    }
                };
                grouped[ix].templates.push(GroupedTemplate {
                    slot: *slot,
                    q,
                    maps: self.maps_for(q, opts),
                });
            }
        }

        // Templates holding pointer-equal map prefixes walk as one: sort
        // each bucket by map identity so shared prefixes are adjacent
        // (slice results carry their slot, so output order is free).
        for bucket in &mut grouped {
            bucket.templates.sort_by(|a, b| {
                let ptrs = |t: &GroupedTemplate| -> Vec<usize> {
                    t.maps.iter().map(|m| Arc::as_ptr(m) as usize).collect()
                };
                ptrs(a).cmp(&ptrs(b))
            });
        }

        // One work item per (bucket, range slice): parallelism is over
        // the data, so even a single-template suite fans out.
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        enum Work {
            Grouped { bucket: usize, lo: usize, hi: usize },
            PerRow { bucket: usize, lo: usize, hi: usize },
        }
        let mut work: Vec<Work> = Vec::new();
        for (b, bucket) in grouped.iter().enumerate() {
            for (lo, hi) in split_ranges(bucket.starts.len(), threads) {
                work.push(Work::Grouped { bucket: b, lo, hi });
            }
        }
        for (b, bucket) in per_row.iter().enumerate() {
            let n_rows = self.snapshot.table(bucket.log).n_rows;
            for (lo, hi) in split_ranges(n_rows, threads) {
                work.push(Work::PerRow { bucket: b, lo, hi });
            }
        }
        let outputs = par_map(&work, |item| match *item {
            Work::Grouped { bucket, lo, hi } => self.eval_grouped_slice(&grouped[bucket], lo, hi),
            Work::PerRow { bucket, lo, hi } => self.eval_per_row_slice(&per_row[bucket], lo, hi),
        });

        // Fan-in: every valid query starts from the empty set (a bucket
        // with no rows produces no work items), then absorbs its slice
        // results — the union is associative, so slice order is free.
        for (slot, _) in &valid {
            results[*slot] = Some(Ok(RowSet::new()));
        }
        for slice in outputs {
            for (slot, set) in slice {
                if let Some(Ok(acc)) = &mut results[slot] {
                    acc.union_with(&set);
                }
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every query resolved"))
            .collect()
    }

    /// [`Engine::eval_suite`] restricted to **anchor rows** `[lo, hi)` of
    /// each query's log table: only log rows in that range can appear in
    /// the answers, while chain steps still walk the *whole* support
    /// tables. This is the delta evaluator behind the maintained
    /// explained/unexplained materializations
    /// ([`SharedEngine::pin_suite`]): after an append grows the log by
    /// `[lo, hi)`, evaluating just that range answers "which of the new
    /// accesses are explained?" without re-scanning history.
    ///
    /// The range partition is built fresh per call and **not cached** —
    /// it covers an arbitrary slice, not the `[0, covered)` prefix the
    /// chunked cache extends — so reserve this for genuine deltas. Per
    /// query, the result equals the `eval_suite` answer intersected with
    /// `[lo, hi)` (the stream-equivalence suite enforces this
    /// differentially), because a log row is anchored independently of
    /// every other log row.
    pub fn eval_suite_range(
        &self,
        db: &Database,
        queries: &[ChainQuery],
        opts: EvalOptions,
        lo: usize,
        hi: usize,
    ) -> Vec<Result<RowSet>> {
        let mut results: Vec<Option<Result<RowSet>>> = queries
            .iter()
            .map(|q| q.validate(db).err().map(Err))
            .collect();
        let valid: Vec<(usize, &ChainQuery)> = results
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_none())
            .map(|(i, _)| (i, &queries[i]))
            .collect();
        self.build_missing_maps(
            valid
                .iter()
                .map(|(_, q)| *q)
                .filter(|q| !q.is_anchor_dependent()),
            opts,
        );

        let mut grouped: Vec<GroupedBucket> = Vec::new();
        let mut bucket_ix: HashMap<GroupKey, usize> = HashMap::new();
        let mut per_row: Vec<PerRowBucket> = Vec::new();
        let mut per_row_ix: HashMap<TableId, usize> = HashMap::new();
        for (slot, q) in &valid {
            if q.is_anchor_dependent() {
                let ix = *per_row_ix.entry(q.log).or_insert_with(|| {
                    per_row.push(PerRowBucket {
                        log: q.log,
                        templates: Vec::new(),
                    });
                    per_row.len() - 1
                });
                per_row[ix].templates.push(PerRowTemplate {
                    slot: *slot,
                    q,
                    rowmaps: self.rowmaps_for(q),
                });
            } else {
                let key = GroupKey::of(q);
                let ix = match bucket_ix.get(&key) {
                    Some(&ix) => ix,
                    None => {
                        // One fresh, uncached chunk over just `[lo, hi)`.
                        // Its `by_start` keys are already distinct, so the
                        // starts need no scratch-mark dedup.
                        let n_rows = self.snapshot.table(key.log).n_rows;
                        let (lo, hi) = (lo.min(n_rows), hi.min(n_rows));
                        let chunk = self.build_group_chunk(&key, lo, hi);
                        let starts: Vec<u32> = chunk.by_start.keys().copied().collect();
                        grouped.push(GroupedBucket {
                            groups: GroupChunks {
                                chunks: vec![Arc::new(chunk)],
                                covered: hi,
                            },
                            starts,
                            templates: Vec::new(),
                        });
                        bucket_ix.insert(key, grouped.len() - 1);
                        grouped.len() - 1
                    }
                };
                grouped[ix].templates.push(GroupedTemplate {
                    slot: *slot,
                    q,
                    maps: self.maps_for(q, opts),
                });
            }
        }

        for bucket in &mut grouped {
            bucket.templates.sort_by(|a, b| {
                let ptrs = |t: &GroupedTemplate| -> Vec<usize> {
                    t.maps.iter().map(|m| Arc::as_ptr(m) as usize).collect()
                };
                ptrs(a).cmp(&ptrs(b))
            });
        }

        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        enum Work {
            Grouped { bucket: usize, lo: usize, hi: usize },
            PerRow { bucket: usize, lo: usize, hi: usize },
        }
        let mut work: Vec<Work> = Vec::new();
        for (b, bucket) in grouped.iter().enumerate() {
            for (lo, hi) in split_ranges(bucket.starts.len(), threads) {
                work.push(Work::Grouped { bucket: b, lo, hi });
            }
        }
        for (b, bucket) in per_row.iter().enumerate() {
            let n_rows = self.snapshot.table(bucket.log).n_rows;
            let (lo, hi) = (lo.min(n_rows), hi.min(n_rows));
            for (a, z) in split_ranges(hi.saturating_sub(lo), threads) {
                work.push(Work::PerRow {
                    bucket: b,
                    lo: lo + a,
                    hi: lo + z,
                });
            }
        }
        let outputs = par_map(&work, |item| match *item {
            Work::Grouped { bucket, lo, hi } => self.eval_grouped_slice(&grouped[bucket], lo, hi),
            Work::PerRow { bucket, lo, hi } => self.eval_per_row_slice(&per_row[bucket], lo, hi),
        });

        for (slot, _) in &valid {
            results[*slot] = Some(Ok(RowSet::new()));
        }
        for slice in outputs {
            for (slot, set) in slice {
                if let Some(Ok(acc)) = &mut results[slot] {
                    acc.union_with(&set);
                }
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every query resolved"))
            .collect()
    }

    /// [`Engine::eval_suite`] restricted to an explicit **anchor row
    /// set**: only rows in `rows` can appear in the answers, while chain
    /// steps still walk the whole support tables. This is the
    /// *scattered-residue* delta evaluator behind the maintained
    /// partition: when a support table grows, a template stepping into
    /// it can newly explain old anchor rows — but explanation is
    /// monotone under append-only growth, so only the *previously
    /// unexplained* residue needs re-asking, and the residue is usually
    /// a small scattered fraction of the log. Per query, the result
    /// equals the `eval_suite` answer intersected with `rows` (the
    /// stream-equivalence suite enforces this differentially).
    ///
    /// Like [`Engine::eval_suite_range`], partitions over `rows` are
    /// built fresh (one grouped chunk per consecutive run) and not
    /// cached — reserve this for genuine deltas.
    pub fn eval_suite_rows(
        &self,
        db: &Database,
        queries: &[ChainQuery],
        opts: EvalOptions,
        rows: &RowSet,
    ) -> Vec<Result<RowSet>> {
        let mut results: Vec<Option<Result<RowSet>>> = queries
            .iter()
            .map(|q| q.validate(db).err().map(Err))
            .collect();
        let valid: Vec<(usize, &ChainQuery)> = results
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_none())
            .map(|(i, _)| (i, &queries[i]))
            .collect();
        self.build_missing_maps(
            valid
                .iter()
                .map(|(_, q)| *q)
                .filter(|q| !q.is_anchor_dependent()),
            opts,
        );
        let row_ids: Vec<u32> = rows.to_vec();

        let mut grouped: Vec<GroupedBucket> = Vec::new();
        let mut bucket_ix: HashMap<GroupKey, usize> = HashMap::new();
        let mut per_row: Vec<PerRowBucket> = Vec::new();
        let mut per_row_ix: HashMap<TableId, usize> = HashMap::new();
        for (slot, q) in &valid {
            if q.is_anchor_dependent() {
                let ix = *per_row_ix.entry(q.log).or_insert_with(|| {
                    per_row.push(PerRowBucket {
                        log: q.log,
                        templates: Vec::new(),
                    });
                    per_row.len() - 1
                });
                per_row[ix].templates.push(PerRowTemplate {
                    slot: *slot,
                    q,
                    rowmaps: self.rowmaps_for(q),
                });
            } else {
                let key = GroupKey::of(q);
                let ix = match bucket_ix.get(&key) {
                    Some(&ix) => ix,
                    None => {
                        // One fresh chunk per consecutive run of the row
                        // set; a start can recur across runs, so the
                        // gathered starts are dedup'd (the grouped walk
                        // visits each start once and reads close buckets
                        // from every chunk).
                        let n_rows = self.snapshot.table(key.log).n_rows;
                        let mut chunks: Vec<Arc<GroupChunk>> = Vec::new();
                        let mut starts: Vec<u32> = Vec::new();
                        for (a, z) in consecutive_runs(&row_ids) {
                            let (a, z) = (a.min(n_rows), z.min(n_rows));
                            if a == z {
                                continue;
                            }
                            let chunk = self.build_group_chunk(&key, a, z);
                            starts.extend(chunk.by_start.keys().copied());
                            chunks.push(Arc::new(chunk));
                        }
                        starts.sort_unstable();
                        starts.dedup();
                        grouped.push(GroupedBucket {
                            groups: GroupChunks {
                                chunks,
                                covered: n_rows,
                            },
                            starts,
                            templates: Vec::new(),
                        });
                        bucket_ix.insert(key, grouped.len() - 1);
                        grouped.len() - 1
                    }
                };
                grouped[ix].templates.push(GroupedTemplate {
                    slot: *slot,
                    q,
                    maps: self.maps_for(q, opts),
                });
            }
        }

        for bucket in &mut grouped {
            bucket.templates.sort_by(|a, b| {
                let ptrs = |t: &GroupedTemplate| -> Vec<usize> {
                    t.maps.iter().map(|m| Arc::as_ptr(m) as usize).collect()
                };
                ptrs(a).cmp(&ptrs(b))
            });
        }

        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        enum Work {
            Grouped { bucket: usize, lo: usize, hi: usize },
            PerRow { bucket: usize, lo: usize, hi: usize },
        }
        let mut work: Vec<Work> = Vec::new();
        for (b, bucket) in grouped.iter().enumerate() {
            for (lo, hi) in split_ranges(bucket.starts.len(), threads) {
                work.push(Work::Grouped { bucket: b, lo, hi });
            }
        }
        for (b, bucket) in per_row.iter().enumerate() {
            let n_rows = self.snapshot.table(bucket.log).n_rows;
            let end = row_ids.partition_point(|&r| (r as usize) < n_rows);
            for (a, z) in split_ranges(end, threads) {
                work.push(Work::PerRow {
                    bucket: b,
                    lo: a,
                    hi: z,
                });
            }
        }
        let outputs = par_map(&work, |item| match *item {
            Work::Grouped { bucket, lo, hi } => self.eval_grouped_slice(&grouped[bucket], lo, hi),
            Work::PerRow { bucket, lo, hi } => self.eval_per_row_rows(
                &per_row[bucket],
                row_ids[lo..hi].iter().map(|&r| r as usize),
            ),
        });

        for (slot, _) in &valid {
            results[*slot] = Some(Ok(RowSet::new()));
        }
        for slice in outputs {
            for (slot, set) in slice {
                if let Some(Ok(acc)) = &mut results[slot] {
                    acc.union_with(&set);
                }
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every query resolved"))
            .collect()
    }

    /// Walks every template of one grouped bucket over the starts in
    /// `[lo, hi)`. Two redundancies the per-query path pays N times are
    /// paid at most once per start here:
    ///
    /// * **close buckets** are gathered across chunks lazily, on the
    ///   first template whose walk survives — a start every template
    ///   dies on costs no bucket lookups at all;
    /// * **shared chain prefixes** are walked once. Step maps are
    ///   cache-shared `Arc`s, so templates whose chains begin with the
    ///   same steps hold pointer-equal maps; the bucket's templates are
    ///   pre-sorted to make such prefixes adjacent, and a per-depth
    ///   frontier stack lets each template resume from the deepest
    ///   frontier its predecessor already computed.
    ///
    /// Hits accumulate in a plain vector per template (a log row belongs
    /// to exactly one start group, so no deduplication is needed) and
    /// compress to a [`RowSet`] in one sort at the end — per-row set
    /// inserts would pay a container search each, the sort pays once.
    fn eval_grouped_slice(
        &self,
        bucket: &GroupedBucket,
        lo: usize,
        hi: usize,
    ) -> Vec<(usize, RowSet)> {
        let mut hits: Vec<Vec<RowId>> = vec![Vec::new(); bucket.templates.len()];
        with_scratch_marks(self.snapshot.interner.len(), |marks| {
            // frontiers[d] = the frontier after step d of the chain most
            // recently walked from the current start (valid to `computed`).
            let mut frontiers: Vec<Vec<u32>> = Vec::new();
            let mut close_rows: Vec<(u32, &[RowId])> = Vec::new();
            for &start in &bucket.starts[lo..hi] {
                let mut gathered = false;
                let mut computed = 0usize;
                let mut prev_maps: &[Arc<StepMap>] = &[];
                for (t, tmpl) in bucket.templates.iter().enumerate() {
                    let mut depth = 0;
                    while depth < computed
                        && depth < tmpl.maps.len()
                        && Arc::ptr_eq(&tmpl.maps[depth], &prev_maps[depth])
                    {
                        depth += 1;
                    }
                    prev_maps = &tmpl.maps;
                    let mut dead = depth > 0 && frontiers[depth - 1].is_empty();
                    while !dead && depth < tmpl.maps.len() {
                        if frontiers.len() == depth {
                            frontiers.push(Vec::new());
                        }
                        let (done, rest) = frontiers.split_at_mut(depth);
                        let next = &mut rest[0];
                        next.clear();
                        let from: &[u32] = match depth {
                            0 => std::slice::from_ref(&start),
                            d => &done[d - 1],
                        };
                        for &v in from {
                            for &exit in tmpl.maps[depth].exits_of(v) {
                                if marks.insert(exit) {
                                    next.push(exit);
                                }
                            }
                        }
                        marks.remove_all(next);
                        dead = next.is_empty();
                        depth += 1;
                    }
                    computed = depth;
                    if dead {
                        continue;
                    }
                    let frontier: &[u32] = match tmpl.maps.len() {
                        0 => std::slice::from_ref(&start),
                        d => &frontiers[d - 1],
                    };
                    if !gathered {
                        gathered = true;
                        close_rows.clear();
                        for chunk in &bucket.groups.chunks {
                            if let Some(closes) = chunk.by_start.get(&start) {
                                for (close, rows) in closes {
                                    close_rows.push((*close, rows));
                                }
                            }
                        }
                    }
                    match tmpl.q.close_col {
                        None => {
                            for &(_, rows) in &close_rows {
                                hits[t].extend_from_slice(rows);
                            }
                        }
                        Some(_) => {
                            for &v in frontier {
                                marks.insert(v);
                            }
                            for &(close, rows) in &close_rows {
                                if marks.contains(close) {
                                    hits[t].extend_from_slice(rows);
                                }
                            }
                            marks.remove_all(frontier);
                        }
                    }
                }
            }
        });
        bucket
            .templates
            .iter()
            .zip(hits)
            .map(|(tmpl, mut rows)| {
                rows.sort_unstable();
                (tmpl.slot, RowSet::from_sorted_vec(&rows))
            })
            .collect()
    }

    /// One fused scan over log rows `[lo, hi)` evaluating every
    /// anchor-dependent template of the bucket against each row — the
    /// "one log scan, N templates" half of the fused driver.
    ///
    /// Templates sharing the anchor start column and the first step's
    /// (table, enter column) form a *family*: their candidate rows are
    /// identical for a given anchor row, so the candidate set is read
    /// once per row for the whole family. Within the candidate pass,
    /// each *distinct* step-0 filter is evaluated at most once (N
    /// decorated variants of one policy share their base decoration),
    /// filters required by every member short-circuit the candidate, and
    /// anchor-side comparison values are hoisted out of the candidate
    /// loop entirely.
    fn eval_per_row_slice(
        &self,
        bucket: &PerRowBucket,
        lo: usize,
        hi: usize,
    ) -> Vec<(usize, RowSet)> {
        self.eval_per_row_rows(bucket, lo..hi)
    }

    /// [`Engine::eval_per_row_slice`] over an arbitrary **ascending**
    /// row iterator — the scattered-residue form behind
    /// [`Engine::eval_suite_rows`]. Ascending order is load-bearing:
    /// each template's hits compress sort-free.
    fn eval_per_row_rows(
        &self,
        bucket: &PerRowBucket,
        rows: impl Iterator<Item = usize>,
    ) -> Vec<(usize, RowSet)> {
        let log = self.snapshot.table(bucket.log);
        let interner = &self.snapshot.interner;
        // The scan visits rows in ascending order, so each template's
        // hits are already sorted and unique — they compress to a
        // `RowSet` without a sort.
        let mut hits: Vec<Vec<u32>> = vec![Vec::new(); bucket.templates.len()];
        let step_tables: Vec<Vec<&InternedTable>> = bucket
            .templates
            .iter()
            .map(|t| {
                t.q.steps
                    .iter()
                    .map(|s| self.snapshot.table(s.table))
                    .collect()
            })
            .collect();
        let families = plan_families(&bucket.templates);
        with_scratch_marks(interner.len(), |marks| {
            let mut alive: Vec<usize> = Vec::new();
            let mut fronts: Vec<Vec<u32>> = vec![Vec::new(); bucket.templates.len()];
            let mut scratch: Vec<u32> = Vec::new();
            let mut rhs_vals: Vec<Value> = Vec::new();
            let mut passes: Vec<bool> = Vec::new();
            for r in rows {
                for fam in &families {
                    alive.clear();
                    for (pos, &t) in fam.members.iter().enumerate() {
                        if self.anchor_passes(bucket.templates[t].q, log, r) {
                            alive.push(pos);
                        }
                    }
                    let Some(&pos0) = alive.first() else { continue };
                    let t0 = fam.members[pos0];
                    let start = log.cols[bucket.templates[t0].q.start_col][r];
                    if start == NULL_ID {
                        continue;
                    }
                    if alive.len() == 1 {
                        // One live template: the dedup-during-iteration
                        // walk is strictly cheaper than the fused pass.
                        let tmpl = &bucket.templates[t0];
                        let frontier = &mut fronts[t0];
                        frontier.clear();
                        frontier.push(start);
                        if self.ad_walk(
                            tmpl,
                            &step_tables[t0],
                            log,
                            r,
                            0,
                            frontier,
                            &mut scratch,
                            marks,
                        ) {
                            hits[t0].push(r as u32);
                        }
                        continue;
                    }
                    // Fused candidate pass: hoist each distinct filter's
                    // anchor-side value, then read every candidate row
                    // once. A failed universal filter skips the
                    // candidate for the whole family.
                    rhs_vals.clear();
                    for f in &fam.filters {
                        rhs_vals.push(match f.rhs {
                            Rhs::Const(c) => c,
                            Rhs::AnchorCol(col) => interner.value(log.cols[col][r]),
                        });
                    }
                    for &pos in &alive {
                        fronts[fam.members[pos]].clear();
                    }
                    let table0 = step_tables[t0][0];
                    'cand: for cand in bucket.templates[t0].rowmaps[0].rows_of(start) {
                        let cand = cand as usize;
                        for &i in &fam.universal {
                            let f = &fam.filters[i];
                            let lhs = interner.value(table0.cols[f.col][cand]);
                            if !f.op.eval(&lhs, &rhs_vals[i]) {
                                continue 'cand;
                            }
                        }
                        passes.clear();
                        passes.resize(fam.filters.len(), true);
                        for (i, f) in fam.filters.iter().enumerate() {
                            if !fam.universal.contains(&i) {
                                let lhs = interner.value(table0.cols[f.col][cand]);
                                passes[i] = f.op.eval(&lhs, &rhs_vals[i]);
                            }
                        }
                        for &pos in &alive {
                            if fam.member_extras[pos].iter().all(|&i| passes[i]) {
                                let t = fam.members[pos];
                                let step = &bucket.templates[t].q.steps[0];
                                let exit = table0.cols[step.exit_col][cand];
                                if exit != NULL_ID {
                                    fronts[t].push(exit);
                                }
                            }
                        }
                    }
                    // Remaining steps and the close check are per
                    // template — frontiers diverge after the decorations.
                    for &pos in &alive {
                        let t = fam.members[pos];
                        let tmpl = &bucket.templates[t];
                        let frontier = &mut fronts[t];
                        frontier.retain(|&v| marks.insert(v));
                        marks.remove_all(frontier);
                        if frontier.is_empty() {
                            continue;
                        }
                        if self.ad_walk(
                            tmpl,
                            &step_tables[t],
                            log,
                            r,
                            1,
                            frontier,
                            &mut scratch,
                            marks,
                        ) {
                            hits[t].push(r as u32);
                        }
                    }
                }
            }
        });
        bucket
            .templates
            .iter()
            .zip(hits)
            .map(|(tmpl, rows)| (tmpl.slot, RowSet::from_sorted_vec(&rows)))
            .collect()
    }

    /// Walks `tmpl`'s steps from `skip` onward for anchor row `r`, with
    /// `frontier` holding the entry frontier, and answers the close
    /// check: whether `r` is explained. Shared by the singleton fast
    /// path (`skip == 0`, frontier seeded with the start value) and the
    /// fused family pass (`skip == 1`, frontier produced by the shared
    /// candidate scan).
    #[allow(clippy::too_many_arguments)]
    fn ad_walk(
        &self,
        tmpl: &PerRowTemplate,
        tables: &[&InternedTable],
        log: &InternedTable,
        r: usize,
        skip: usize,
        frontier: &mut Vec<u32>,
        next: &mut Vec<u32>,
        marks: &mut BitMarks,
    ) -> bool {
        let interner = &self.snapshot.interner;
        let q = tmpl.q;
        let later = q.steps.iter().zip(tables).zip(&tmpl.rowmaps).skip(skip);
        for ((step, table), rowmap) in later {
            next.clear();
            for &v in frontier.iter() {
                'rows: for cand in rowmap.rows_of(v) {
                    let cand = cand as usize;
                    for f in &step.filters {
                        let lhs = interner.value(table.cols[f.col][cand]);
                        let rhs = match f.rhs {
                            Rhs::Const(c) => c,
                            Rhs::AnchorCol(col) => interner.value(log.cols[col][r]),
                        };
                        if !f.op.eval(&lhs, &rhs) {
                            continue 'rows;
                        }
                    }
                    let exit = table.cols[step.exit_col][cand];
                    if exit != NULL_ID && marks.insert(exit) {
                        next.push(exit);
                    }
                }
            }
            marks.remove_all(next);
            std::mem::swap(frontier, next);
            if frontier.is_empty() {
                return false;
            }
        }
        match q.close_col {
            None => true,
            Some(c) => {
                let close = log.cols[c][r];
                close != NULL_ID && frontier.contains(&close)
            }
        }
    }

    /// The shared batch driver behind [`Engine::support_many`] and
    /// [`Engine::explained_rows_many`]: validate everything, build the
    /// batch's missing step maps, row maps, and log partitions once, then
    /// fan evaluation out over scoped threads — `eval` for set-based
    /// queries, `eval_ad` for anchor-dependent ones (which run per row on
    /// the shared row maps).
    fn eval_many<R, EV, AD>(
        &self,
        db: &Database,
        queries: &[ChainQuery],
        opts: EvalOptions,
        eval: EV,
        eval_ad: AD,
    ) -> Vec<Result<R>>
    where
        R: Send,
        EV: Fn(&ChainQuery, &[Arc<StepMap>]) -> R + Sync,
        AD: Fn(&ChainQuery, &[RowMapChunks]) -> R + Sync,
    {
        let mut results: Vec<Option<Result<R>>> = queries
            .iter()
            .map(|q| match q.validate(db) {
                Err(e) => Some(Err(e)),
                Ok(()) => None,
            })
            .collect();

        let batch: Vec<(usize, &ChainQuery)> = results
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_none())
            .map(|(i, _)| (i, &queries[i]))
            .collect();
        self.build_missing_maps(
            batch
                .iter()
                .map(|(_, q)| *q)
                .filter(|q| !q.is_anchor_dependent()),
            opts,
        );
        // Pre-build the (few) log partitions the batch shares, so parallel
        // workers don't redundantly compute the same grouping.
        {
            let mut seen = std::collections::HashSet::new();
            for (_, q) in &batch {
                if !q.is_anchor_dependent() && seen.insert(GroupKey::of(q)) {
                    let _ = self.groups_for(q);
                }
            }
        }

        enum Prepared {
            Grouped(Vec<Arc<StepMap>>),
            PerRow(Vec<RowMapChunks>),
        }
        let with_maps: Vec<(usize, &ChainQuery, Prepared)> = batch
            .into_iter()
            .map(|(i, q)| {
                let prepared = if q.is_anchor_dependent() {
                    Prepared::PerRow(self.rowmaps_for(q))
                } else {
                    Prepared::Grouped(self.maps_for(q, opts))
                };
                (i, q, prepared)
            })
            .collect();
        let outputs = par_map(&with_maps, |(_, q, prepared)| match prepared {
            Prepared::Grouped(maps) => eval(q, maps),
            Prepared::PerRow(rowmaps) => eval_ad(q, rowmaps),
        });
        for ((i, _, _), output) in with_maps.iter().zip(outputs) {
            results[*i] = Some(Ok(output));
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every query resolved"))
            .collect()
    }

    // ----------------------------------------------------------- step maps

    /// Builds (in parallel) every step map the batch needs that is not in
    /// the cache yet.
    fn build_missing_maps<'q>(
        &self,
        queries: impl Iterator<Item = &'q ChainQuery>,
        opts: EvalOptions,
    ) {
        let mut missing: Vec<StepKey> = Vec::new();
        {
            let cache = unpoison(self.cache.lock());
            let mut seen = std::collections::HashSet::new();
            for q in queries {
                for step in &q.steps {
                    let key = StepKey::of(step, opts.dedup);
                    if !cache.contains_key(&key) && seen.insert(key.clone()) {
                        missing.push(key);
                    }
                }
            }
        }
        if missing.is_empty() {
            return;
        }
        let built = par_map(&missing, |key| StepMap::build(key, &self.snapshot));
        let mut cache = unpoison(self.cache.lock());
        for (key, map) in missing.into_iter().zip(built) {
            cache.entry(key).or_insert_with(|| Arc::new(map));
        }
    }

    /// The step maps of `q`, building any that are missing.
    fn maps_for(&self, q: &ChainQuery, opts: EvalOptions) -> Vec<Arc<StepMap>> {
        q.steps
            .iter()
            .map(|step| {
                let key = StepKey::of(step, opts.dedup);
                if let Some(map) = unpoison(self.cache.lock()).get(&key) {
                    return map.clone();
                }
                let built = Arc::new(StepMap::build(&key, &self.snapshot));
                unpoison(self.cache.lock())
                    .entry(key)
                    .or_insert(built)
                    .clone()
            })
            .collect()
    }

    /// The row maps of `q`'s steps (for the anchor-dependent per-row
    /// path), building or **extending** any that are missing or stale:
    /// a stale entry gains one chunk over just the appended rows.
    fn rowmaps_for(&self, q: &ChainQuery) -> Vec<RowMapChunks> {
        q.steps
            .iter()
            .map(|step| self.rowmap_for(step.table, step.enter_col))
            .collect()
    }

    fn rowmap_for(&self, table: TableId, col: ColId) -> RowMapChunks {
        let key = (table, col);
        let it = self.snapshot.table(table);
        let n_rows = it.n_rows;
        let mut state = match unpoison(self.rowmaps.lock()).get(&key) {
            Some(state) if state.covered == n_rows => return state.clone(),
            Some(state) => state.clone(),
            None => RowMapChunks::default(),
        };
        // Extend outside the lock: scan only the uncovered suffix.
        state.chunks.push(Arc::new(RowMap::build_range(
            it,
            col,
            state.covered,
            n_rows,
        )));
        state.covered = n_rows;
        if state.chunks.len() > MAX_CACHE_CHUNKS {
            // Amortized compaction: one full rebuild every
            // `MAX_CACHE_CHUNKS` extensions bounds per-probe overhead.
            state.chunks = vec![Arc::new(RowMap::build(it, col))];
        }
        let mut cache = unpoison(self.rowmaps.lock());
        match cache.get(&key) {
            // A concurrent extender got further, or as far with no more
            // chunks (ties prefer the compacter state, so a paid-for
            // compaction is never discarded): theirs wins.
            Some(existing)
                if existing.covered > state.covered
                    || (existing.covered == state.covered
                        && existing.chunks.len() <= state.chunks.len()) =>
            {
                existing.clone()
            }
            _ => {
                cache.insert(key, state.clone());
                state
            }
        }
    }

    // ----------------------------------------------------------- evaluation

    /// Whether interned log row `r` passes the anchor filters.
    #[inline]
    fn anchor_passes(&self, q: &ChainQuery, log: &InternedTable, r: usize) -> bool {
        self.anchor_passes_filters(&q.anchor_filters, log, r)
    }

    #[inline]
    fn anchor_passes_filters(
        &self,
        filters: &[(ColId, crate::chain::CmpOp, crate::value::Value)],
        log: &InternedTable,
        r: usize,
    ) -> bool {
        filters.iter().all(|(col, op, v)| {
            let lhs = self.snapshot.interner.value(log.cols[*col][r]);
            op.eval(&lhs, v)
        })
    }

    /// Builds one partition chunk for rows `[from, to)` of the key's log.
    fn build_group_chunk(&self, key: &GroupKey, from: usize, to: usize) -> GroupChunk {
        let log = self.snapshot.table(key.log);
        // start id -> (close id, or NULL_ID for open queries) -> rows.
        // The start column drives the scan chunk-wise (no per-element
        // segment resolution); close/filter columns are probed per
        // surviving row.
        let mut groups: HashMap<u32, HashMap<u32, Vec<RowId>>> = HashMap::new();
        for (r, &start) in log.cols[key.start_col].iter_range(from, to) {
            if start == NULL_ID {
                continue;
            }
            if !self.anchor_passes_filters(&key.anchor_filters, log, r) {
                continue;
            }
            let close = match key.close_col {
                Some(c) => {
                    let v = log.cols[c][r];
                    if v == NULL_ID {
                        continue;
                    }
                    v
                }
                None => NULL_ID,
            };
            groups
                .entry(start)
                .or_default()
                .entry(close)
                .or_default()
                .push(r as RowId);
        }
        GroupChunk {
            by_start: groups
                .into_iter()
                .map(|(start, closes)| (start, closes.into_iter().collect()))
                .collect(),
        }
    }

    /// The `(start, close) → rows` partition of a query's anchor shape,
    /// computed once per engine and shared by every query with the same
    /// shape (one scan of the log instead of one per candidate). When the
    /// log has grown since the partition was built, it is **extended** by
    /// a chunk over just the new rows — `O(batch)`, with the old chunks
    /// still shared across forks.
    fn groups_for(&self, q: &ChainQuery) -> GroupChunks {
        let key = GroupKey::of(q);
        let n_rows = self.snapshot.table(q.log).n_rows;
        let mut state = match unpoison(self.groups.lock()).get(&key) {
            Some(state) if state.covered == n_rows => return state.clone(),
            Some(state) => state.clone(),
            None => GroupChunks::default(),
        };
        let chunk = self.build_group_chunk(&key, state.covered, n_rows);
        state.chunks.push(Arc::new(chunk));
        state.covered = n_rows;
        if state.chunks.len() > MAX_CACHE_CHUNKS {
            state.chunks = vec![Arc::new(self.build_group_chunk(&key, 0, n_rows))];
        }
        let mut cache = unpoison(self.groups.lock());
        match cache.get(&key) {
            // See `rowmap_for`: further coverage wins; ties prefer the
            // state with fewer chunks so compactions are kept.
            Some(existing)
                if existing.covered > state.covered
                    || (existing.covered == state.covered
                        && existing.chunks.len() <= state.chunks.len()) =>
            {
                existing.clone()
            }
            _ => {
                cache.insert(key, state.clone());
                state
            }
        }
    }

    /// Pair-invariant evaluation on interned ids (sorted ascending, exactly
    /// as [`ChainQuery::explained_rows`] returns them).
    fn explained_grouped(&self, q: &ChainQuery, maps: &[Arc<StepMap>]) -> Vec<RowId> {
        let mut out = self.explained_grouped_unsorted(q, maps);
        out.sort_unstable();
        out
    }

    /// The explained rows in group-iteration (arbitrary) order — the
    /// support path uses this to skip the sort it doesn't need.
    ///
    /// The partition is chunked by row range ([`GroupChunks`]); the chain
    /// is still walked **once per distinct start across all chunks**
    /// (deduplicated via the scratch bitset), so chunking never repeats a
    /// walk — each surviving start then collects its rows from every
    /// chunk's bucket.
    fn explained_grouped_unsorted(&self, q: &ChainQuery, maps: &[Arc<StepMap>]) -> Vec<RowId> {
        let groups = self.groups_for(q);
        let mut out = Vec::new();
        with_scratch_marks(self.snapshot.interner.len(), |marks| {
            // Distinct starts across chunks.
            let mut starts: Vec<u32> = Vec::new();
            for chunk in &groups.chunks {
                for &start in chunk.by_start.keys() {
                    if marks.insert(start) {
                        starts.push(start);
                    }
                }
            }
            marks.remove_all(&starts);

            let mut frontier: Vec<u32> = Vec::new();
            let mut next: Vec<u32> = Vec::new();
            for &start in &starts {
                frontier.clear();
                frontier.push(start);
                let mut dead = false;
                for map in maps {
                    next.clear();
                    for &v in &frontier {
                        for &exit in map.exits_of(v) {
                            if marks.insert(exit) {
                                next.push(exit);
                            }
                        }
                    }
                    marks.remove_all(&next);
                    std::mem::swap(&mut frontier, &mut next);
                    if frontier.is_empty() {
                        dead = true;
                        break;
                    }
                }
                if dead {
                    continue;
                }
                match q.close_col {
                    None => {
                        for chunk in &groups.chunks {
                            if let Some(closes) = chunk.by_start.get(&start) {
                                for (_, rows) in closes {
                                    out.extend_from_slice(rows);
                                }
                            }
                        }
                    }
                    Some(_) => {
                        for &v in &frontier {
                            marks.insert(v);
                        }
                        for chunk in &groups.chunks {
                            if let Some(closes) = chunk.by_start.get(&start) {
                                for (close, rows) in closes {
                                    if marks.contains(*close) {
                                        out.extend_from_slice(rows);
                                    }
                                }
                            }
                        }
                        marks.remove_all(&frontier);
                    }
                }
            }
        });
        out
    }

    /// `COUNT(DISTINCT lid)` over the explained rows.
    fn support_grouped(&self, q: &ChainQuery, maps: &[Arc<StepMap>]) -> usize {
        let rows = self.explained_grouped_unsorted(q, maps);
        self.distinct_lids(q, &rows)
    }

    /// Distinct log-id count over a set of explained rows (interning is
    /// exact, so distinct ids are exactly distinct values).
    fn distinct_lids(&self, q: &ChainQuery, rows: &[RowId]) -> usize {
        let log = self.snapshot.table(q.log);
        let lid_col = &log.cols[q.lid_col];
        let mut lids = std::collections::HashSet::with_capacity(rows.len());
        for &r in rows {
            lids.insert(lid_col[r as usize]);
        }
        lids.len()
    }

    // ----------------------------------------------- anchor-dependent path

    /// Per-row evaluation of an anchor-dependent decorated query on the
    /// interned snapshot — identical results to the row evaluator's
    /// fallback, but probing shared CSR row maps instead of per-call hash
    /// indexes, with bitset frontiers instead of `HashSet<Value>`s.
    /// Returns rows in ascending order (the scan order).
    fn explained_anchor_dep(&self, q: &ChainQuery, rowmaps: &[RowMapChunks]) -> Vec<RowId> {
        let log = self.snapshot.table(q.log);
        let interner = &self.snapshot.interner;
        let step_tables: Vec<&InternedTable> = q
            .steps
            .iter()
            .map(|s| self.snapshot.table(s.table))
            .collect();
        let mut out = Vec::new();
        with_scratch_marks(interner.len(), |marks| {
            let mut frontier: Vec<u32> = Vec::new();
            let mut next: Vec<u32> = Vec::new();
            for r in 0..log.n_rows {
                if !self.anchor_passes(q, log, r) {
                    continue;
                }
                let start = log.cols[q.start_col][r];
                if start == NULL_ID {
                    continue;
                }
                frontier.clear();
                frontier.push(start);
                let mut dead = false;
                for ((step, table), rowmap) in q.steps.iter().zip(&step_tables).zip(rowmaps) {
                    next.clear();
                    for &v in &frontier {
                        'rows: for cand in rowmap.rows_of(v) {
                            let cand = cand as usize;
                            for f in &step.filters {
                                let lhs = interner.value(table.cols[f.col][cand]);
                                let rhs = match f.rhs {
                                    Rhs::Const(c) => c,
                                    Rhs::AnchorCol(col) => interner.value(log.cols[col][r]),
                                };
                                if !f.op.eval(&lhs, &rhs) {
                                    continue 'rows;
                                }
                            }
                            let exit = table.cols[step.exit_col][cand];
                            if exit != NULL_ID && marks.insert(exit) {
                                next.push(exit);
                            }
                        }
                    }
                    marks.remove_all(&next);
                    std::mem::swap(&mut frontier, &mut next);
                    if frontier.is_empty() {
                        dead = true;
                        break;
                    }
                }
                if dead {
                    continue;
                }
                let explained = match q.close_col {
                    None => true,
                    Some(c) => {
                        let close = log.cols[c][r];
                        close != NULL_ID && frontier.contains(&close)
                    }
                };
                if explained {
                    out.push(r as RowId);
                }
            }
        });
        out
    }
}

std::thread_local! {
    /// Per-thread scratch bitset for chain walks. Every evaluation leaves
    /// it fully cleared (incremental `remove_all`), so reusing it across
    /// queries avoids re-zeroing `O(id-space)` words per candidate.
    static SCRATCH_MARKS: std::cell::RefCell<BitMarks> =
        const { std::cell::RefCell::new(BitMarks { words: Vec::new() }) };
}

/// Runs `f` with the thread's scratch bitset, grown to cover `n_ids`.
///
/// If `f` panics mid-walk the bitset is torn (bits left set), which would
/// silently corrupt the *next* query on this thread once the panic is
/// caught (a long-running service catches panics per request). The guard
/// re-zeroes the whole bitset on unwind — the `O(id-space)` cost is paid
/// only on the panic path.
fn with_scratch_marks<R>(n_ids: usize, f: impl FnOnce(&mut BitMarks) -> R) -> R {
    SCRATCH_MARKS.with(|cell| {
        let mut marks = cell.borrow_mut();
        marks.reserve_ids(n_ids);
        struct ClearOnUnwind<'a>(&'a mut BitMarks);
        impl Drop for ClearOnUnwind<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.words.fill(0);
                }
            }
        }
        let guard = ClearOnUnwind(&mut marks);
        f(guard.0)
    })
}

/// A reusable bitset over the dense id space, cleared incrementally so a
/// long mining run never pays `O(id-space)` per frontier step (nor, via
/// [`SCRATCH_MARKS`], an `O(id-space)` re-zeroing per candidate query).
struct BitMarks {
    words: Vec<u64>,
}

impl BitMarks {
    /// Grows (zero-filled) to cover `n_ids`; never shrinks.
    fn reserve_ids(&mut self, n_ids: usize) {
        let need = n_ids.div_ceil(64);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Sets the bit; returns true when it was previously clear.
    #[inline]
    fn insert(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        let bit = 1u64 << b;
        let was_clear = self.words[w] & bit == 0;
        self.words[w] |= bit;
        was_clear
    }

    #[inline]
    fn contains(&self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// Clears exactly the given ids.
    #[inline]
    fn remove_all(&mut self, ids: &[u32]) {
        for &id in ids {
            let (w, b) = (id as usize / 64, id as usize % 64);
            self.words[w] &= !(1u64 << b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainStep, CmpOp, Rhs, StepFilter};
    use crate::database::TableId;
    use crate::types::DataType;
    use crate::value::Value;

    /// Figure 3's database (same shape as the chain evaluator's tests).
    fn figure3_db() -> (Database, TableId, TableId, TableId) {
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("Date", DataType::Date),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        let appt = db
            .create_table(
                "Appointments",
                &[
                    ("Patient", DataType::Int),
                    ("Date", DataType::Date),
                    ("Doctor", DataType::Int),
                ],
            )
            .unwrap();
        let info = db
            .create_table(
                "Doctor_Info",
                &[("Doctor", DataType::Int), ("Department", DataType::Str)],
            )
            .unwrap();
        let ped = db.str_value("Pediatrics");
        db.insert(appt, vec![Value::Int(10), Value::Date(1), Value::Int(1)])
            .unwrap();
        db.insert(appt, vec![Value::Int(11), Value::Date(2), Value::Int(2)])
            .unwrap();
        db.insert(info, vec![Value::Int(2), ped]).unwrap();
        db.insert(info, vec![Value::Int(1), ped]).unwrap();
        db.insert(
            log,
            vec![Value::Int(1), Value::Date(1), Value::Int(1), Value::Int(10)],
        )
        .unwrap();
        db.insert(
            log,
            vec![Value::Int(2), Value::Date(2), Value::Int(1), Value::Int(11)],
        )
        .unwrap();
        (db, log, appt, info)
    }

    fn template_a(log: TableId, appt: TableId) -> ChainQuery {
        ChainQuery {
            log,
            lid_col: 0,
            start_col: 3,
            steps: vec![ChainStep::new(appt, 0, 2)],
            close_col: Some(2),
            anchor_filters: vec![],
        }
    }

    fn template_b(log: TableId, appt: TableId, info: TableId) -> ChainQuery {
        ChainQuery {
            log,
            lid_col: 0,
            start_col: 3,
            steps: vec![
                ChainStep::new(appt, 0, 2),
                ChainStep::new(info, 0, 1),
                ChainStep::new(info, 1, 0),
            ],
            close_col: Some(2),
            anchor_filters: vec![],
        }
    }

    #[test]
    fn matches_row_evaluator_on_figure3() {
        let (db, log, appt, info) = figure3_db();
        let engine = Engine::new(&db);
        let opts = EvalOptions::default();
        for q in [template_a(log, appt), template_b(log, appt, info)] {
            assert_eq!(
                engine.explained_rows(&db, &q, opts).unwrap(),
                q.explained_rows(&db, opts).unwrap()
            );
            assert_eq!(
                engine.support(&db, &q, opts).unwrap(),
                q.support(&db, opts).unwrap()
            );
        }
    }

    #[test]
    fn eval_suite_range_partitions_by_anchor_row() {
        let (db, log, appt, info) = figure3_db();
        let engine = Engine::new(&db);
        let opts = EvalOptions::default();
        let mut decorated = template_a(log, appt);
        decorated.steps[0].filters.push(StepFilter {
            col: 1,
            op: CmpOp::Le,
            rhs: Rhs::AnchorCol(1),
        });
        let queries = vec![
            template_a(log, appt),
            template_b(log, appt, info),
            decorated,
        ];
        let full: Vec<RowSet> = engine
            .eval_suite(&db, &queries, opts)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let n = db.table(log).len();
        // The whole range is the whole answer...
        let whole: Vec<RowSet> = engine
            .eval_suite_range(&db, &queries, opts, 0, n)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(whole, full);
        // ...and any split's union reassembles it, because each anchor
        // row is evaluated independently of every other log row. An
        // out-of-bounds hi is clamped, never a panic.
        for k in 0..=n {
            let head = engine.eval_suite_range(&db, &queries, opts, 0, k);
            let tail = engine.eval_suite_range(&db, &queries, opts, k, n + 7);
            for ((h, t), f) in head.into_iter().zip(tail).zip(&full) {
                let mut acc = h.unwrap();
                acc.union_with(&t.unwrap());
                assert_eq!(&acc, f);
            }
        }
    }

    #[test]
    fn open_and_filtered_queries_match() {
        let (db, log, appt, _) = figure3_db();
        let engine = Engine::new(&db);
        let opts = EvalOptions::default();
        let open = ChainQuery {
            close_col: None,
            ..template_a(log, appt)
        };
        assert_eq!(
            engine.explained_rows(&db, &open, opts).unwrap(),
            open.explained_rows(&db, opts).unwrap()
        );
        let mut filtered = template_a(log, appt);
        filtered.anchor_filters = vec![(1, CmpOp::Ge, Value::Date(2))];
        assert_eq!(
            engine.explained_rows(&db, &filtered, opts).unwrap(),
            filtered.explained_rows(&db, opts).unwrap()
        );
    }

    #[test]
    fn anchor_dependent_queries_take_the_row_map_path() {
        let (db, log, appt, _) = figure3_db();
        let engine = Engine::new(&db);
        let mut q = template_a(log, appt);
        q.steps[0].filters.push(StepFilter {
            col: 1,
            op: CmpOp::Le,
            rhs: Rhs::AnchorCol(1),
        });
        assert!(q.is_anchor_dependent());
        let opts = EvalOptions::default();
        assert_eq!(
            engine.explained_rows(&db, &q, opts).unwrap(),
            q.explained_rows(&db, opts).unwrap()
        );
        assert_eq!(
            engine.support(&db, &q, opts).unwrap(),
            q.support(&db, opts).unwrap()
        );
        // The per-row path populates the row-map cache, never the step-map
        // cache (its identity would be wrong for anchor decorations).
        assert_eq!(engine.cached_step_maps(), 0);
        assert_eq!(engine.cached_row_maps(), 1);
        // The undecorated variant shares nothing with it.
        let plain = template_a(log, appt);
        let _ = engine.explained_rows(&db, &plain, opts).unwrap();
        assert_eq!(engine.cached_step_maps(), 1);
        assert_eq!(engine.cached_row_maps(), 1);
    }

    #[test]
    fn step_maps_are_shared_across_queries() {
        let (db, log, appt, info) = figure3_db();
        let engine = Engine::new(&db);
        let opts = EvalOptions::default();
        let queries = vec![
            template_a(log, appt),
            template_b(log, appt, info),
            ChainQuery {
                close_col: None,
                ..template_a(log, appt)
            },
        ];
        let supports = engine.support_many(&db, &queries, opts);
        // A and B share the Appointments step: 1 + 2 extra for B, 0 new for
        // the open variant = 3 distinct maps.
        assert_eq!(engine.cached_step_maps(), 3);
        let expect: Vec<usize> = queries
            .iter()
            .map(|q| q.support(&db, opts).unwrap())
            .collect();
        let got: Vec<usize> = supports.into_iter().map(|s| s.unwrap()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn support_many_reports_invalid_queries_in_place() {
        let (db, log, appt, _) = figure3_db();
        let engine = Engine::new(&db);
        let good = template_a(log, appt);
        let bad = ChainQuery {
            start_col: 9,
            ..template_a(log, appt)
        };
        let results = engine.support_many(&db, &[bad, good.clone()], EvalOptions::default());
        assert!(results[0].is_err());
        assert_eq!(*results[1].as_ref().unwrap(), 1);
    }

    #[test]
    fn explained_rows_many_matches_one_by_one() {
        let (db, log, appt, info) = figure3_db();
        let engine = Engine::new(&db);
        let opts = EvalOptions::default();
        let queries = vec![
            template_a(log, appt),
            template_b(log, appt, info),
            ChainQuery {
                close_col: None,
                ..template_a(log, appt)
            },
            ChainQuery {
                start_col: 9, // invalid
                ..template_a(log, appt)
            },
        ];
        let batch = engine.explained_rows_many(&db, &queries, opts);
        for (q, got) in queries.iter().take(3).zip(&batch) {
            assert_eq!(got.as_ref().unwrap(), &q.explained_rows(&db, opts).unwrap());
        }
        assert!(batch[3].is_err());
    }

    #[test]
    fn refresh_tracks_appends_and_invalidates_selectively() {
        let (mut db, log, appt, info) = figure3_db();
        let mut engine = Engine::new(&db);
        let opts = EvalOptions::default();
        let qa = template_a(log, appt);
        let qb = template_b(log, appt, info);
        // Warm the caches: A and B share the Appointments map; B adds two
        // Doctor_Info maps. One log partition (shared anchor shape).
        let _ = engine.support_many(&db, &[qa.clone(), qb.clone()], opts);
        assert_eq!(engine.cached_step_maps(), 3);
        assert_eq!(engine.cached_partitions(), 1);

        // Append an appointment: patient 11 now also sees doctor 1.
        db.insert(appt, vec![Value::Int(11), Value::Date(3), Value::Int(1)])
            .unwrap();
        let stats = engine.refresh(&db).unwrap();
        assert_eq!(stats.delta.grown, vec![appt]);
        assert_eq!(stats.delta.new_rows, 1);
        // Only the Appointments map is dropped; Doctor_Info maps and the
        // log partition stay warm.
        assert_eq!(stats.dropped_step_maps, 1);
        assert_eq!(stats.stale_partitions, 0);
        assert_eq!(engine.cached_step_maps(), 2);
        assert_eq!(engine.cached_partitions(), 1);
        for q in [&qa, &qb] {
            assert_eq!(
                engine.explained_rows(&db, q, opts).unwrap(),
                q.explained_rows(&db, opts).unwrap()
            );
        }

        // Append a log row: the partition goes stale (kept, extended
        // over just the new row on next use); the step maps stay.
        db.insert(
            log,
            vec![Value::Int(3), Value::Date(3), Value::Int(2), Value::Int(10)],
        )
        .unwrap();
        let stats = engine.refresh(&db).unwrap();
        assert_eq!(stats.delta.grown, vec![log]);
        assert_eq!(stats.stale_partitions, 1);
        assert_eq!(stats.dropped_step_maps, 0);
        assert_eq!(
            engine.cached_partitions(),
            1,
            "the stale partition is kept, not dropped"
        );
        for q in [&qa, &qb] {
            assert_eq!(
                engine.explained_rows(&db, q, opts).unwrap(),
                q.explained_rows(&db, opts).unwrap()
            );
            assert_eq!(
                engine.support(&db, q, opts).unwrap(),
                q.support(&db, opts).unwrap()
            );
        }

        // Nothing appended: a refresh is a cheap no-op.
        let stats = engine.refresh(&db).unwrap();
        assert!(stats.delta.is_empty());
        assert_eq!(engine.cached_step_maps(), 3);
    }

    #[test]
    fn refresh_picks_up_tables_created_after_construction() {
        let (mut db, log, appt, _) = figure3_db();
        let mut engine = Engine::new(&db);
        let extra = db
            .create_table(
                "Extra",
                &[("Patient", DataType::Int), ("Owner", DataType::Int)],
            )
            .unwrap();
        db.insert(extra, vec![Value::Int(11), Value::Int(1)])
            .unwrap();
        let stats = engine.refresh(&db).unwrap();
        assert_eq!(stats.delta.grown, vec![extra]);
        let q = ChainQuery {
            steps: vec![ChainStep::new(extra, 0, 1)],
            ..template_a(log, appt)
        };
        assert_eq!(
            engine
                .explained_rows(&db, &q, EvalOptions::default())
                .unwrap(),
            q.explained_rows(&db, EvalOptions::default()).unwrap()
        );
    }

    #[test]
    fn stale_step_maps_tolerate_ids_interned_after_refresh() {
        let (mut db, log, appt, info) = figure3_db();
        let mut engine = Engine::new(&db);
        let opts = EvalOptions::default();
        let qb = template_b(log, appt, info);
        let _ = engine.explained_rows(&db, &qb, opts).unwrap();
        // Appending a log row with brand-new values grows the id space;
        // the retained Appointments/Doctor_Info maps must treat those new
        // ids as "no exits" rather than indexing out of bounds.
        db.insert(
            log,
            vec![
                Value::Int(99),
                Value::Date(9),
                Value::Int(77),
                Value::Int(88),
            ],
        )
        .unwrap();
        let stats = engine.refresh(&db).unwrap();
        assert_eq!(stats.dropped_step_maps, 0);
        assert_eq!(
            engine.explained_rows(&db, &qb, opts).unwrap(),
            qb.explained_rows(&db, opts).unwrap()
        );
    }

    #[test]
    fn poisoned_cache_locks_do_not_kill_subsequent_queries() {
        let (db, log, appt, info) = figure3_db();
        let engine = Engine::new(&db);
        let opts = EvalOptions::default();
        let q = template_b(log, appt, info);
        let expected = q.explained_rows(&db, opts).unwrap();
        // Poison every internal cache lock the way a panicking query
        // would: panic on another thread while holding the guard.
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _cache = engine.cache.lock().unwrap();
                    let _groups = engine.groups.lock().unwrap();
                    let _rowmaps = engine.rowmaps.lock().unwrap();
                    panic!("simulated mid-query panic");
                })
                .join()
                .unwrap_err();
        });
        assert!(engine.cache.lock().is_err(), "cache lock is poisoned");
        // The engine recovers the guards and keeps answering correctly,
        // including cache misses (inserts into the poisoned maps).
        assert_eq!(engine.explained_rows(&db, &q, opts).unwrap(), expected);
        assert_eq!(
            engine.support(&db, &q, opts).unwrap(),
            q.support(&db, opts).unwrap()
        );
        let mut decorated = template_a(log, appt);
        decorated.steps[0].filters.push(StepFilter {
            col: 1,
            op: CmpOp::Le,
            rhs: Rhs::AnchorCol(1),
        });
        assert_eq!(
            engine.explained_rows(&db, &decorated, opts).unwrap(),
            decorated.explained_rows(&db, opts).unwrap()
        );
    }

    #[test]
    fn panicking_evaluation_leaves_the_engine_usable() {
        // An engine snapshotted before a table existed: evaluating a query
        // over the new table against the *stale* snapshot panics (the
        // misuse the docs warn about). The panic must not corrupt the
        // engine for well-formed queries that follow.
        let (mut db, log, appt, _) = figure3_db();
        let engine = Engine::new(&db);
        let opts = EvalOptions::default();
        let q = template_a(log, appt);
        let expected = q.explained_rows(&db, opts).unwrap();
        let extra = db
            .create_table(
                "Extra",
                &[("Patient", DataType::Int), ("Owner", DataType::Int)],
            )
            .unwrap();
        db.insert(extra, vec![Value::Int(10), Value::Int(1)])
            .unwrap();
        let stale = ChainQuery {
            steps: vec![ChainStep::new(extra, 0, 1)],
            ..template_a(log, appt)
        };
        for _ in 0..2 {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.explained_rows(&db, &stale, opts)
            }));
            assert!(caught.is_err(), "stale-snapshot evaluation panics");
            // Same thread, same scratch state: results stay exact.
            assert_eq!(engine.explained_rows(&db, &q, opts).unwrap(), expected);
            assert_eq!(
                engine.support(&db, &q, opts).unwrap(),
                q.support(&db, opts).unwrap()
            );
        }
        // The batch path recovers too (the panic crosses par_map).
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.support_many(&db, std::slice::from_ref(&stale), opts)
        }));
        assert!(caught.is_err());
        let batch = engine.support_many(&db, std::slice::from_ref(&q), opts);
        assert_eq!(*batch[0].as_ref().unwrap(), q.support(&db, opts).unwrap());
    }

    #[test]
    fn refresh_error_leaves_the_engine_answering() {
        let (db, log, appt, _) = figure3_db();
        let mut engine = Engine::new(&db);
        let opts = EvalOptions::default();
        let q = template_a(log, appt);
        let expected = engine.explained_rows(&db, &q, opts).unwrap();
        // Refreshing against an unrelated, shorter database is refused...
        let (other, ..) = {
            let mut other = Database::new();
            let l = other
                .create_table("OnlyLog", &[("Lid", DataType::Int)])
                .unwrap();
            (other, l)
        };
        let err = engine.refresh(&other).unwrap_err();
        assert!(matches!(err, RefreshError::CatalogShrank { .. }));
        // ...and the engine still answers from its intact snapshot.
        assert_eq!(engine.explained_rows(&db, &q, opts).unwrap(), expected);
    }

    #[test]
    fn dedup_toggle_changes_maps_not_results() {
        let (mut db, log, appt, info) = figure3_db();
        db.insert(appt, vec![Value::Int(10), Value::Date(5), Value::Int(1)])
            .unwrap();
        let engine = Engine::new(&db);
        let q = template_b(log, appt, info);
        let with = engine
            .support(&db, &q, EvalOptions { dedup: true })
            .unwrap();
        let without = engine
            .support(&db, &q, EvalOptions { dedup: false })
            .unwrap();
        assert_eq!(with, without);
        // Both dedup settings cached their own maps.
        assert_eq!(engine.cached_step_maps(), 6);
    }
}
