//! The batch chain-query evaluation engine.
//!
//! [`ChainQuery::support`](crate::ChainQuery::support) is correct but
//! rebuilds every step's `enter → {exits}` map from a full table scan on
//! every call, keys its frontiers on full tagged [`Value`](crate::Value)s,
//! and evaluates one query at a time. Template mining evaluates thousands
//! of candidate queries against the *same* database, and candidate paths
//! overwhelmingly share steps — exactly the redundancy this module removes.
//! Three layers (see the crate docs for the architecture overview):
//!
//! 1. **Interning** ([`interner`]): one scan snapshots the database into
//!    columnar dense-`u32` form; frontier sets become bitset-deduplicated
//!    `Vec<u32>`s.
//! 2. **Step-map cache** ([`stepmap`]): each distinct step — keyed on
//!    `(table, enter_col, exit_col, const-filters, dedup)` — is built once
//!    per [`Engine`] and shared by every query that uses it.
//! 3. **Batch parallelism** ([`parallel`]): [`Engine::support_many`]
//!    evaluates a whole frontier of candidates against one cache, fanned
//!    out over scoped threads.
//!
//! Results are **identical** to the row evaluator's — the same
//! `explained_rows` and `support` for every query class (the
//! `engine_equivalence` integration test enforces this differentially).
//! Queries whose decorations reference the anchor log row have no shareable
//! step maps; the engine transparently routes them to the per-row
//! evaluator.
//!
//! The engine snapshots at construction: rows inserted into the `Database`
//! afterwards are not visible to it. Build one engine per mining run (or
//! after each batch of loads), not one per query.

mod interner;
mod parallel;
mod stepmap;

pub use interner::{InternedDb, InternedTable, Interner, NULL_ID};
pub use parallel::{par_map, par_map_with};

use crate::chain::{ChainQuery, EvalOptions};
use crate::database::Database;
use crate::error::Result;
use crate::table::RowId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use stepmap::{StepKey, StepMap};

/// A shared evaluation engine over one database snapshot. See the module
/// docs.
#[derive(Debug)]
pub struct Engine {
    snapshot: InternedDb,
    cache: Mutex<HashMap<StepKey, Arc<StepMap>>>,
    groups: Mutex<HashMap<GroupKey, Arc<LogGroups>>>,
}

/// Identity of a log grouping: all queries sharing the anchor shape (same
/// log table, start/close columns and anchor filters) walk the same
/// `(start, close) → rows` partition, so it is computed once per engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    log: crate::database::TableId,
    start_col: crate::types::ColId,
    close_col: Option<crate::types::ColId>,
    anchor_filters: Vec<(
        crate::types::ColId,
        crate::chain::CmpOp,
        crate::value::Value,
    )>,
}

impl GroupKey {
    fn of(q: &ChainQuery) -> GroupKey {
        GroupKey {
            log: q.log,
            start_col: q.start_col,
            close_col: q.close_col,
            anchor_filters: q.anchor_filters.clone(),
        }
    }
}

/// One close bucket of a start group: `(close id, rows)`.
type CloseBucket = (u32, Vec<RowId>);

/// The log partitioned by `(start id, close id)`, flattened for iteration.
#[derive(Debug)]
struct LogGroups {
    /// `(start, per-close rows)`; for open queries the close id is
    /// [`NULL_ID`] (one bucket per start).
    by_start: Vec<(u32, Vec<CloseBucket>)>,
}

impl Engine {
    /// Snapshots `db` (one scan of every table) and starts with an empty
    /// step-map cache.
    pub fn new(db: &Database) -> Self {
        Engine {
            snapshot: InternedDb::snapshot(db),
            cache: Mutex::new(HashMap::new()),
            groups: Mutex::new(HashMap::new()),
        }
    }

    /// The interned snapshot (exposed for diagnostics and tests).
    pub fn snapshot(&self) -> &InternedDb {
        &self.snapshot
    }

    /// Number of distinct step maps built so far.
    pub fn cached_step_maps(&self) -> usize {
        self.cache.lock().expect("engine cache poisoned").len()
    }

    /// Log row ids explained by `q`, identical to
    /// [`ChainQuery::explained_rows`].
    ///
    /// `db` is used for validation and for the per-row fallback on
    /// anchor-dependent queries; set-based evaluation runs on the snapshot.
    pub fn explained_rows(
        &self,
        db: &Database,
        q: &ChainQuery,
        opts: EvalOptions,
    ) -> Result<Vec<RowId>> {
        q.validate(db)?;
        if q.is_anchor_dependent() {
            return q.explained_rows(db, opts);
        }
        let maps = self.maps_for(q, opts);
        Ok(self.explained_grouped(q, &maps))
    }

    /// Support of `q` (distinct explained log ids), identical to
    /// [`ChainQuery::support`].
    pub fn support(&self, db: &Database, q: &ChainQuery, opts: EvalOptions) -> Result<usize> {
        q.validate(db)?;
        if q.is_anchor_dependent() {
            return q.support(db, opts);
        }
        let maps = self.maps_for(q, opts);
        Ok(self.support_grouped(q, &maps))
    }

    /// Batch support evaluation: one result per query, in input order.
    ///
    /// Builds every missing step map first (in parallel), then evaluates
    /// the whole batch in parallel against the shared cache. This is the
    /// API mining rounds call once per candidate frontier.
    pub fn support_many(
        &self,
        db: &Database,
        queries: &[ChainQuery],
        opts: EvalOptions,
    ) -> Vec<Result<usize>> {
        let mut results: Vec<Option<Result<usize>>> = queries
            .iter()
            .map(|q| match q.validate(db) {
                Err(e) => Some(Err(e)),
                Ok(()) => None,
            })
            .collect();

        // Anchor-dependent queries have no shareable maps: per-row fallback,
        // sequentially (the live Database cannot cross threads).
        for (slot, q) in results.iter_mut().zip(queries) {
            if slot.is_none() && q.is_anchor_dependent() {
                *slot = Some(q.support(db, opts));
            }
        }

        let batch: Vec<(usize, &ChainQuery)> = results
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_none())
            .map(|(i, _)| (i, &queries[i]))
            .collect();
        self.build_missing_maps(batch.iter().map(|(_, q)| *q), opts);
        // Pre-build the (few) log partitions the batch shares, so parallel
        // workers don't redundantly compute the same grouping.
        {
            let mut seen = std::collections::HashSet::new();
            for (_, q) in &batch {
                if seen.insert(GroupKey::of(q)) {
                    let _ = self.groups_for(q);
                }
            }
        }

        let with_maps: Vec<(usize, &ChainQuery, Vec<Arc<StepMap>>)> = batch
            .into_iter()
            .map(|(i, q)| {
                let maps = self.maps_for(q, opts);
                (i, q, maps)
            })
            .collect();
        let supports = par_map(&with_maps, |(_, q, maps)| self.support_grouped(q, maps));
        for ((i, _, _), support) in with_maps.iter().zip(supports) {
            results[*i] = Some(Ok(support));
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every query resolved"))
            .collect()
    }

    // ----------------------------------------------------------- step maps

    /// Builds (in parallel) every step map the batch needs that is not in
    /// the cache yet.
    fn build_missing_maps<'q>(
        &self,
        queries: impl Iterator<Item = &'q ChainQuery>,
        opts: EvalOptions,
    ) {
        let mut missing: Vec<StepKey> = Vec::new();
        {
            let cache = self.cache.lock().expect("engine cache poisoned");
            let mut seen = std::collections::HashSet::new();
            for q in queries {
                for step in &q.steps {
                    let key = StepKey::of(step, opts.dedup);
                    if !cache.contains_key(&key) && seen.insert(key.clone()) {
                        missing.push(key);
                    }
                }
            }
        }
        if missing.is_empty() {
            return;
        }
        let built = par_map(&missing, |key| StepMap::build(key, &self.snapshot));
        let mut cache = self.cache.lock().expect("engine cache poisoned");
        for (key, map) in missing.into_iter().zip(built) {
            cache.entry(key).or_insert_with(|| Arc::new(map));
        }
    }

    /// The step maps of `q`, building any that are missing.
    fn maps_for(&self, q: &ChainQuery, opts: EvalOptions) -> Vec<Arc<StepMap>> {
        q.steps
            .iter()
            .map(|step| {
                let key = StepKey::of(step, opts.dedup);
                if let Some(map) = self.cache.lock().expect("engine cache poisoned").get(&key) {
                    return map.clone();
                }
                let built = Arc::new(StepMap::build(&key, &self.snapshot));
                self.cache
                    .lock()
                    .expect("engine cache poisoned")
                    .entry(key)
                    .or_insert(built)
                    .clone()
            })
            .collect()
    }

    // ----------------------------------------------------------- evaluation

    /// Whether interned log row `r` passes the anchor filters.
    #[inline]
    fn anchor_passes(&self, q: &ChainQuery, log: &InternedTable, r: usize) -> bool {
        q.anchor_filters.iter().all(|(col, op, v)| {
            let lhs = self.snapshot.interner.value(log.cols[*col][r]);
            op.eval(&lhs, v)
        })
    }

    /// The `(start, close) → rows` partition of a query's anchor shape,
    /// computed once per engine and shared by every query with the same
    /// shape (one scan of the log instead of one per candidate).
    fn groups_for(&self, q: &ChainQuery) -> Arc<LogGroups> {
        let key = GroupKey::of(q);
        if let Some(groups) = self
            .groups
            .lock()
            .expect("engine groups poisoned")
            .get(&key)
        {
            return groups.clone();
        }
        let log = self.snapshot.table(q.log);
        // start id -> (close id, or NULL_ID for open queries) -> rows.
        let mut groups: HashMap<u32, HashMap<u32, Vec<RowId>>> = HashMap::new();
        for r in 0..log.n_rows {
            if !self.anchor_passes(q, log, r) {
                continue;
            }
            let start = log.cols[q.start_col][r];
            if start == NULL_ID {
                continue;
            }
            let close = match q.close_col {
                Some(c) => {
                    let v = log.cols[c][r];
                    if v == NULL_ID {
                        continue;
                    }
                    v
                }
                None => NULL_ID,
            };
            groups
                .entry(start)
                .or_default()
                .entry(close)
                .or_default()
                .push(r as RowId);
        }
        let by_start = groups
            .into_iter()
            .map(|(start, closes)| (start, closes.into_iter().collect()))
            .collect();
        let built = Arc::new(LogGroups { by_start });
        self.groups
            .lock()
            .expect("engine groups poisoned")
            .entry(key)
            .or_insert(built)
            .clone()
    }

    /// Pair-invariant evaluation on interned ids (sorted ascending, exactly
    /// as [`ChainQuery::explained_rows`] returns them).
    fn explained_grouped(&self, q: &ChainQuery, maps: &[Arc<StepMap>]) -> Vec<RowId> {
        let mut out = self.explained_grouped_unsorted(q, maps);
        out.sort_unstable();
        out
    }

    /// The explained rows in group-iteration (arbitrary) order — the
    /// support path uses this to skip the sort it doesn't need.
    fn explained_grouped_unsorted(&self, q: &ChainQuery, maps: &[Arc<StepMap>]) -> Vec<RowId> {
        let groups = self.groups_for(q);
        let mut out = Vec::new();
        SCRATCH_MARKS.with(|cell| {
            let mut marks = cell.borrow_mut();
            marks.reserve_ids(self.snapshot.interner.len());
            let mut frontier: Vec<u32> = Vec::new();
            let mut next: Vec<u32> = Vec::new();
            for (start, closes) in &groups.by_start {
                frontier.clear();
                frontier.push(*start);
                let mut dead = false;
                for map in maps {
                    next.clear();
                    for &v in &frontier {
                        for &exit in map.exits_of(v) {
                            if marks.insert(exit) {
                                next.push(exit);
                            }
                        }
                    }
                    marks.remove_all(&next);
                    std::mem::swap(&mut frontier, &mut next);
                    if frontier.is_empty() {
                        dead = true;
                        break;
                    }
                }
                if dead {
                    continue;
                }
                match q.close_col {
                    None => {
                        for (_, rows) in closes {
                            out.extend_from_slice(rows);
                        }
                    }
                    Some(_) => {
                        for &v in &frontier {
                            marks.insert(v);
                        }
                        for (close, rows) in closes {
                            if marks.contains(*close) {
                                out.extend_from_slice(rows);
                            }
                        }
                        marks.remove_all(&frontier);
                    }
                }
            }
        });
        out
    }

    /// `COUNT(DISTINCT lid)` over the explained rows.
    fn support_grouped(&self, q: &ChainQuery, maps: &[Arc<StepMap>]) -> usize {
        let rows = self.explained_grouped_unsorted(q, maps);
        let log = self.snapshot.table(q.log);
        let lid_col = &log.cols[q.lid_col];
        let mut lids = std::collections::HashSet::with_capacity(rows.len());
        for r in rows {
            lids.insert(lid_col[r as usize]);
        }
        lids.len()
    }
}

std::thread_local! {
    /// Per-thread scratch bitset for chain walks. Every evaluation leaves
    /// it fully cleared (incremental `remove_all`), so reusing it across
    /// queries avoids re-zeroing `O(id-space)` words per candidate.
    static SCRATCH_MARKS: std::cell::RefCell<BitMarks> =
        const { std::cell::RefCell::new(BitMarks { words: Vec::new() }) };
}

/// A reusable bitset over the dense id space, cleared incrementally so a
/// long mining run never pays `O(id-space)` per frontier step (nor, via
/// [`SCRATCH_MARKS`], an `O(id-space)` re-zeroing per candidate query).
struct BitMarks {
    words: Vec<u64>,
}

impl BitMarks {
    /// Grows (zero-filled) to cover `n_ids`; never shrinks.
    fn reserve_ids(&mut self, n_ids: usize) {
        let need = n_ids.div_ceil(64);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Sets the bit; returns true when it was previously clear.
    #[inline]
    fn insert(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        let bit = 1u64 << b;
        let was_clear = self.words[w] & bit == 0;
        self.words[w] |= bit;
        was_clear
    }

    #[inline]
    fn contains(&self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// Clears exactly the given ids.
    #[inline]
    fn remove_all(&mut self, ids: &[u32]) {
        for &id in ids {
            let (w, b) = (id as usize / 64, id as usize % 64);
            self.words[w] &= !(1u64 << b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainStep, CmpOp, Rhs, StepFilter};
    use crate::database::TableId;
    use crate::types::DataType;
    use crate::value::Value;

    /// Figure 3's database (same shape as the chain evaluator's tests).
    fn figure3_db() -> (Database, TableId, TableId, TableId) {
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("Date", DataType::Date),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        let appt = db
            .create_table(
                "Appointments",
                &[
                    ("Patient", DataType::Int),
                    ("Date", DataType::Date),
                    ("Doctor", DataType::Int),
                ],
            )
            .unwrap();
        let info = db
            .create_table(
                "Doctor_Info",
                &[("Doctor", DataType::Int), ("Department", DataType::Str)],
            )
            .unwrap();
        let ped = db.str_value("Pediatrics");
        db.insert(appt, vec![Value::Int(10), Value::Date(1), Value::Int(1)])
            .unwrap();
        db.insert(appt, vec![Value::Int(11), Value::Date(2), Value::Int(2)])
            .unwrap();
        db.insert(info, vec![Value::Int(2), ped]).unwrap();
        db.insert(info, vec![Value::Int(1), ped]).unwrap();
        db.insert(
            log,
            vec![Value::Int(1), Value::Date(1), Value::Int(1), Value::Int(10)],
        )
        .unwrap();
        db.insert(
            log,
            vec![Value::Int(2), Value::Date(2), Value::Int(1), Value::Int(11)],
        )
        .unwrap();
        (db, log, appt, info)
    }

    fn template_a(log: TableId, appt: TableId) -> ChainQuery {
        ChainQuery {
            log,
            lid_col: 0,
            start_col: 3,
            steps: vec![ChainStep::new(appt, 0, 2)],
            close_col: Some(2),
            anchor_filters: vec![],
        }
    }

    fn template_b(log: TableId, appt: TableId, info: TableId) -> ChainQuery {
        ChainQuery {
            log,
            lid_col: 0,
            start_col: 3,
            steps: vec![
                ChainStep::new(appt, 0, 2),
                ChainStep::new(info, 0, 1),
                ChainStep::new(info, 1, 0),
            ],
            close_col: Some(2),
            anchor_filters: vec![],
        }
    }

    #[test]
    fn matches_row_evaluator_on_figure3() {
        let (db, log, appt, info) = figure3_db();
        let engine = Engine::new(&db);
        let opts = EvalOptions::default();
        for q in [template_a(log, appt), template_b(log, appt, info)] {
            assert_eq!(
                engine.explained_rows(&db, &q, opts).unwrap(),
                q.explained_rows(&db, opts).unwrap()
            );
            assert_eq!(
                engine.support(&db, &q, opts).unwrap(),
                q.support(&db, opts).unwrap()
            );
        }
    }

    #[test]
    fn open_and_filtered_queries_match() {
        let (db, log, appt, _) = figure3_db();
        let engine = Engine::new(&db);
        let opts = EvalOptions::default();
        let open = ChainQuery {
            close_col: None,
            ..template_a(log, appt)
        };
        assert_eq!(
            engine.explained_rows(&db, &open, opts).unwrap(),
            open.explained_rows(&db, opts).unwrap()
        );
        let mut filtered = template_a(log, appt);
        filtered.anchor_filters = vec![(1, CmpOp::Ge, Value::Date(2))];
        assert_eq!(
            engine.explained_rows(&db, &filtered, opts).unwrap(),
            filtered.explained_rows(&db, opts).unwrap()
        );
    }

    #[test]
    fn anchor_dependent_queries_fall_back() {
        let (db, log, appt, _) = figure3_db();
        let engine = Engine::new(&db);
        let mut q = template_a(log, appt);
        q.steps[0].filters.push(StepFilter {
            col: 1,
            op: CmpOp::Le,
            rhs: Rhs::AnchorCol(1),
        });
        assert!(q.is_anchor_dependent());
        let opts = EvalOptions::default();
        assert_eq!(
            engine.explained_rows(&db, &q, opts).unwrap(),
            q.explained_rows(&db, opts).unwrap()
        );
        // The fallback never populates the shared cache.
        assert_eq!(engine.cached_step_maps(), 0);
    }

    #[test]
    fn step_maps_are_shared_across_queries() {
        let (db, log, appt, info) = figure3_db();
        let engine = Engine::new(&db);
        let opts = EvalOptions::default();
        let queries = vec![
            template_a(log, appt),
            template_b(log, appt, info),
            ChainQuery {
                close_col: None,
                ..template_a(log, appt)
            },
        ];
        let supports = engine.support_many(&db, &queries, opts);
        // A and B share the Appointments step: 1 + 2 extra for B, 0 new for
        // the open variant = 3 distinct maps.
        assert_eq!(engine.cached_step_maps(), 3);
        let expect: Vec<usize> = queries
            .iter()
            .map(|q| q.support(&db, opts).unwrap())
            .collect();
        let got: Vec<usize> = supports.into_iter().map(|s| s.unwrap()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn support_many_reports_invalid_queries_in_place() {
        let (db, log, appt, _) = figure3_db();
        let engine = Engine::new(&db);
        let good = template_a(log, appt);
        let bad = ChainQuery {
            start_col: 9,
            ..template_a(log, appt)
        };
        let results = engine.support_many(&db, &[bad, good.clone()], EvalOptions::default());
        assert!(results[0].is_err());
        assert_eq!(*results[1].as_ref().unwrap(), 1);
    }

    #[test]
    fn dedup_toggle_changes_maps_not_results() {
        let (mut db, log, appt, info) = figure3_db();
        db.insert(appt, vec![Value::Int(10), Value::Date(5), Value::Int(1)])
            .unwrap();
        let engine = Engine::new(&db);
        let q = template_b(log, appt, info);
        let with = engine
            .support(&db, &q, EvalOptions { dedup: true })
            .unwrap();
        let without = engine
            .support(&db, &q, EvalOptions { dedup: false })
            .unwrap();
        assert_eq!(with, without);
        // Both dedup settings cached their own maps.
        assert_eq!(engine.cached_step_maps(), 6);
    }
}
