//! Sharded scatter-gather engine: the log hash-partitioned into N shards,
//! each with its own segmented storage and warm [`Engine`], published
//! together as one atomically-swapped epoch *vector*.
//!
//! # Why sharding works here
//!
//! Explanation-based auditing is embarrassingly parallel at access-log
//! granularity: explained/unexplained row sets, misuse metrics, and
//! timeline day buckets all merge associatively. One [`SharedEngine`] is
//! one writer and one monolithic snapshot; a [`ShardedEngine`] splits the
//! log by a hash of the partition column (conventionally the patient —
//! exactly the attribute the paper's per-patient explanations group by),
//! runs per-shard incremental refresh, and answers suite questions by
//! [`par_map`] across shards plus an associative merge.
//!
//! # What is partitioned and what is replicated
//!
//! Only the log table is partitioned. Every shard database is a clone of
//! the same base, so dimension tables and the string pool share their
//! sealed segments via `Arc` *across shards* as well as across epochs —
//! and, critically, [`Symbol`](crate::pool::Symbol)s are identical in
//! every shard, which is what makes cross-shard `Value` comparison (and
//! the associative merges) sound. All interning during ingest goes
//! through [`ShardedBatch::str_value`], which interns into every shard
//! and asserts the symbols stayed aligned.
//!
//! # Global row ids
//!
//! Readers and the audit layer keep speaking *global* log row ids — the
//! ids the unsharded oracle would assign (insertion order across the
//! whole log). Each shard carries a `local → global` map in a
//! [`SegVec`], so publishing a shard epoch stays `O(batch)`: the map's
//! sealed segments are `Arc`-shared like every other column.
//!
//! # Publication
//!
//! [`ShardedEngine::ingest_with`] mirrors [`SharedEngine::ingest_with`]
//! exactly — private clones, per-shard fork + incremental refresh with a
//! full-rebuild fallback, a persist hook that runs *before* anything is
//! published (published ⊆ durable), and a single pointer swap publishing
//! the whole [`EpochVec`] under one sequence number. Readers pin the
//! vector, so every epoch-pinned byte-stability guarantee carries over
//! unchanged.

use super::parallel::par_map;
use super::shared::{compute_maintained, Epoch, Maintained, SuitePin};
use super::{Engine, RefreshError, RefreshStats};
use crate::chain::{ChainQuery, EvalOptions};
use crate::database::{Database, TableId};
use crate::error::Result;
use crate::pool::StringPool;
use crate::rowset::RowSet;
use crate::segment::SegVec;
use crate::sync::unpoison;
use crate::table::RowId;
use crate::types::ColId;
use crate::value::Value;
use std::collections::HashSet;
use std::sync::{Arc, Mutex, RwLock};

/// The log partitioning key: which table is sharded, and the column whose
/// hash routes a row to its shard (conventionally `Log.Patient`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardKey {
    /// The partitioned (log) table. Every other table is replicated.
    pub table: TableId,
    /// The routing column within that table.
    pub col: ColId,
}

/// Deterministic shard routing: FNV-1a over the value's tag and payload
/// (strings hash their text, not their pool-relative symbol, so routing
/// is stable across pools and restarts). `Null` routes to shard 0.
pub fn shard_of(v: &Value, pool: &StringPool, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    match v {
        Value::Null => return 0,
        Value::Int(i) => {
            eat(&[1]);
            eat(&i.to_le_bytes());
        }
        Value::Str(sym) => {
            eat(&[2]);
            eat(pool.resolve(*sym).as_bytes());
        }
        Value::Date(m) => {
            eat(&[3]);
            eat(&m.to_le_bytes());
        }
    }
    (h % n_shards as u64) as usize
}

/// One shard of a published [`EpochVec`]: the shard's epoch (database +
/// warm engine frozen at the vector's seq) plus its `local → global` row
/// id map.
#[derive(Debug, Clone)]
pub struct ShardEpoch {
    epoch: Arc<Epoch>,
    to_global: SegVec<RowId>,
}

impl ShardEpoch {
    /// The shard's epoch — pass its `db`/`engine` pair to any audit-layer
    /// `*_with` function, or the epoch itself to the `*_at` forms.
    pub fn epoch(&self) -> &Arc<Epoch> {
        &self.epoch
    }

    /// The shard's database state.
    pub fn db(&self) -> &Database {
        self.epoch.db()
    }

    /// The warm engine over this shard's database.
    pub fn engine(&self) -> &Engine {
        self.epoch.engine()
    }

    /// Local log rows in this shard.
    pub fn log_len(&self) -> usize {
        self.to_global.len()
    }

    /// Maps a shard-local log row id to the global (oracle-order) id.
    ///
    /// # Panics
    /// Panics when `local` is not a log row of this shard.
    pub fn to_global(&self, local: RowId) -> RowId {
        *self.to_global.get(local as usize)
    }

    /// Binary-searches for a global id in this shard's (sorted) map.
    fn find_global(&self, global: RowId) -> Option<RowId> {
        let n = self.to_global.len();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match (*self.to_global.get(mid)).cmp(&global) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid as RowId),
            }
        }
        None
    }
}

/// The atomically-published vector of shard epochs, all frozen at one
/// sequence number. Readers pin the whole vector ([`ShardedEngine::load`])
/// and every scatter-gather answer below is computed against it, so a
/// pinned session sees one consistent state of the world across all
/// shards — exactly the single-epoch guarantee, vector-shaped.
#[derive(Debug)]
pub struct EpochVec {
    shards: Box<[ShardEpoch]>,
    key: ShardKey,
    seq: u64,
    global_log_len: usize,
    /// Maintained materializations in **global** row ids, one per pinned
    /// suite in registration order ([`ShardedEngine::pin_suite`]).
    maintained: Vec<Arc<Maintained>>,
}

impl EpochVec {
    /// Publication sequence number (0 initial, +1 per ingest), shared by
    /// every shard in the vector.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard epochs, in shard order.
    pub fn shards(&self) -> &[ShardEpoch] {
        &self.shards
    }

    /// The partitioning key.
    pub fn key(&self) -> ShardKey {
        self.key
    }

    /// Total log rows across all shards (the global log length).
    pub fn global_log_len(&self) -> usize {
        self.global_log_len
    }

    /// The maintained materialization of pin `pin` (the id returned by
    /// [`ShardedEngine::pin_suite`]) in **global** row ids, if this
    /// vector carries one. Vectors published before the pin was
    /// registered lack the entry — readers fall back to cold evaluation.
    pub fn maintained(&self, pin: usize) -> Option<&Arc<Maintained>> {
        self.maintained.get(pin)
    }

    /// Which shard a routing value lands in.
    pub fn shard_of_value(&self, v: &Value) -> usize {
        shard_of(v, self.shards[0].db().pool(), self.shards.len())
    }

    /// Locates a global log row id: `(shard, local id)`.
    pub fn locate(&self, global: RowId) -> Option<(usize, RowId)> {
        self.shards
            .iter()
            .enumerate()
            .find_map(|(s, shard)| shard.find_global(global).map(|local| (s, local)))
    }

    /// Applies `f` to every shard in parallel, preserving shard order.
    pub fn par_map_shards<R: Send>(&self, f: impl Fn(usize, &ShardEpoch) -> R + Sync) -> Vec<R> {
        let idx: Vec<usize> = (0..self.shards.len()).collect();
        par_map(&idx, |&s| f(s, &self.shards[s]))
    }

    /// Global log row ids explained by `q` — scatter across shards,
    /// gather sorted. Byte-identical to the unsharded oracle's
    /// [`Engine::explained_rows`].
    pub fn explained_rows(&self, q: &ChainQuery, opts: EvalOptions) -> Result<Vec<RowId>> {
        let per_shard = self.par_map_shards(|_, shard| {
            shard
                .engine()
                .explained_rows(shard.db(), q, opts)
                .map(|rows| {
                    rows.into_iter()
                        .map(|r| shard.to_global(r))
                        .collect::<Vec<RowId>>()
                })
        });
        let mut out = Vec::new();
        for rows in per_shard {
            out.extend(rows?);
        }
        // Per-shard lists are already sorted (local order is a
        // subsequence of global order); one sort merges them.
        out.sort_unstable();
        Ok(out)
    }

    /// Support of `q` (distinct explained log ids). Lid values can repeat
    /// across shards, so supports do not sum: the distinct lid *value*
    /// sets are gathered and unioned — sound because symbols align across
    /// shard pools.
    pub fn support(&self, q: &ChainQuery, opts: EvalOptions) -> Result<usize> {
        let per_shard = self.par_map_shards(|_, shard| -> Result<HashSet<Value>> {
            let rows = shard.engine().explained_rows(shard.db(), q, opts)?;
            let log = shard.db().table(q.log);
            Ok(rows.into_iter().map(|r| log.cell(r, q.lid_col)).collect())
        });
        let mut lids = HashSet::new();
        for set in per_shard {
            lids.extend(set?);
        }
        Ok(lids.len())
    }

    /// Fused suite evaluation across every shard: each shard runs
    /// [`Engine::eval_suite`] (one partition walk / log scan for the
    /// whole suite) and returns its explained rows as **global-id**
    /// [`RowSet`]s; the per-shard bitmaps then fold together with the
    /// associative union — the shard payload needs no re-sort and no
    /// coordinator-side hash set, which is exactly the shape a
    /// multi-node scatter-gather would put on the wire.
    pub fn eval_suite(&self, queries: &[ChainQuery], opts: EvalOptions) -> Vec<Result<RowSet>> {
        let per_shard: Vec<Vec<Result<RowSet>>> = self.par_map_shards(|_, shard| {
            shard
                .engine()
                .eval_suite(shard.db(), queries, opts)
                .into_iter()
                .map(|set| {
                    set.map(|s| {
                        // Local ascending order is a subsequence of global
                        // order, so the mapped ids are already sorted.
                        let global: Vec<RowId> = s.iter().map(|r| shard.to_global(r)).collect();
                        RowSet::from_sorted_vec(&global)
                    })
                })
                .collect()
        });
        let mut columns: Vec<std::vec::IntoIter<Result<RowSet>>> =
            per_shard.into_iter().map(|v| v.into_iter()).collect();
        (0..queries.len())
            .map(|_| {
                let row: Vec<Result<RowSet>> = columns
                    .iter_mut()
                    .map(|it| it.next().expect("one result per query per shard"))
                    .collect();
                let mut sets = Vec::with_capacity(row.len());
                for set in row {
                    sets.push(set?);
                }
                Ok(RowSet::union_all(sets))
            })
            .collect()
    }

    /// Batch [`EpochVec::explained_rows`]: one globally-sorted row set per
    /// query, in input order. Rides [`EpochVec::eval_suite`]: each shard
    /// evaluates the whole suite fused, and the associatively-merged
    /// global bitmaps read out already sorted.
    pub fn explained_rows_many(
        &self,
        queries: &[ChainQuery],
        opts: EvalOptions,
    ) -> Vec<Result<Vec<RowId>>> {
        self.eval_suite(queries, opts)
            .into_iter()
            .map(|set| set.map(|s| s.to_vec()))
            .collect()
    }

    /// Union of the global rows explained by any of `queries` — the audit
    /// layer's suite primitive, scatter-gathered. Fails on the first
    /// invalid query.
    pub fn explained_union(
        &self,
        queries: &[ChainQuery],
        opts: EvalOptions,
    ) -> Result<HashSet<RowId>> {
        Ok(self.explained_union_rowset(queries, opts)?.iter().collect())
    }

    /// [`EpochVec::explained_union`] in compressed form: one global
    /// [`RowSet`] folded from the per-shard suite bitmaps.
    pub fn explained_union_rowset(
        &self,
        queries: &[ChainQuery],
        opts: EvalOptions,
    ) -> Result<RowSet> {
        let mut sets = Vec::with_capacity(queries.len());
        for set in self.eval_suite(queries, opts) {
            sets.push(set?);
        }
        Ok(RowSet::union_all(sets))
    }
}

/// Maps a shard-local row set to global ids. Local ascending order is a
/// subsequence of global order, so the mapped ids are already sorted.
fn to_global_set(shard: &ShardEpoch, local: &RowSet) -> RowSet {
    let global: Vec<RowId> = local.iter().map(|r| shard.to_global(r)).collect();
    RowSet::from_sorted_vec(&global)
}

/// Cold global materialization of `pin`: every shard computes its local
/// sets in parallel, then the global-id bitmaps fold with the associative
/// union — the same scatter-gather shape as [`EpochVec::eval_suite`].
fn compute_maintained_sharded(
    shards: &[ShardEpoch],
    pin: &SuitePin,
    global_log_len: usize,
) -> Maintained {
    let idx: Vec<usize> = (0..shards.len()).collect();
    let per: Vec<(RowSet, RowSet)> = par_map(&idx, |&s| {
        let shard = &shards[s];
        let m = compute_maintained(shard.engine(), shard.db(), pin);
        (
            to_global_set(shard, &m.anchors),
            to_global_set(shard, &m.explained),
        )
    });
    let mut anchors = RowSet::new();
    let mut explained = RowSet::new();
    for (a, e) in per {
        anchors.union_with(&a);
        explained.union_with(&e);
    }
    let unexplained = anchors.difference(&explained);
    Maintained {
        anchors,
        explained,
        unexplained,
        log_len: global_log_len,
    }
}

/// Advances the global materialization across one sharded ingest: each
/// shard computes its **local** delta — appended-range anchor scan,
/// tail-range evaluation over the appended rows for every template, and
/// a residue-restricted re-ask of the templates whose support grew in
/// that shard, over the shard's slice of the previous global
/// `unexplained` set (see [`Maintained`] for the monotonicity argument)
/// — and the global-id deltas merge associatively into the previous
/// sets.
fn advance_maintained_sharded(
    prev_shards: &[ShardEpoch],
    shards: &[ShardEpoch],
    pin: &SuitePin,
    prev: &Maintained,
    reports: &[ShardRefresh],
    global_log_len: usize,
) -> Maintained {
    let idx: Vec<usize> = (0..shards.len()).collect();
    let deltas: Vec<(RowSet, RowSet)> = par_map(&idx, |&s| {
        let shard = &shards[s];
        let engine = shard.engine();
        let db = shard.db();
        let grown = &reports[s].refresh.delta.grown;
        let (l0, l1) = (prev_shards[s].log_len(), shard.log_len());
        let log = engine.snapshot().table(pin.log);
        let mut fresh: Vec<RowId> = Vec::new();
        for r in l0..l1 {
            if engine.anchor_passes_filters(&pin.anchor_filters, log, r) {
                fresh.push(r as RowId);
            }
        }
        let anchors = RowSet::from_sorted_vec(&fresh);
        // Appended rows: one range evaluation over every template. Old
        // rows: explanation is monotone under append-only growth, so
        // templates stepping into a grown table re-ask only this shard's
        // slice of the previous *unexplained residue* (global residue
        // ids mapped back through the sorted global-id index).
        let reaches_growth =
            |q: &ChainQuery| -> bool { q.steps.iter().any(|st| grown.contains(&st.table)) };
        let reask: Vec<ChainQuery> = pin
            .queries
            .iter()
            .filter(|q| reaches_growth(q))
            .cloned()
            .collect();
        let mut explained = RowSet::new();
        if l1 > l0 {
            for set in engine
                .eval_suite_range(db, &pin.queries, pin.opts, l0, l1)
                .into_iter()
                .flatten()
            {
                explained.union_with(&set);
            }
        }
        if !reask.is_empty() {
            let local: Vec<RowId> = prev
                .unexplained
                .iter()
                .filter_map(|g| shard.find_global(g))
                .collect();
            if !local.is_empty() {
                let residue = RowSet::from_sorted_vec(&local);
                for set in engine
                    .eval_suite_rows(db, &reask, pin.opts, &residue)
                    .into_iter()
                    .flatten()
                {
                    explained.union_with(&set);
                }
            }
        }
        (
            to_global_set(shard, &anchors),
            to_global_set(shard, &explained),
        )
    });
    let mut anchors = prev.anchors.clone();
    let mut explained = prev.explained.clone();
    for (a, e) in deltas {
        anchors.union_with(&a);
        explained.union_with(&e);
    }
    let unexplained = anchors.difference(&explained);
    Maintained {
        anchors,
        explained,
        unexplained,
        log_len: global_log_len,
    }
}

/// What one shard's refresh did during a sharded ingest.
#[derive(Debug, Clone)]
pub struct ShardRefresh {
    /// The incremental refresh stats (empty when `rebuilt` is set).
    pub refresh: RefreshStats,
    /// Set when this shard's incremental refresh was refused and the
    /// writer recovered by rebuilding the shard engine from scratch.
    pub rebuilt: Option<RefreshError>,
}

/// What one [`ShardedEngine::ingest_with`] published.
#[derive(Debug, Clone)]
pub struct ShardedIngestReport {
    /// Sequence number of the epoch vector this ingest published.
    pub seq: u64,
    /// Per-shard refresh outcomes, in shard order.
    pub shards: Vec<ShardRefresh>,
}

impl ShardedIngestReport {
    /// Total rows appended across all shards.
    pub fn new_rows(&self) -> usize {
        self.shards.iter().map(|s| s.refresh.delta.new_rows).sum()
    }

    /// True when any shard fell back to a full rebuild.
    pub fn rebuilt_any(&self) -> bool {
        self.shards.iter().any(|s| s.rebuilt.is_some())
    }

    /// Operator-facing warnings, one per shard that fell back to a full
    /// rebuild (empty on the normal incremental path) — the sharded form
    /// of [`super::IngestReport::fallback_warning`].
    pub fn fallback_warnings(&self) -> Vec<String> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.rebuilt.as_ref().map(|err| {
                    format!(
                        "epoch {} shard {i}: incremental refresh refused ({err}); \
                         recovered by rebuilding the shard engine from scratch",
                        self.seq
                    )
                })
            })
            .collect()
    }
}

/// The writer's view of an in-flight sharded ingest: one private database
/// clone per shard plus the global row id counter. All mutation of a
/// sharded engine goes through this — it routes log rows, replicates
/// dimension rows, and keeps the shard string pools symbol-aligned.
pub struct ShardedBatch {
    key: ShardKey,
    dbs: Vec<Database>,
    maps: Vec<SegVec<RowId>>,
    global_len: usize,
}

impl ShardedBatch {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.dbs.len()
    }

    /// Total log rows across all shards, counting rows staged so far.
    pub fn global_log_len(&self) -> usize {
        self.global_len
    }

    /// Which shard a routing value lands in.
    pub fn shard_of(&self, v: &Value) -> usize {
        shard_of(v, self.dbs[0].pool(), self.dbs.len())
    }

    /// One shard's database (reads see rows staged so far).
    pub fn db(&self, shard: usize) -> &Database {
        &self.dbs[shard]
    }

    /// The shard-aligned string pool (shard 0's; all shards' pools are
    /// identical by construction).
    pub fn pool(&self) -> &StringPool {
        self.dbs[0].pool()
    }

    /// Inserts one log row, routed by the hash of its partition column.
    /// Returns the row's **global** id (the id the unsharded oracle would
    /// assign).
    pub fn insert_log(&mut self, row: Vec<Value>) -> Result<RowId> {
        let shard = self.shard_of(&row[self.key.col]);
        let local = self.dbs[shard].insert(self.key.table, row)?;
        debug_assert_eq!(local as usize, self.maps[shard].len());
        let global = RowId::try_from(self.global_len).expect("more than u32::MAX log rows");
        self.maps[shard].push(global);
        self.global_len += 1;
        Ok(global)
    }

    /// Inserts one dimension row, replicated into every shard.
    ///
    /// # Panics
    /// Panics when `table` is the partitioned log table — log rows must
    /// go through [`ShardedBatch::insert_log`] to get a global id.
    pub fn insert_dim(&mut self, table: TableId, row: Vec<Value>) -> Result<()> {
        assert!(
            table != self.key.table,
            "log rows must be inserted via insert_log"
        );
        for db in &mut self.dbs {
            db.insert(table, row.clone())?;
        }
        Ok(())
    }

    /// Interns a string into **every** shard pool and returns the (single,
    /// shared) symbol value — the only sound way to mint string values
    /// during a sharded ingest.
    ///
    /// # Panics
    /// Panics if the shard pools have drifted out of alignment (a bug:
    /// all interning is supposed to flow through here).
    pub fn str_value(&mut self, s: &str) -> Value {
        let first = self.dbs[0].intern(s);
        for db in &mut self.dbs[1..] {
            let sym = db.intern(s);
            assert_eq!(sym, first, "shard string pools drifted out of alignment");
        }
        Value::Str(first)
    }
}

/// The sharded snapshot-handoff cell: [`SharedEngine`]'s contract — one
/// serialized writer, wait-free readers, persist-before-publish — over an
/// [`EpochVec`] instead of a single epoch.
///
/// [`SharedEngine`]: super::SharedEngine
#[derive(Debug)]
pub struct ShardedEngine {
    current: RwLock<Arc<EpochVec>>,
    /// Serializes writers; holds the next sequence number.
    writer: Mutex<u64>,
    key: ShardKey,
    /// Pinned suites, in registration order; index = pin id.
    pins: Mutex<Vec<Arc<SuitePin>>>,
}

impl ShardedEngine {
    /// Partitions `db`'s log table into `n_shards` by the hash of
    /// `key.col` and builds the initial epoch vector (seq 0): one
    /// database clone + engine per shard, dimension tables and the pool
    /// `Arc`-shared across all of them.
    ///
    /// # Panics
    /// Panics when `n_shards` is zero.
    pub fn new(db: Database, key: ShardKey, n_shards: usize) -> ShardedEngine {
        assert!(n_shards > 0, "shard count must be positive");
        let shards = Self::partition(&db, key, n_shards, 0);
        ShardedEngine {
            current: RwLock::new(Arc::new(EpochVec {
                shards,
                key,
                seq: 0,
                global_log_len: db.table(key.table).len(),
                maintained: Vec::new(),
            })),
            writer: Mutex::new(0),
            key,
            pins: Mutex::new(Vec::new()),
        }
    }

    /// Registers a suite for incremental maintenance and returns its pin
    /// id — the sharded form of
    /// [`SharedEngine::pin_suite`](super::SharedEngine::pin_suite). The
    /// current vector is republished (same shard epochs, same seq) with
    /// the pin's cold global materialization added; every later ingest
    /// advances it by per-shard deltas merged associatively.
    pub fn pin_suite(&self, pin: SuitePin) -> usize {
        let _writer = unpoison(self.writer.lock());
        let base = self.load();
        let pin = Arc::new(pin);
        let mut pins = unpoison(self.pins.lock());
        let id = pins.len();
        pins.push(pin.clone());
        drop(pins);
        let mut maintained = base.maintained.clone();
        maintained.push(Arc::new(compute_maintained_sharded(
            &base.shards,
            &pin,
            base.global_log_len,
        )));
        *unpoison(self.current.write()) = Arc::new(EpochVec {
            shards: base.shards.clone(),
            key: self.key,
            seq: base.seq,
            global_log_len: base.global_log_len,
            maintained,
        });
        id
    }

    fn partition(db: &Database, key: ShardKey, n_shards: usize, seq: u64) -> Box<[ShardEpoch]> {
        // Route every log row once, then build each shard's database and
        // engine in parallel.
        let log = db.table(key.table);
        let mut routed: Vec<Vec<RowId>> = vec![Vec::new(); n_shards];
        for r in 0..log.len() {
            let v = log.cell(r as RowId, key.col);
            routed[shard_of(&v, db.pool(), n_shards)].push(r as RowId);
        }
        let built: Vec<ShardEpoch> = par_map(&routed, |globals| {
            let mut shard_db = db.clone_with_empty_table(key.table);
            let mut map = SegVec::new(shard_db.table(key.table).segment_rows());
            for &g in globals {
                shard_db
                    .insert(key.table, log.row(g).to_vec())
                    .expect("re-inserting a validated log row");
                map.push(g);
            }
            // Seal the rebuilt shard: contents unchanged, but every later
            // ingest fork then clones shared segments instead of copying
            // the whole re-inserted tail — partitioning must not cost the
            // `O(batch)` publication invariant its head start.
            shard_db.seal();
            map.seal();
            let engine = Engine::new(&shard_db);
            ShardEpoch {
                epoch: Arc::new(Epoch::assemble(shard_db, engine, seq)),
                to_global: map,
            }
        });
        built.into_boxed_slice()
    }

    /// Pins the current epoch vector. Effectively wait-free, exactly like
    /// [`SharedEngine::load`](super::SharedEngine::load): the read lock
    /// guards a single `Arc` clone.
    pub fn load(&self) -> Arc<EpochVec> {
        unpoison(self.current.read()).clone()
    }

    /// Sequence number of the current epoch vector.
    pub fn seq(&self) -> u64 {
        self.load().seq
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.load().shard_count()
    }

    /// The partitioning key.
    pub fn key(&self) -> ShardKey {
        self.key
    }

    /// Applies `mutate` to a private [`ShardedBatch`] (one database clone
    /// per shard), refreshes a private fork of every shard engine, and
    /// publishes the successor epoch vector. Returns `mutate`'s output
    /// and the per-shard report. Writers serialize; readers never block.
    ///
    /// # Panic safety
    /// A panic in `mutate` or any refresh drops the private clones and
    /// publishes nothing.
    pub fn ingest<R>(
        &self,
        mutate: impl FnOnce(&mut ShardedBatch) -> R,
    ) -> (R, ShardedIngestReport) {
        let (out, report) = self
            .ingest_with(mutate, |_, _, _| Ok::<(), std::convert::Infallible>(()))
            .unwrap_or_else(|e| match e {});
        (out, report)
    }

    /// [`ShardedEngine::ingest`] with a **persist hook**, the sharded form
    /// of [`SharedEngine::ingest_with`](super::SharedEngine::ingest_with):
    /// `persist` runs after every shard has been mutated and refreshed but
    /// *before* anything is published, with the staged batch and the
    /// would-be seq. `Err` publishes nothing and frees the seq — the
    /// published history stays a prefix of the durable history, shard
    /// assignment notwithstanding (the durable log is recorded in global
    /// row order and re-partitioned deterministically on recovery).
    pub fn ingest_with<R, E>(
        &self,
        mutate: impl FnOnce(&mut ShardedBatch) -> R,
        persist: impl FnOnce(&ShardedBatch, &R, u64) -> std::result::Result<(), E>,
    ) -> std::result::Result<(R, ShardedIngestReport), E> {
        let mut next_seq = unpoison(self.writer.lock());
        let base = self.load();
        let mut batch = ShardedBatch {
            key: self.key,
            dbs: base.shards.iter().map(|s| s.db().clone()).collect(),
            maps: base.shards.iter().map(|s| s.to_global.clone()).collect(),
            global_len: base.global_log_len,
        };
        let out = mutate(&mut batch);
        let seq = *next_seq + 1;

        // Fork + refresh every shard in parallel (shards whose tables did
        // not grow refresh in O(1); the fallback rebuild is per-shard).
        let idx: Vec<usize> = (0..base.shards.len()).collect();
        let refreshed: Vec<(Engine, ShardRefresh)> = par_map(&idx, |&s| {
            let db = &batch.dbs[s];
            let mut engine = base.shards[s].engine().fork();
            match engine.refresh(db) {
                Ok(stats) => (
                    engine,
                    ShardRefresh {
                        refresh: stats,
                        rebuilt: None,
                    },
                ),
                Err(err) => (
                    Engine::new(db),
                    ShardRefresh {
                        refresh: RefreshStats::default(),
                        rebuilt: Some(err),
                    },
                ),
            }
        });

        persist(&batch, &out, seq)?;
        *next_seq = seq;

        let ShardedBatch {
            dbs,
            maps,
            global_len,
            ..
        } = batch;
        let mut report = ShardedIngestReport {
            seq,
            shards: Vec::with_capacity(dbs.len()),
        };
        let shards: Vec<ShardEpoch> = dbs
            .into_iter()
            .zip(maps)
            .zip(refreshed)
            .map(|((db, to_global), (engine, shard_report))| {
                report.shards.push(shard_report);
                ShardEpoch {
                    epoch: Arc::new(Epoch::assemble(db, engine, seq)),
                    to_global,
                }
            })
            .collect();
        // Advance every pinned suite's global materialization: per-shard
        // deltas on the incremental path, a cold scatter-gather recompute
        // when any shard fell back to a rebuild (or the pin is newer than
        // `base`).
        let pins = unpoison(self.pins.lock()).clone();
        let rebuilt_any = report.shards.iter().any(|s| s.rebuilt.is_some());
        let maintained: Vec<Arc<Maintained>> = pins
            .iter()
            .enumerate()
            .map(|(i, pin)| match base.maintained.get(i) {
                Some(prev) if !rebuilt_any => Arc::new(advance_maintained_sharded(
                    &base.shards,
                    &shards,
                    pin,
                    prev,
                    &report.shards,
                    global_len,
                )),
                _ => Arc::new(compute_maintained_sharded(&shards, pin, global_len)),
            })
            .collect();
        *unpoison(self.current.write()) = Arc::new(EpochVec {
            shards: shards.into_boxed_slice(),
            key: self.key,
            seq,
            global_log_len: global_len,
            maintained,
        });
        Ok((out, report))
    }

    /// Replaces the published state **wholesale** (an operator reload):
    /// re-partitions `db` from scratch and publishes the successor vector.
    /// Every shard reports [`RefreshError::Replaced`], so the fallback
    /// warnings fire exactly like the unsharded
    /// [`SharedEngine::replace`](super::SharedEngine::replace).
    pub fn replace(&self, db: Database) -> ShardedIngestReport {
        let mut next_seq = unpoison(self.writer.lock());
        let n = self.shard_count();
        *next_seq += 1;
        let seq = *next_seq;
        let shards = Self::partition(&db, self.key, n, seq);
        let report = ShardedIngestReport {
            seq,
            shards: (0..n)
                .map(|_| ShardRefresh {
                    refresh: RefreshStats::default(),
                    rebuilt: Some(RefreshError::Replaced),
                })
                .collect(),
        };
        let global_log_len = db.table(self.key.table).len();
        // A replacement invalidates every maintained set: recompute cold.
        let pins = unpoison(self.pins.lock()).clone();
        let maintained = pins
            .iter()
            .map(|pin| Arc::new(compute_maintained_sharded(&shards, pin, global_log_len)))
            .collect();
        *unpoison(self.current.write()) = Arc::new(EpochVec {
            shards,
            key: self.key,
            seq,
            global_log_len,
            maintained,
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainStep;
    use crate::types::DataType;

    fn world() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        let event = db
            .create_table(
                "Event",
                &[("Patient", DataType::Int), ("Actor", DataType::Int)],
            )
            .unwrap();
        for p in 0..8i64 {
            db.insert(event, vec![Value::Int(p), Value::Int(p % 3)])
                .unwrap();
        }
        for i in 0..20i64 {
            db.insert(
                log,
                vec![Value::Int(i), Value::Int(i % 3), Value::Int(i % 8)],
            )
            .unwrap();
        }
        (db, log, event)
    }

    fn key(db: &Database, log: TableId) -> ShardKey {
        let col = db.table(log).schema().col("Patient").unwrap();
        ShardKey { table: log, col }
    }

    fn query(log: TableId, event: TableId) -> ChainQuery {
        ChainQuery {
            log,
            lid_col: 0,
            start_col: 2,
            steps: vec![ChainStep::new(event, 0, 1)],
            close_col: Some(1),
            anchor_filters: vec![],
        }
    }

    #[test]
    fn shard_routing_is_deterministic_and_total() {
        let mut pool = StringPool::new();
        let s = Value::Str(pool.intern("Pediatrics"));
        for n in [1usize, 2, 4, 7] {
            for v in [Value::Null, Value::Int(42), Value::Date(99), s] {
                let a = shard_of(&v, &pool, n);
                assert_eq!(a, shard_of(&v, &pool, n));
                assert!(a < n);
            }
            assert_eq!(shard_of(&Value::Null, &pool, n), 0);
        }
        // String routing hashes text, not the pool-relative symbol.
        let mut other = StringPool::new();
        other.intern("something-else-first");
        let s2 = Value::Str(other.intern("Pediatrics"));
        assert_eq!(shard_of(&s, &pool, 4), shard_of(&s2, &other, 4));
    }

    #[test]
    fn partitioning_matches_the_oracle_byte_for_byte() {
        let (db, log, event) = world();
        let q = query(log, event);
        let oracle = q.explained_rows(&db, EvalOptions::default()).unwrap();
        let oracle_support = q.support(&db, EvalOptions::default()).unwrap();
        for n in [1usize, 2, 3, 4, 16] {
            let sharded = ShardedEngine::new(db.clone(), key(&db, log), n);
            let vec = sharded.load();
            assert_eq!(vec.shard_count(), n);
            assert_eq!(vec.global_log_len(), 20);
            assert_eq!(
                vec.shards().iter().map(ShardEpoch::log_len).sum::<usize>(),
                20,
                "shards partition the log"
            );
            assert_eq!(
                vec.explained_rows(&q, EvalOptions::default()).unwrap(),
                oracle,
                "{n} shards"
            );
            assert_eq!(
                vec.support(&q, EvalOptions::default()).unwrap(),
                oracle_support
            );
            let many = vec.explained_rows_many(std::slice::from_ref(&q), EvalOptions::default());
            assert_eq!(many[0].as_ref().unwrap(), &oracle);
            let union = vec
                .explained_union(std::slice::from_ref(&q), EvalOptions::default())
                .unwrap();
            assert_eq!(union, oracle.iter().copied().collect());
        }
    }

    #[test]
    fn global_ids_round_trip_through_locate() {
        let (db, log, _) = world();
        let sharded = ShardedEngine::new(db, key_of(log), 4);
        let vec = sharded.load();
        for g in 0..20u32 {
            let (s, local) = vec.locate(g).expect("every global id is somewhere");
            assert_eq!(vec.shards()[s].to_global(local), g);
        }
        assert!(vec.locate(20).is_none());

        fn key_of(log: TableId) -> ShardKey {
            ShardKey { table: log, col: 2 }
        }
    }

    #[test]
    fn ingest_routes_replicates_and_publishes_one_seq() {
        let (db, log, event) = world();
        let q = query(log, event);
        let k = key(&db, log);
        let mut oracle_db = db.clone();
        let sharded = ShardedEngine::new(db, k, 3);
        let pinned = sharded.load();

        let ((), report) = sharded.ingest(|batch| {
            batch
                .insert_dim(event, vec![Value::Int(40), Value::Int(1)])
                .unwrap();
            for i in 20..26i64 {
                let g = batch
                    .insert_log(vec![Value::Int(i), Value::Int(1), Value::Int(i % 41)])
                    .unwrap();
                assert_eq!(g as i64, i, "global ids continue the oracle order");
            }
        });
        assert_eq!(report.seq, 1);
        assert_eq!(report.new_rows(), 6 + 3, "6 log rows + dim row x3 shards");
        assert!(!report.rebuilt_any());
        assert!(report.fallback_warnings().is_empty());

        // The pinned vector is untouched; the new one answers like the
        // oracle over the equivalently-grown database.
        assert_eq!(pinned.global_log_len(), 20);
        oracle_db
            .insert(event, vec![Value::Int(40), Value::Int(1)])
            .unwrap();
        for i in 20..26i64 {
            oracle_db
                .insert(log, vec![Value::Int(i), Value::Int(1), Value::Int(i % 41)])
                .unwrap();
        }
        let new = sharded.load();
        assert_eq!(new.seq(), 1);
        assert_eq!(new.global_log_len(), 26);
        for shard in new.shards() {
            assert_eq!(shard.epoch().seq(), 1, "one seq across the vector");
        }
        assert_eq!(
            new.explained_rows(&q, EvalOptions::default()).unwrap(),
            q.explained_rows(&oracle_db, EvalOptions::default())
                .unwrap()
        );
    }

    #[test]
    fn failed_persist_publishes_nothing_and_frees_the_seq() {
        let (db, log, _) = world();
        let k = key(&db, log);
        let sharded = ShardedEngine::new(db, k, 2);
        let err = sharded
            .ingest_with(
                |batch| {
                    batch
                        .insert_log(vec![Value::Int(99), Value::Int(0), Value::Int(1)])
                        .unwrap();
                },
                |batch, _, seq| {
                    assert_eq!(seq, 1);
                    assert_eq!(batch.global_log_len(), 21, "hook sees the staged rows");
                    Err("disk full")
                },
            )
            .unwrap_err();
        assert_eq!(err, "disk full");
        assert_eq!(sharded.seq(), 0);
        assert_eq!(sharded.load().global_log_len(), 20);
        let ((), report) = sharded.ingest(|batch| {
            batch
                .insert_log(vec![Value::Int(99), Value::Int(0), Value::Int(1)])
                .unwrap();
        });
        assert_eq!(report.seq, 1, "the failed attempt's seq is reused");
        assert_eq!(sharded.load().global_log_len(), 21);
        let _ = log;
    }

    #[test]
    fn panicking_ingest_publishes_nothing_and_recovers() {
        let (db, log, _) = world();
        let k = key(&db, log);
        let sharded = ShardedEngine::new(db, k, 2);
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sharded.ingest(|batch| {
                batch
                    .insert_log(vec![Value::Int(50), Value::Int(0), Value::Int(3)])
                    .unwrap();
                panic!("ingest source glitched");
            })
        }));
        assert!(panic.is_err());
        assert_eq!(sharded.seq(), 0);
        assert_eq!(sharded.load().global_log_len(), 20);
        let ((), report) = sharded.ingest(|batch| {
            batch
                .insert_log(vec![Value::Int(50), Value::Int(0), Value::Int(3)])
                .unwrap();
        });
        assert_eq!(report.seq, 1);
        let _ = log;
    }

    #[test]
    fn replace_repartitions_and_warns() {
        let (db, log, event) = world();
        let k = key(&db, log);
        let q = query(log, event);
        let sharded = ShardedEngine::new(db.clone(), k, 4);
        // A corrected world: same shape, different cells.
        let (mut corrected, _, _) = world();
        let ev = corrected.table_id("Event").unwrap();
        corrected
            .insert(ev, vec![Value::Int(0), Value::Int(2)])
            .unwrap();
        let report = sharded.replace(corrected.clone());
        assert_eq!(report.seq, 1);
        assert!(report.rebuilt_any());
        assert_eq!(report.fallback_warnings().len(), 4);
        assert!(report.fallback_warnings()[0].contains("replaced"));
        let vec = sharded.load();
        assert_eq!(
            vec.explained_rows(&q, EvalOptions::default()).unwrap(),
            q.explained_rows(&corrected, EvalOptions::default())
                .unwrap()
        );
    }

    #[test]
    fn maintained_sets_match_cold_scatter_gather_at_every_seq() {
        let (db, log, event) = world();
        let q = query(log, event);
        for n in [1usize, 4] {
            let sharded = ShardedEngine::new(db.clone(), key(&db, log), n);
            let pin = SuitePin {
                log,
                anchor_filters: vec![],
                queries: vec![q.clone()],
                opts: EvalOptions::default(),
            };
            let id = sharded.pin_suite(pin.clone());
            let check = |vec: &EpochVec| {
                let m = vec.maintained(id).expect("pinned vector carries the sets");
                let cold = compute_maintained_sharded(vec.shards(), &pin, vec.global_log_len());
                assert_eq!(m.anchors, cold.anchors, "{n} shards");
                assert_eq!(m.explained, cold.explained, "{n} shards");
                assert_eq!(m.unexplained, cold.unexplained, "{n} shards");
                assert_eq!(m.log_len, vec.global_log_len());
                // The maintained union also matches the reader-path
                // scatter-gather over the same vector.
                assert_eq!(
                    m.explained,
                    vec.explained_union_rowset(&pin.queries, pin.opts).unwrap()
                );
            };
            check(&sharded.load());
            for i in 0..5i64 {
                sharded.ingest(|batch| {
                    batch
                        .insert_log(vec![Value::Int(100 + i), Value::Int(1), Value::Int(i % 11)])
                        .unwrap();
                    if i % 2 == 0 {
                        batch
                            .insert_dim(event, vec![Value::Int(i % 11), Value::Int(1)])
                            .unwrap();
                    }
                });
                check(&sharded.load());
            }
            sharded.replace(db.clone());
            check(&sharded.load());
        }
    }

    #[test]
    fn str_value_keeps_shard_pools_aligned() {
        let mut db = Database::new();
        let log = db
            .create_table("Log", &[("Lid", DataType::Int), ("Dept", DataType::Str)])
            .unwrap();
        let dept = db.str_value("Radiology");
        db.insert(log, vec![Value::Int(0), dept]).unwrap();
        let k = ShardKey { table: log, col: 1 };
        let sharded = ShardedEngine::new(db, k, 3);
        let ((), _) = sharded.ingest(|batch| {
            let a = batch.str_value("Radiology");
            assert_eq!(a, dept, "existing strings resolve to the same symbol");
            let b = batch.str_value("Pediatrics");
            batch.insert_log(vec![Value::Int(1), b]).unwrap();
            batch.insert_log(vec![Value::Int(2), a]).unwrap();
        });
        let vec = sharded.load();
        assert_eq!(vec.global_log_len(), 3);
        // Every shard pool resolves the new symbol identically.
        for shard in vec.shards() {
            assert!(shard.db().pool().get("Pediatrics").is_some());
        }
        // The two new rows may land in different shards but keep global order.
        assert!(vec.locate(1).is_some() && vec.locate(2).is_some());
    }

    #[test]
    fn empty_and_skewed_shards_are_fine() {
        // All rows one patient: every row lands in one shard, the rest
        // stay empty — and answers still match the oracle.
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        let event = db
            .create_table(
                "Event",
                &[("Patient", DataType::Int), ("Actor", DataType::Int)],
            )
            .unwrap();
        db.insert(event, vec![Value::Int(7), Value::Int(1)])
            .unwrap();
        for i in 0..5i64 {
            db.insert(log, vec![Value::Int(i), Value::Int(1), Value::Int(7)])
                .unwrap();
        }
        let q = query(log, event);
        let oracle = q.explained_rows(&db, EvalOptions::default()).unwrap();
        let sharded = ShardedEngine::new(db.clone(), key(&db, log), 4);
        let vec = sharded.load();
        let lens: Vec<usize> = vec.shards().iter().map(ShardEpoch::log_len).collect();
        assert_eq!(lens.iter().sum::<usize>(), 5);
        assert_eq!(lens.iter().filter(|&&l| l == 0).count(), 3, "{lens:?}");
        assert_eq!(
            vec.explained_rows(&q, EvalOptions::default()).unwrap(),
            oracle
        );
        // An entirely empty log partitions into all-empty shards.
        let mut empty = Database::new();
        let elog = empty
            .create_table("Log", &[("Lid", DataType::Int), ("Patient", DataType::Int)])
            .unwrap();
        let sharded = ShardedEngine::new(
            empty,
            ShardKey {
                table: elog,
                col: 1,
            },
            3,
        );
        assert_eq!(sharded.load().global_log_len(), 0);
    }
}
