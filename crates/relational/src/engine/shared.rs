//! Epoch-style snapshot handoff: audit queries keep running while the log
//! ingests.
//!
//! [`Engine::refresh`] takes `&mut Engine`, so a service that holds one
//! engine must serialize every reader against every ingest — and one
//! slow refresh stalls every "is this access explained?" question behind
//! it. [`SharedEngine`] decouples the two with an epoch handoff built
//! from `std` parts only (`Arc` + a pointer-swap `RwLock`):
//!
//! * **Readers** call [`SharedEngine::load`] once per session and get an
//!   immutable [`Epoch`] — the database plus the engine built over it,
//!   frozen together. Every question the session asks against that epoch
//!   sees one consistent state of the world, no matter how many ingests
//!   land meanwhile. `load` is a read-lock held only for an `Arc` clone
//!   (a few instructions — never for the duration of a query, let alone a
//!   refresh).
//! * **The writer** (serialized by an internal mutex, so any thread may
//!   call it) runs [`SharedEngine::ingest`]: clone the current epoch's
//!   database, apply the batch, [`fork`](Engine::fork) the current engine
//!   — same snapshot, same warm `Arc`-shared caches — refresh the fork
//!   *privately*, and publish the successor epoch with a pointer swap.
//!   In-flight readers are never waited on and never blocked; they finish
//!   on the epoch they pinned and pick up the new one on their next
//!   `load`.
//!
//! A failed refresh (the typed [`RefreshError`], e.g. a table shrank) is
//! recovered by rebuilding the successor engine from scratch and recorded
//! in the [`IngestReport`]; a panic inside the ingest closure discards the
//! private clone and leaves the published epoch untouched (and the writer
//! mutex, though poisoned, recovers on the next ingest). One bad ingest —
//! like one panicking query — cannot take the auditor offline.
//!
//! # The writer/reader pattern
//!
//! This is the shape the `compliance_dashboard` / `misuse_detection`
//! examples and the `audit-bench` concurrent workload use:
//!
//! ```
//! use eba_relational::{Database, DataType, SharedEngine, Value};
//!
//! let mut db = Database::new();
//! let log = db
//!     .create_table("Log", &[("Lid", DataType::Int), ("Patient", DataType::Int)])
//!     .unwrap();
//! db.insert(log, vec![Value::Int(0), Value::Int(7)]).unwrap();
//! let shared = SharedEngine::new(db);
//!
//! std::thread::scope(|scope| {
//!     // Reader session: pin one epoch, answer everything against it.
//!     scope.spawn(|| {
//!         let epoch = shared.load();
//!         assert_eq!(epoch.db().table(log).len() > 0, true);
//!         // ... epoch.engine().explained_rows(epoch.db(), &query, opts) ...
//!     });
//!     // Writer: ingest a batch and publish the successor epoch.
//!     scope.spawn(|| {
//!         let (_, report) = shared.ingest(|db| {
//!             db.insert(log, vec![Value::Int(1), Value::Int(8)]).unwrap()
//!         });
//!         assert_eq!(report.refresh.delta.new_rows, 1);
//!     });
//! });
//! assert_eq!(shared.load().db().table(log).len(), 2);
//! ```
//!
//! # Costs
//!
//! Publishing pays one clone of the database and one [`Engine::fork`]
//! per ingest batch, on the writer thread. Storage is segmented
//! ([`crate::segment`]): both operations share every sealed segment by
//! pointer and copy only the small mutable tails, so publication is
//! **`O(batch)`**, not `O(db)` — the storage-equivalence suite and
//! `audit-bench`'s `publish/ingest_epoch_cost*` workloads meter exactly
//! this. The refresh itself is incremental too (only appended rows are
//! scanned; caches over un-grown tables stay warm across epochs, and
//! log partitions / row maps extend chunk-wise), so batch your appends:
//! one `ingest` per arriving batch, not per row.

use super::{Engine, RefreshError, RefreshStats};
use crate::chain::{ChainQuery, CmpOp, EvalOptions};
use crate::database::{Database, TableId};
use crate::rowset::RowSet;
use crate::sync::unpoison;
use crate::types::ColId;
use crate::value::Value;
use std::sync::{Arc, Mutex, RwLock};

/// A template suite registered for **incremental maintenance**: the
/// anchor shape (which log rows are under audit) plus the explanation
/// templates. Once pinned ([`SharedEngine::pin_suite`] /
/// [`super::ShardedEngine::pin_suite`]), every published epoch carries a
/// [`Maintained`] materialization of the suite's explained/unexplained
/// partition, advanced inside ingest by delta evaluation instead of
/// recomputed by readers.
#[derive(Debug, Clone)]
pub struct SuitePin {
    /// The log table the suite audits; every query must anchor on it.
    pub log: TableId,
    /// Anchor filters selecting the audited log rows (same shape as
    /// [`ChainQuery::anchor_filters`]).
    pub anchor_filters: Vec<(ColId, CmpOp, Value)>,
    /// The explanation templates.
    pub queries: Vec<ChainQuery>,
    /// Evaluation options shared by the suite.
    pub opts: EvalOptions,
}

/// The maintained explained/unexplained partition of one [`SuitePin`] at
/// one epoch. Invariant (the stream-equivalence suite proves it
/// differentially): at every published epoch, each set is **byte-identical
/// to a cold recompute** over that epoch's database —
///
/// * `anchors`     = log rows passing the pin's anchor filters,
/// * `explained`   = union over the pin's templates of their explained
///   rows (exactly [`Engine::eval_suite`]'s union),
/// * `unexplained` = `anchors \ explained`.
///
/// The maintenance argument is monotonicity: tables are append-only and
/// chain templates are monotone, so a template's explained set only ever
/// grows — an ingest can be absorbed by **unioning in** a delta, never by
/// retracting. Every template can newly explain the appended log rows
/// (one [`Engine::eval_suite_range`] over the tail covers them all); a
/// template whose support tables grew can additionally newly explain
/// *old* anchor rows, but any such row was by definition still
/// unexplained, so re-asking just those templates over the previous
/// `unexplained` residue ([`Engine::eval_suite_rows`]) recovers exactly
/// the missing explanations. The advance is O(delta + residue), never
/// O(log).
#[derive(Debug, Clone, Default)]
pub struct Maintained {
    /// Log rows matching the pin's anchor filters.
    pub anchors: RowSet,
    /// Rows explained by at least one of the pin's templates.
    pub explained: RowSet,
    /// `anchors \ explained` — the audit residue.
    pub unexplained: RowSet,
    /// Log rows covered (the log's length when this was advanced).
    pub log_len: usize,
}

/// Cold (from-scratch) materialization of `pin` over one epoch's state.
/// Also the fallback whenever the incremental path is unavailable: a
/// rebuild, a [`SharedEngine::replace`], or a freshly registered pin.
pub(super) fn compute_maintained(engine: &Engine, db: &Database, pin: &SuitePin) -> Maintained {
    let log = engine.snapshot().table(pin.log);
    let mut anchors: Vec<u32> = Vec::new();
    for r in 0..log.n_rows {
        if engine.anchor_passes_filters(&pin.anchor_filters, log, r) {
            anchors.push(r as u32);
        }
    }
    let anchors = RowSet::from_sorted_vec(&anchors);
    let mut explained = RowSet::new();
    for set in engine
        .eval_suite(db, &pin.queries, pin.opts)
        .into_iter()
        .flatten()
    {
        explained.union_with(&set);
    }
    let unexplained = anchors.difference(&explained);
    Maintained {
        anchors,
        explained,
        unexplained,
        log_len: log.n_rows,
    }
}

/// Advances `prev` across one incremental refresh whose grown tables are
/// `grown`: O(delta) anchor scan over the appended log rows, tail-range
/// evaluation of every template over the appended rows, and a
/// residue-restricted re-ask (unioned in — see [`Maintained`] for why
/// that is enough) of the templates whose support grew, over the
/// previous `unexplained` set only.
pub(super) fn advance_maintained(
    engine: &Engine,
    db: &Database,
    pin: &SuitePin,
    prev: &Maintained,
    grown: &[TableId],
) -> Maintained {
    let log = engine.snapshot().table(pin.log);
    let (l0, l1) = (prev.log_len, log.n_rows);
    let mut anchors = prev.anchors.clone();
    let mut fresh: Vec<u32> = Vec::new();
    for r in l0..l1 {
        if engine.anchor_passes_filters(&pin.anchor_filters, log, r) {
            fresh.push(r as u32);
        }
    }
    anchors.union_with(&RowSet::from_sorted_vec(&fresh));
    // Every template can explain the appended rows `[l0, l1)` — one
    // range evaluation covers them all. A template stepping into a
    // grown table (the log itself included — self-join templates step
    // back into it) can additionally newly explain *old* anchor rows;
    // explanation is monotone under append-only growth, so only the
    // previous *unexplained residue* needs re-asking, not the whole
    // log — that is what keeps the advance O(delta + residue).
    let reaches_growth =
        |q: &ChainQuery| -> bool { q.steps.iter().any(|s| grown.contains(&s.table)) };
    let reask: Vec<ChainQuery> = pin
        .queries
        .iter()
        .filter(|q| reaches_growth(q))
        .cloned()
        .collect();
    let mut explained = prev.explained.clone();
    if l1 > l0 {
        for set in engine
            .eval_suite_range(db, &pin.queries, pin.opts, l0, l1)
            .into_iter()
            .flatten()
        {
            explained.union_with(&set);
        }
    }
    if !reask.is_empty() && !prev.unexplained.is_empty() {
        for set in engine
            .eval_suite_rows(db, &reask, pin.opts, &prev.unexplained)
            .into_iter()
            .flatten()
        {
            explained.union_with(&set);
        }
    }
    let unexplained = anchors.difference(&explained);
    Maintained {
        anchors,
        explained,
        unexplained,
        log_len: l1,
    }
}

/// One immutable published state of the world: the database and the
/// engine built over it, frozen together at a sequence number.
///
/// Readers obtain epochs from [`SharedEngine::load`] and keep them for a
/// whole session — every audit-layer question asked with this epoch's
/// `db`/`engine` pair sees the same log, so an explanation, the timeline
/// it appears in, and the misuse summary next to it can never disagree
/// about which accesses exist.
#[derive(Debug)]
pub struct Epoch {
    db: Database,
    engine: Engine,
    seq: u64,
    /// Maintained materializations, one per pinned suite in registration
    /// order ([`SharedEngine::pin_suite`]). Epochs published before a pin
    /// was registered simply lack its entry — readers fall back to cold
    /// evaluation.
    maintained: Vec<Arc<Maintained>>,
}

impl Epoch {
    /// Assembles an epoch from parts. Crate-internal: this is how the
    /// sharded engine ([`super::ShardedEngine`]) publishes one epoch per
    /// shard under the vector's shared sequence number (per-shard epochs
    /// carry no maintained entries — the sharded vector maintains the
    /// global sets itself).
    pub(super) fn assemble(db: Database, engine: Engine, seq: u64) -> Epoch {
        Epoch {
            db,
            engine,
            seq,
            maintained: Vec::new(),
        }
    }

    /// The maintained materialization of pin `pin` (the id returned by
    /// [`SharedEngine::pin_suite`]), if this epoch carries one.
    pub fn maintained(&self, pin: usize) -> Option<&Arc<Maintained>> {
        self.maintained.get(pin)
    }

    /// The epoch's database state (pass as the `db` argument of the
    /// audit-layer `*_with` functions).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The warm engine over [`Epoch::db`].
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Publication sequence number (0 for the initial epoch, +1 per
    /// ingest). Strictly increasing across [`SharedEngine::load`] calls.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// What one [`SharedEngine::ingest`] published.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Sequence number of the epoch this ingest published.
    pub seq: u64,
    /// What the incremental refresh did (empty when `rebuilt` is set —
    /// the successor was built from scratch instead).
    pub refresh: RefreshStats,
    /// Set when the incremental refresh was refused and the writer
    /// recovered by rebuilding the successor engine from scratch; holds
    /// the error so the caller can log it.
    pub rebuilt: Option<RefreshError>,
}

impl IngestReport {
    /// The operator-facing warning every caller should surface when the
    /// writer fell back to a full rebuild (`None` on the normal
    /// incremental path). The fallback keeps the service publishing, but
    /// it costs a whole re-snapshot and usually means the ingest source
    /// replaced state instead of appending — exactly the situation an
    /// operator wants to hear about rather than have silently absorbed.
    pub fn fallback_warning(&self) -> Option<String> {
        self.rebuilt.as_ref().map(|err| {
            format!(
                "epoch {}: incremental refresh refused ({err}); \
                 recovered by rebuilding the engine from scratch",
                self.seq
            )
        })
    }
}

/// The snapshot-handoff cell. See the module docs for the pattern.
#[derive(Debug)]
pub struct SharedEngine {
    /// The published epoch. Write-locked only for the publish pointer
    /// swap; read-locked only for the `Arc` clone in [`SharedEngine::load`].
    current: RwLock<Arc<Epoch>>,
    /// Serializes writers; holds the next sequence number. Poison-tolerant:
    /// a panicking ingest closure leaves the published epoch untouched.
    writer: Mutex<u64>,
    /// Pinned suites, in registration order; index = pin id.
    pins: Mutex<Vec<Arc<SuitePin>>>,
}

impl SharedEngine {
    /// Builds the initial epoch (seq 0) over `db` — one full snapshot
    /// scan, exactly [`Engine::new`].
    pub fn new(db: Database) -> SharedEngine {
        let engine = Engine::new(&db);
        SharedEngine {
            current: RwLock::new(Arc::new(Epoch {
                db,
                engine,
                seq: 0,
                maintained: Vec::new(),
            })),
            writer: Mutex::new(0),
            pins: Mutex::new(Vec::new()),
        }
    }

    /// Registers a suite for incremental maintenance and returns its pin
    /// id (an index into every later epoch's maintained entries). The
    /// current epoch is republished — same database, same sequence number,
    /// warm [`Engine::fork`] — with the pin's cold materialization added,
    /// so a reader loading after `pin_suite` returns already sees the
    /// maintained sets. Serialized against ingests by the writer lock.
    pub fn pin_suite(&self, pin: SuitePin) -> usize {
        let _writer = unpoison(self.writer.lock());
        let base = self.load();
        let pin = Arc::new(pin);
        let mut pins = unpoison(self.pins.lock());
        let id = pins.len();
        pins.push(pin.clone());
        drop(pins);
        let mut maintained = base.maintained.clone();
        maintained.push(Arc::new(compute_maintained(&base.engine, &base.db, &pin)));
        *unpoison(self.current.write()) = Arc::new(Epoch {
            db: base.db.clone(),
            engine: base.engine.fork(),
            seq: base.seq,
            maintained,
        });
        id
    }

    /// Pins the current epoch. Effectively wait-free: the read lock guards
    /// a single `Arc` clone, never a query or a refresh. Call once per
    /// session (or per dashboard recomputation), not once per query —
    /// the epoch is the session's consistent view.
    pub fn load(&self) -> Arc<Epoch> {
        unpoison(self.current.read()).clone()
    }

    /// Sequence number of the current epoch.
    pub fn seq(&self) -> u64 {
        self.load().seq
    }

    /// Applies `mutate` to a private clone of the current epoch's
    /// database, brings a private fork of its engine up to date, and
    /// publishes the result as the next epoch. Returns `mutate`'s output
    /// and what was published.
    ///
    /// Writers are serialized (concurrent `ingest` calls queue); readers
    /// are never blocked — they keep answering from the epoch they
    /// pinned, and observe the new epoch on their next [`load`].
    ///
    /// # Panic safety
    /// If `mutate` (or the refresh) panics, the private clone is dropped
    /// and **nothing is published**: the current epoch stays exactly as
    /// it was, and subsequent ingests proceed normally.
    pub fn ingest<R>(&self, mutate: impl FnOnce(&mut Database) -> R) -> (R, IngestReport) {
        let (out, report) = self
            .ingest_with(mutate, |_, _, _| Ok::<(), std::convert::Infallible>(()))
            .unwrap_or_else(|e| match e {});
        (out, report)
    }

    /// [`SharedEngine::ingest`] with a **persist hook**: after `mutate`
    /// has been applied and the successor engine refreshed — but *before*
    /// anything is published — `persist` is called with the mutated
    /// database, `mutate`'s output, and the sequence number the epoch
    /// would publish as. Only if it returns `Ok` is the epoch published
    /// (and the sequence counter advanced).
    ///
    /// This is the durable-ingest ordering contract: a service that
    /// writes the batch to a [`DurableStore`](crate::pile::DurableStore)
    /// inside `persist` acknowledges only states that are already on
    /// disk, so the **published history is always a prefix of the durable
    /// history** — a crash can lose an un-acknowledged batch, never
    /// acknowledge an un-durable one.
    ///
    /// On `Err` the private clone is dropped, nothing is published, the
    /// sequence number is not consumed, and the error is returned with
    /// the writer lock released — the next ingest proceeds normally.
    ///
    /// # Panic safety
    /// Exactly as [`SharedEngine::ingest`]: a panic in `mutate`,
    /// the refresh, or `persist` publishes nothing.
    pub fn ingest_with<R, E>(
        &self,
        mutate: impl FnOnce(&mut Database) -> R,
        persist: impl FnOnce(&Database, &R, u64) -> Result<(), E>,
    ) -> Result<(R, IngestReport), E> {
        let mut next_seq = unpoison(self.writer.lock());
        let base = self.load();
        let mut db = base.db.clone();
        let out = mutate(&mut db);
        let mut engine = base.engine.fork();
        let (refresh, rebuilt) = match engine.refresh(&db) {
            Ok(stats) => (stats, None),
            Err(err) => {
                // The incremental path was refused (e.g. `mutate` replaced
                // state in a way that shrank a table); fall back to a full
                // rebuild so the service keeps publishing.
                engine = Engine::new(&db);
                (RefreshStats::default(), Some(err))
            }
        };
        let seq = *next_seq + 1;
        persist(&db, &out, seq)?;
        *next_seq = seq;
        let report = IngestReport {
            seq,
            refresh,
            rebuilt,
        };
        // Advance every pinned suite's materialization: O(delta) on the
        // incremental path, cold recompute when the engine was rebuilt
        // (or the pin was registered against a newer epoch than `base`).
        let pins = unpoison(self.pins.lock()).clone();
        let maintained: Vec<Arc<Maintained>> = pins
            .iter()
            .enumerate()
            .map(|(i, pin)| match base.maintained.get(i) {
                Some(prev) if report.rebuilt.is_none() => Arc::new(advance_maintained(
                    &engine,
                    &db,
                    pin,
                    prev,
                    &report.refresh.delta.grown,
                )),
                _ => Arc::new(compute_maintained(&engine, &db, pin)),
            })
            .collect();
        *unpoison(self.current.write()) = Arc::new(Epoch {
            db,
            engine,
            seq,
            maintained,
        });
        Ok((out, report))
    }

    /// Replaces the published database **wholesale** (an operator reload
    /// of a corrected dataset) and publishes the successor epoch.
    ///
    /// Unlike [`SharedEngine::ingest`], this never attempts the
    /// incremental refresh: an incremental pass only rescans rows
    /// *appended* since the snapshot, so a replacement whose row counts
    /// happen to line up with the published epoch's would keep the
    /// engine answering from the replaced cells. The engine is rebuilt
    /// from scratch unconditionally and the report carries
    /// [`RefreshError::Replaced`] as the rebuild reason, so
    /// [`IngestReport::fallback_warning`] fires exactly like an
    /// ingest-path fallback — a reload is an operator-visible event,
    /// never silently absorbed. Readers pinned to older epochs are
    /// untouched until their next load.
    pub fn replace(&self, db: Database) -> IngestReport {
        let mut next_seq = unpoison(self.writer.lock());
        let engine = Engine::new(&db);
        *next_seq += 1;
        let seq = *next_seq;
        let report = IngestReport {
            seq,
            refresh: RefreshStats::default(),
            rebuilt: Some(RefreshError::Replaced),
        };
        // A replacement invalidates every maintained set: recompute cold.
        let pins = unpoison(self.pins.lock()).clone();
        let maintained = pins
            .iter()
            .map(|pin| Arc::new(compute_maintained(&engine, &db, pin)))
            .collect();
        *unpoison(self.current.write()) = Arc::new(Epoch {
            db,
            engine,
            seq,
            maintained,
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainQuery, ChainStep, EvalOptions};
    use crate::database::TableId;
    use crate::types::DataType;
    use crate::value::Value;

    fn world() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        let event = db
            .create_table(
                "Event",
                &[("Patient", DataType::Int), ("Actor", DataType::Int)],
            )
            .unwrap();
        db.insert(event, vec![Value::Int(7), Value::Int(1)])
            .unwrap();
        db.insert(log, vec![Value::Int(0), Value::Int(1), Value::Int(7)])
            .unwrap();
        (db, log, event)
    }

    fn query(log: TableId, event: TableId) -> ChainQuery {
        ChainQuery {
            log,
            lid_col: 0,
            start_col: 2,
            steps: vec![ChainStep::new(event, 0, 1)],
            close_col: Some(1),
            anchor_filters: vec![],
        }
    }

    #[test]
    fn readers_pin_an_immutable_epoch() {
        let (db, log, event) = world();
        let shared = SharedEngine::new(db);
        let q = query(log, event);
        let old = shared.load();
        assert_eq!(old.seq(), 0);
        let rows_before = old
            .engine()
            .explained_rows(old.db(), &q, EvalOptions::default())
            .unwrap();

        let (_, report) = shared.ingest(|db| {
            db.insert(log, vec![Value::Int(1), Value::Int(1), Value::Int(7)])
                .unwrap();
        });
        assert_eq!(report.seq, 1);
        assert!(report.rebuilt.is_none());
        assert_eq!(report.refresh.delta.new_rows, 1);

        // The pinned epoch still answers from its frozen state...
        assert_eq!(old.db().table(log).len(), 1);
        assert_eq!(
            old.engine()
                .explained_rows(old.db(), &q, EvalOptions::default())
                .unwrap(),
            rows_before
        );
        // ...while a fresh load sees the ingested batch.
        let new = shared.load();
        assert_eq!(new.seq(), 1);
        assert_eq!(new.db().table(log).len(), 2);
        assert_eq!(
            new.engine()
                .explained_rows(new.db(), &q, EvalOptions::default())
                .unwrap(),
            q.explained_rows(new.db(), EvalOptions::default()).unwrap()
        );
    }

    #[test]
    fn caches_stay_warm_across_epochs() {
        let (db, log, event) = world();
        let shared = SharedEngine::new(db);
        let q = query(log, event);
        let e0 = shared.load();
        let _ = e0
            .engine()
            .explained_rows(e0.db(), &q, EvalOptions::default())
            .unwrap();
        assert_eq!(e0.engine().cached_step_maps(), 1);
        // Growing only the log drops partitions, not the Event step map —
        // and the successor inherits it through the fork.
        let (_, report) = shared.ingest(|db| {
            db.insert(log, vec![Value::Int(1), Value::Int(2), Value::Int(9)])
                .unwrap();
        });
        assert_eq!(report.refresh.dropped_step_maps, 0);
        assert_eq!(shared.load().engine().cached_step_maps(), 1);
    }

    #[test]
    fn panicking_ingest_publishes_nothing_and_recovers() {
        let (db, log, event) = world();
        let shared = SharedEngine::new(db);
        let before = shared.load();
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.ingest(|db| {
                db.insert(log, vec![Value::Int(9), Value::Int(9), Value::Int(9)])
                    .unwrap();
                panic!("ingest source glitched");
            })
        }));
        assert!(panic.is_err());
        // Nothing was published: same epoch, same contents.
        let after = shared.load();
        assert_eq!(after.seq(), before.seq());
        assert_eq!(after.db().table(log).len(), 1);
        // And the writer recovers: the next ingest publishes normally.
        let (_, report) = shared.ingest(|db| {
            db.insert(event, vec![Value::Int(9), Value::Int(2)])
                .unwrap();
        });
        assert_eq!(report.seq, 1);
        assert_eq!(shared.load().db().table(event).len(), 2);
    }

    #[test]
    fn rebuild_fallback_is_reported_with_a_warning() {
        let (db, log, event) = world();
        let shared = SharedEngine::new(db);
        // A mutator that *replaces* the database (shrinking the catalog)
        // refuses the incremental path; the writer must still publish.
        let (_, report) = shared.ingest(|db| {
            let mut fresh = Database::new();
            let log2 = fresh
                .create_table("Log", &[("Lid", DataType::Int)])
                .unwrap();
            fresh.insert(log2, vec![Value::Int(0)]).unwrap();
            *db = fresh;
        });
        assert!(report.rebuilt.is_some());
        let warning = report.fallback_warning().expect("fallback warns");
        assert!(warning.contains("epoch 1"), "{warning}");
        assert!(warning.contains("rebuilding"), "{warning}");
        // The published epoch is the rebuilt one.
        let epoch = shared.load();
        assert_eq!(epoch.seq(), 1);
        assert_eq!(epoch.db().table_id("Log").unwrap().0, 0);
        // The normal path stays warning-free.
        let shared = SharedEngine::new({
            let (db, _, _) = world();
            db
        });
        let (_, report) = shared.ingest(|db| {
            db.insert(log, vec![Value::Int(1), Value::Int(1), Value::Int(7)])
                .unwrap();
            let _ = event;
        });
        assert!(report.fallback_warning().is_none());
    }

    #[test]
    fn replace_rebuilds_even_when_nothing_shrank() {
        // The hole `replace` exists to close: a replacement whose row
        // counts line up with the published epoch's would pass the
        // incremental refresh's shrink checks, yet its *cells* differ —
        // an incremental pass would keep answering from the old data.
        let (db, log, event) = world();
        let shared = SharedEngine::new(db);
        let q = query(log, event);
        let before = shared
            .load()
            .engine()
            .explained_rows(shared.load().db(), &q, EvalOptions::default())
            .unwrap();
        // Same shape, same row counts, different cells: the event now
        // names actor 2, not 1, so the old answer is wrong for it.
        let mut corrected = Database::new();
        let log2 = corrected
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        let event2 = corrected
            .create_table(
                "Event",
                &[("Patient", DataType::Int), ("Actor", DataType::Int)],
            )
            .unwrap();
        corrected
            .insert(event2, vec![Value::Int(7), Value::Int(2)])
            .unwrap();
        corrected
            .insert(log2, vec![Value::Int(0), Value::Int(1), Value::Int(7)])
            .unwrap();
        let report = shared.replace(corrected);
        assert_eq!(report.seq, 1);
        assert_eq!(report.rebuilt, Some(RefreshError::Replaced));
        let warning = report.fallback_warning().expect("reload warns");
        assert!(warning.contains("replaced"), "{warning}");
        // The published epoch answers from the *corrected* data, exactly
        // like a from-scratch engine would.
        let epoch = shared.load();
        let after = epoch
            .engine()
            .explained_rows(epoch.db(), &q, EvalOptions::default())
            .unwrap();
        assert_eq!(
            after,
            q.explained_rows(epoch.db(), EvalOptions::default())
                .unwrap()
        );
        assert_ne!(after, before, "the corrected cells change the answer");
    }

    #[test]
    fn failed_persist_publishes_nothing_and_frees_the_seq() {
        let (db, log, _) = world();
        let shared = SharedEngine::new(db);
        // The hook sees the mutated database and the would-be seq...
        let err = shared
            .ingest_with(
                |db| {
                    db.insert(log, vec![Value::Int(1), Value::Int(1), Value::Int(7)])
                        .unwrap();
                },
                |db, _, seq| {
                    assert_eq!(seq, 1);
                    assert_eq!(db.table(log).len(), 2, "hook sees the mutation");
                    Err("disk full")
                },
            )
            .unwrap_err();
        assert_eq!(err, "disk full");
        // ...but nothing was published and the seq was not consumed.
        assert_eq!(shared.seq(), 0);
        assert_eq!(shared.load().db().table(log).len(), 1);
        let (_, report) = shared
            .ingest_with(
                |db| {
                    db.insert(log, vec![Value::Int(1), Value::Int(1), Value::Int(7)])
                        .unwrap();
                },
                |_, _, seq| {
                    assert_eq!(seq, 1, "the failed attempt's seq is reused");
                    Ok::<(), &str>(())
                },
            )
            .unwrap();
        assert_eq!(report.seq, 1);
        assert_eq!(shared.load().db().table(log).len(), 2);
    }

    #[test]
    fn maintained_sets_track_every_epoch() {
        let (db, log, event) = world();
        let shared = SharedEngine::new(db);
        let pin = SuitePin {
            log,
            anchor_filters: vec![],
            queries: vec![query(log, event)],
            opts: EvalOptions::default(),
        };
        let id = shared.pin_suite(pin.clone());
        let check = |epoch: &Epoch| {
            let m = epoch.maintained(id).expect("pinned epoch carries the sets");
            let cold = compute_maintained(epoch.engine(), epoch.db(), &pin);
            assert_eq!(m.anchors, cold.anchors);
            assert_eq!(m.explained, cold.explained);
            assert_eq!(m.unexplained, cold.unexplained);
            assert_eq!(m.log_len, cold.log_len);
        };
        check(&shared.load());
        // Log-only appends take the tail path; event appends force a full
        // re-eval (the template's support grew); mixed batches do both.
        for i in 0..6i64 {
            shared.ingest(|db| {
                db.insert(
                    log,
                    vec![Value::Int(10 + i), Value::Int(1), Value::Int(7 + i % 2)],
                )
                .unwrap();
                if i % 2 == 0 {
                    db.insert(event, vec![Value::Int(7 + i), Value::Int(1)])
                        .unwrap();
                }
            });
            check(&shared.load());
        }
        // A wholesale replacement recomputes the sets cold.
        let (corrected, ..) = world();
        shared.replace(corrected);
        check(&shared.load());
        // Epochs published before the pin lack the entry, never lie.
        let unpinned = SharedEngine::new({
            let (db, ..) = world();
            db
        });
        assert!(unpinned.load().maintained(0).is_none());
    }

    #[test]
    fn ingest_returns_the_mutators_output() {
        let (db, log, _) = world();
        let shared = SharedEngine::new(db);
        let (rid, _) = shared.ingest(|db| {
            db.insert(log, vec![Value::Int(1), Value::Int(3), Value::Int(7)])
                .unwrap()
        });
        assert_eq!(rid, 1);
    }

    #[test]
    fn concurrent_readers_always_observe_a_published_epoch() {
        let (db, log, event) = world();
        let shared = SharedEngine::new(db);
        let q = query(log, event);
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut last_seq = 0;
                    while !done.load(std::sync::atomic::Ordering::Relaxed) {
                        let epoch = shared.load();
                        assert!(epoch.seq() >= last_seq, "epochs move forward");
                        last_seq = epoch.seq();
                        // The epoch is internally consistent: the engine
                        // answers exactly like the row evaluator over the
                        // epoch's own database.
                        assert_eq!(
                            epoch
                                .engine()
                                .explained_rows(epoch.db(), &q, EvalOptions::default())
                                .unwrap(),
                            q.explained_rows(epoch.db(), EvalOptions::default())
                                .unwrap()
                        );
                    }
                });
            }
            for i in 0..5i64 {
                shared.ingest(|db| {
                    db.insert(log, vec![Value::Int(10 + i), Value::Int(1), Value::Int(7)])
                        .unwrap();
                    db.insert(event, vec![Value::Int(7), Value::Int(10 + i)])
                        .unwrap();
                });
            }
            done.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(shared.seq(), 5);
    }
}
