//! Memoized per-step join maps in CSR form.
//!
//! A [`ChainQuery`](crate::ChainQuery) step is characterized — for
//! anchor-independent evaluation — by `(table, enter_col, exit_col,
//! const-filters, dedup)`. Candidate paths generated during one mining run
//! overwhelmingly share steps (every extension of a frontier path repeats
//! all of the parent's steps), so the engine builds each distinct step's
//! `enter → {exits}` map **once** and shares it across all queries via the
//! [`Engine`](super::Engine) cache.
//!
//! The map itself is a CSR array over the dense id space: `offsets` has one
//! slot per interned id (plus one), `exits` concatenates the exit-id lists.
//! Probing is two array loads — no hashing on the join hot path.

use super::interner::{InternedDb, InternedTable, NULL_ID};
use crate::chain::{ChainStep, CmpOp, Rhs};
use crate::database::TableId;
use crate::types::ColId;
use crate::value::Value;

/// Identity of a shareable step map.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct StepKey {
    pub table: TableId,
    pub enter_col: ColId,
    pub exit_col: ColId,
    /// Constant filters in declaration order (order matters for identity
    /// only, not results; canonicalizing it would merely improve sharing).
    pub const_filters: Vec<(ColId, CmpOp, Value)>,
    /// Whether distinct `(enter, exit)` projection is applied.
    pub dedup: bool,
}

impl StepKey {
    /// The key of a step under the given dedup setting.
    ///
    /// Steps with anchor-dependent filters have no shareable map; callers
    /// must route those queries to the per-row evaluator first.
    pub fn of(step: &ChainStep, dedup: bool) -> StepKey {
        StepKey {
            table: step.table,
            enter_col: step.enter_col,
            exit_col: step.exit_col,
            const_filters: step
                .filters
                .iter()
                .filter_map(|f| match f.rhs {
                    Rhs::Const(c) => Some((f.col, f.op, c)),
                    Rhs::AnchorCol(_) => None,
                })
                .collect(),
            dedup,
        }
    }
}

/// A built `enter → exits` map (CSR over the dense id space).
#[derive(Debug)]
pub(crate) struct StepMap {
    offsets: Vec<u32>,
    exits: Vec<u32>,
}

impl StepMap {
    /// Exit ids reachable from `enter` (with multiplicities unless the map
    /// was built with dedup).
    ///
    /// Ids interned *after* this map was built (an incremental refresh grew
    /// some other table) fall past `offsets` and resolve to the empty
    /// slice. That is exact, not an approximation: the map's own table did
    /// not grow (else the engine would have dropped the map), so a value
    /// unseen at build time cannot occur in any of its rows.
    #[inline]
    pub fn exits_of(&self, enter: u32) -> &[u32] {
        let i = enter as usize;
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.exits[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of stored `(enter, exit)` pairs.
    #[cfg(test)]
    pub fn pair_count(&self) -> usize {
        self.exits.len()
    }

    /// Builds the map for `key` from the interned snapshot.
    pub fn build(key: &StepKey, snapshot: &InternedDb) -> StepMap {
        let table = snapshot.table(key.table);
        let enter_col = &table.cols[key.enter_col];
        let exit_col = &table.cols[key.exit_col];

        let mut pairs: Vec<(u32, u32)> = Vec::new();
        // Sequential scan over the segmented columns: chained chunk
        // iteration, no per-row segment lookup.
        'rows: for (r, (&enter, &exit)) in enter_col.iter().zip(exit_col.iter()).enumerate() {
            if enter == NULL_ID || exit == NULL_ID {
                continue;
            }
            for &(col, op, rhs) in &key.const_filters {
                let lhs = snapshot.interner.value(table.cols[col][r]);
                if !op.eval(&lhs, &rhs) {
                    continue 'rows;
                }
            }
            pairs.push((enter, exit));
        }
        if key.dedup {
            pairs.sort_unstable();
            pairs.dedup();
        }

        // Counting sort into CSR (pairs may arrive in row order when dedup
        // is off; exit-list order never affects set-semantics evaluation).
        let n_ids = snapshot.interner.len();
        let mut counts = vec![0u32; n_ids + 1];
        for &(enter, _) in &pairs {
            counts[enter as usize + 1] += 1;
        }
        for i in 0..n_ids {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut exits = vec![0u32; pairs.len()];
        for &(enter, exit) in &pairs {
            let slot = &mut cursor[enter as usize];
            exits[*slot as usize] = exit;
            *slot += 1;
        }
        StepMap { offsets, exits }
    }
}

/// A built `enter → row indexes` map (CSR over the dense id space) for one
/// `(table, enter_col)` pair and one contiguous **row range** — the
/// engine's substrate for evaluating *anchor-dependent* decorated queries
/// per log row.
///
/// Unlike [`StepMap`] it carries no filters in its identity: decorations
/// that reference the anchor row must be re-evaluated per anchor, so the
/// map only pre-groups the table's rows by enter id and one map serves
/// **every** decorated query entering the table on that column, under
/// either dedup setting.
///
/// Because tables are append-only, a map over rows `[from, to)` stays
/// valid forever — growth appends *new* chunks instead of invalidating
/// old ones ([`RowMapChunks`]), so bringing the cache up to date after an
/// ingest scans only the appended rows.
#[derive(Debug)]
pub(crate) struct RowMap {
    /// First enter id the CSR covers; ids below (or past the end) probe
    /// empty. Offset-compressing to the `[base, base + span)` id range
    /// actually present keeps a chunk's memory and build cost
    /// proportional to the *chunk*, not to the whole (ever-growing)
    /// interner id space.
    base: u32,
    offsets: Vec<u32>,
    rows: Vec<u32>,
}

impl RowMap {
    /// Row indexes (global table row ids) whose `enter_col` equals
    /// `enter` within this chunk's range (empty for ids outside the
    /// chunk's id span — exact for the same reason as
    /// [`StepMap::exits_of`]: an id absent at build time cannot occur in
    /// rows that have not changed).
    #[inline]
    pub fn rows_of(&self, enter: u32) -> &[u32] {
        if enter < self.base {
            return &[];
        }
        let i = (enter - self.base) as usize;
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.rows[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Builds the map over all rows of one column of an interned table.
    pub fn build(table: &InternedTable, enter_col: ColId) -> RowMap {
        Self::build_range(table, enter_col, 0, table.n_rows)
    }

    /// Builds the map over rows `[from, to)`, storing *global* row ids.
    /// NULL enters are skipped (NULL never equi-joins). Scans are
    /// chunk-wise ([`crate::segment::SegVec::iter_range`]) so neither
    /// extension nor the periodic compaction rebuild pays per-element
    /// segment resolution.
    pub fn build_range(table: &InternedTable, enter_col: ColId, from: usize, to: usize) -> RowMap {
        let enter = &table.cols[enter_col];
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        for (_, &e) in enter.iter_range(from, to) {
            if e != NULL_ID {
                lo = lo.min(e);
                hi = hi.max(e);
            }
        }
        if lo > hi {
            // No non-null enters in the range.
            return RowMap {
                base: 0,
                offsets: vec![0],
                rows: Vec::new(),
            };
        }
        let span = (hi - lo) as usize + 1;
        let mut counts = vec![0u32; span + 1];
        for (_, &e) in enter.iter_range(from, to) {
            if e != NULL_ID {
                counts[(e - lo) as usize + 1] += 1;
            }
        }
        for i in 0..span {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let total = offsets[span] as usize;
        let mut rows = vec![0u32; total];
        for (r, &e) in enter.iter_range(from, to) {
            if e != NULL_ID {
                let slot = &mut cursor[(e - lo) as usize];
                rows[*slot as usize] = r as u32;
                *slot += 1;
            }
        }
        RowMap {
            base: lo,
            offsets,
            rows,
        }
    }
}

/// How many chunks a [`RowMapChunks`] (or a log-partition stack) may
/// accumulate before it is compacted into one chunk covering everything.
/// Bounds the per-probe chunk overhead while keeping extension `O(batch)`
/// amortized.
pub(crate) const MAX_CACHE_CHUNKS: usize = 8;

/// The chunked per-`(table, enter_col)` row-map cache entry: `Arc`-shared
/// chunks over disjoint, contiguous row ranges covering `[0, covered)`.
/// Growth appends a chunk over just the new rows; chunks over old rows
/// are shared with every engine fork that inherited them.
#[derive(Debug, Clone, Default)]
pub(crate) struct RowMapChunks {
    pub chunks: Vec<std::sync::Arc<RowMap>>,
    /// Rows covered by the chunks (the table's `n_rows` when last
    /// extended).
    pub covered: usize,
}

impl RowMapChunks {
    /// Candidate rows for `enter`, across all chunks (ascending: chunks
    /// are in row order and each chunk's lists are ascending).
    #[inline]
    pub fn rows_of(&self, enter: u32) -> impl Iterator<Item = u32> + '_ {
        self.chunks
            .iter()
            .flat_map(move |c| c.rows_of(enter).iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::types::DataType;

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db
            .create_table(
                "E",
                &[
                    ("Enter", DataType::Int),
                    ("Exit", DataType::Int),
                    ("Tag", DataType::Int),
                ],
            )
            .unwrap();
        for (e, x, tag) in [(1, 10, 0), (1, 10, 1), (1, 11, 0), (2, 10, 0)] {
            db.insert(t, vec![Value::Int(e), Value::Int(x), Value::Int(tag)])
                .unwrap();
        }
        db.insert(t, vec![Value::Null, Value::Int(9), Value::Int(0)])
            .unwrap();
        db.insert(t, vec![Value::Int(3), Value::Null, Value::Int(0)])
            .unwrap();
        (db, t)
    }

    fn ids(snap: &InternedDb, vals: &[i64]) -> Vec<u32> {
        vals.iter()
            .map(|&v| snap.interner.id_of(&Value::Int(v)).unwrap())
            .collect()
    }

    #[test]
    fn dedup_collapses_duplicate_pairs() {
        let (db, t) = setup();
        let snap = InternedDb::snapshot(&db);
        let step = ChainStep::new(t, 0, 1);
        let with = StepMap::build(&StepKey::of(&step, true), &snap);
        let without = StepMap::build(&StepKey::of(&step, false), &snap);
        let [e1] = ids(&snap, &[1])[..] else { panic!() };
        // (1,10) appears twice in the data: kept once with dedup.
        assert_eq!(with.exits_of(e1).len(), 2);
        assert_eq!(without.exits_of(e1).len(), 3);
        assert_eq!(with.pair_count(), 3);
        assert_eq!(without.pair_count(), 4);
    }

    #[test]
    fn nulls_never_enter_the_map() {
        let (db, t) = setup();
        let snap = InternedDb::snapshot(&db);
        let map = StepMap::build(&StepKey::of(&ChainStep::new(t, 0, 1), true), &snap);
        let [e3] = ids(&snap, &[3])[..] else { panic!() };
        // Row (3, NULL) contributes nothing; NULL enters are absent too.
        assert!(map.exits_of(e3).is_empty());
    }

    #[test]
    fn const_filters_restrict_rows() {
        let (db, t) = setup();
        let snap = InternedDb::snapshot(&db);
        let mut step = ChainStep::new(t, 0, 1);
        step.filters.push(crate::chain::StepFilter {
            col: 2,
            op: CmpOp::Eq,
            rhs: Rhs::Const(Value::Int(1)),
        });
        let map = StepMap::build(&StepKey::of(&step, true), &snap);
        let [e1, e2] = ids(&snap, &[1, 2])[..] else {
            panic!()
        };
        assert_eq!(map.exits_of(e1).len(), 1); // only the Tag=1 row
        assert!(map.exits_of(e2).is_empty());
    }

    #[test]
    fn row_map_groups_rows_by_enter_id() {
        let (db, _t) = setup();
        let snap = InternedDb::snapshot(&db);
        let table = snap.table(crate::database::TableId(0));
        let map = RowMap::build(table, 0);
        let [e1, e2, e3] = ids(&snap, &[1, 2, 3])[..] else {
            panic!()
        };
        // Rows 0..=2 have Enter=1; row 3 has Enter=2; row 5 (Enter=3) has a
        // NULL exit but is still listed (filters run per anchor row).
        assert_eq!(map.rows_of(e1), &[0, 1, 2]);
        assert_eq!(map.rows_of(e2), &[3]);
        assert_eq!(map.rows_of(e3), &[5]);
        // NULL enters (row 4) are in no bucket; out-of-range ids are empty.
        assert_eq!(map.rows.len(), 5);
        assert!(map.rows_of(snap.interner.len() as u32 + 7).is_empty());
    }

    #[test]
    fn range_chunks_are_offset_compressed_and_exact() {
        let (db, t) = setup();
        let snap = InternedDb::snapshot(&db);
        let table = snap.table(t);
        // A chunk over the last two rows only (the NULL-enter row and
        // Enter=3); its CSR covers just the id span present, and probes
        // outside that span — below base or past the end — are empty.
        let chunk = RowMap::build_range(table, 0, 4, 6);
        let [e1, e3] = ids(&snap, &[1, 3])[..] else {
            panic!()
        };
        assert_eq!(chunk.rows_of(e3), &[5]);
        assert!(chunk.rows_of(e1).is_empty(), "id below the chunk's base");
        assert!(chunk.rows_of(u32::MAX - 1).is_empty());
        assert_eq!(chunk.offsets.len(), 2, "CSR sized to the span, not n_ids");
        // An all-NULL (or empty) range yields an empty chunk.
        let empty = RowMap::build_range(table, 0, 4, 5);
        assert!(empty.rows.is_empty());
        assert!(empty.rows_of(e1).is_empty());
        // Chunks over [0,4) + [4,6) together equal the full build.
        let full = RowMap::build(table, 0);
        let head = RowMap::build_range(table, 0, 0, 4);
        for &e in &ids(&snap, &[1, 2, 3]) {
            let mut merged: Vec<u32> = head.rows_of(e).to_vec();
            merged.extend_from_slice(chunk.rows_of(e));
            assert_eq!(merged, full.rows_of(e));
        }
    }

    #[test]
    fn anchor_filters_are_excluded_from_keys() {
        let (_, t) = setup();
        let mut step = ChainStep::new(t, 0, 1);
        step.filters.push(crate::chain::StepFilter {
            col: 2,
            op: CmpOp::Lt,
            rhs: Rhs::AnchorCol(0),
        });
        // The anchor-dependent filter is not part of the shareable identity.
        assert_eq!(
            StepKey::of(&step, true),
            StepKey::of(&ChainStep::new(t, 0, 1), true)
        );
    }
}
