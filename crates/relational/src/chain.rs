//! Path-shaped conjunctive query evaluation.
//!
//! An explanation template (Def. 1 of the paper) is a stylized SQL query
//! whose selection conditions form a *path* from the data that was accessed
//! (`Log.Patient`) back to the user who accessed it (`Log.User`). This module
//! evaluates exactly that query class:
//!
//! ```sql
//! SELECT COUNT(DISTINCT Log.Lid)
//! FROM Log, T_1, ..., T_n
//! WHERE Log.<start> = T_1.<enter>
//!   AND T_1.<exit> = T_2.<enter>
//!   AND ...
//!   AND T_n.<exit> = Log.<close>   -- only for completed explanations
//! ```
//!
//! A [`ChainQuery`] is the normalized form: an anchor log table, a start
//! column, a sequence of [`ChainStep`]s (one per joined tuple variable), and
//! an optional closing column. Each step may carry extra selection conditions
//! ([`StepFilter`]) against constants or against the anchor log row — the
//! latter is how *decorated* templates (Def. 3) such as
//! `L2.Date < L1.Date` (repeat access) are expressed.
//!
//! # Evaluation strategy
//!
//! The truth of an undecorated template for a log record depends only on the
//! record's `(start, close)` value pair, so the evaluator groups the log by
//! distinct pair — the same effect as the paper's
//! `COUNT(DISTINCT Log.Lid)` over a de-duplicated join — and walks a
//! *semijoin chain*: a frontier of distinct values is pushed through a
//! per-step `enter → {exit}` map built from a `SELECT DISTINCT` projection
//! of the step's table (the paper's "reducing result multiplicity"
//! optimization, on by default and toggleable via [`EvalOptions`] for the
//! ablation benchmarks). Decorated queries that reference the anchor row
//! fall back to per-row evaluation.

use crate::database::{Database, TableId};
use crate::error::{Error, Result};
use crate::table::RowId;
use crate::types::ColId;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// Comparison operator usable in a [`StepFilter`] (the paper's condition
/// language allows `{<, <=, =, >=, >}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    /// Evaluates `lhs op rhs` under SQL semantics (NULL ⇒ false).
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        if self == CmpOp::Eq {
            return lhs.sql_eq(rhs);
        }
        match lhs.sql_cmp(rhs) {
            None => false,
            Some(ord) => match self {
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ge => ord.is_ge(),
                CmpOp::Gt => ord.is_gt(),
            },
        }
    }

    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        }
    }
}

/// Right-hand side of a [`StepFilter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rhs {
    /// A constant.
    Const(Value),
    /// A column of the *anchor* log row (the `L` tuple variable). This is
    /// what makes a template decorated in a way that depends on the
    /// individual access, e.g. `L2.Date < L.Date`.
    AnchorCol(ColId),
}

/// An extra selection condition on one step's tuple variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepFilter {
    /// Column of the step's table the condition applies to.
    pub col: ColId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Rhs,
}

/// One joined tuple variable on the path.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStep {
    /// Table of this tuple variable (may repeat: self-joins get one step per
    /// alias).
    pub table: TableId,
    /// Column joined to the previous tuple variable's exit.
    pub enter_col: ColId,
    /// Column the next join leaves from (equals `enter_col` when the path
    /// has not yet moved within the table).
    pub exit_col: ColId,
    /// Extra selection conditions (decorations).
    pub filters: Vec<StepFilter>,
}

impl ChainStep {
    /// An undecorated step.
    pub fn new(table: TableId, enter_col: ColId, exit_col: ColId) -> Self {
        ChainStep {
            table,
            enter_col,
            exit_col,
            filters: Vec::new(),
        }
    }

    fn passes_const_filters(&self, row: &[Value]) -> bool {
        self.filters.iter().all(|f| match f.rhs {
            Rhs::Const(c) => f.op.eval(&row[f.col], &c),
            Rhs::AnchorCol(_) => true,
        })
    }

    fn passes_all_filters(&self, row: &[Value], anchor: &[Value]) -> bool {
        self.filters.iter().all(|f| {
            let rhs = match f.rhs {
                Rhs::Const(c) => c,
                Rhs::AnchorCol(col) => anchor[col],
            };
            f.op.eval(&row[f.col], &rhs)
        })
    }

    fn has_anchor_filter(&self) -> bool {
        self.filters
            .iter()
            .any(|f| matches!(f.rhs, Rhs::AnchorCol(_)))
    }
}

/// Evaluation knobs. The default enables the paper's optimizations.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Project each step's table to its distinct `(enter, exit)` pairs before
    /// joining (paper §3.2.1, "Reducing Result Multiplicity"). Turning this
    /// off changes performance, never results.
    pub dedup: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { dedup: true }
    }
}

/// A path-shaped conjunctive query anchored at a log table. See the module
/// docs for the SQL form.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainQuery {
    /// The anchor log table (`L`).
    pub log: TableId,
    /// Column holding the log-record id, counted distinctly for support.
    pub lid_col: ColId,
    /// Column of `L` where the path begins (e.g. `Log.Patient`; for
    /// backward partial paths in two-way mining this is `Log.User`).
    pub start_col: ColId,
    /// Joined tuple variables, in path order. Must be non-empty.
    pub steps: Vec<ChainStep>,
    /// When `Some(c)`, the last step's exit value must equal the anchor
    /// row's column `c` — this closes the path back at the log and makes the
    /// query a (candidate) explanation template.
    pub close_col: Option<ColId>,
    /// Conjunctive filters on the *anchor* log rows, restricting which
    /// accesses the query is asked to explain (e.g. `Day <= 6 AND
    /// IsFirst = 1` to mine on the first six days' first accesses, as the
    /// paper's experiments do). Support is counted over passing rows only.
    pub anchor_filters: Vec<(ColId, CmpOp, Value)>,
}

/// One witness of an explanation: the specific rows bound to each step's
/// tuple variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// `step_rows[i]` is the row of `steps[i].table` used by this witness.
    pub step_rows: Vec<RowId>,
}

/// Result of [`ChainQuery::trace`]: per-step frontier sizes for one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepTrace {
    /// Distinct values surviving after each step (0 once the chain dies).
    pub survivors: Vec<usize>,
    /// Whether the chain finally explained the row.
    pub closed: bool,
    /// Whether the row passed the anchor filters at all.
    pub anchor_matches: bool,
}

impl StepTrace {
    /// Index of the first step with no survivors, if the chain died.
    pub fn died_at(&self) -> Option<usize> {
        self.survivors.iter().position(|&n| n == 0)
    }

    /// How far the chain progressed: the number of steps with at least one
    /// survivor (equals `survivors.len()` when the chain reached the end).
    pub fn progress(&self) -> usize {
        self.died_at().unwrap_or(self.survivors.len())
    }
}

impl ChainQuery {
    /// Structural validation against a database.
    pub fn validate(&self, db: &Database) -> Result<()> {
        if self.steps.is_empty() {
            return Err(Error::InvalidQuery("chain has no steps".into()));
        }
        let check_col = |table: TableId, col: ColId| -> Result<()> {
            if table.0 >= db.table_count() {
                return Err(Error::InvalidTableId(table.0));
            }
            let arity = db.table(table).schema().arity();
            if col >= arity {
                return Err(Error::InvalidQuery(format!(
                    "column {col} out of range for table `{}`",
                    db.table(table).name()
                )));
            }
            Ok(())
        };
        check_col(self.log, self.lid_col)?;
        check_col(self.log, self.start_col)?;
        if let Some(c) = self.close_col {
            check_col(self.log, c)?;
        }
        for (col, _, _) in &self.anchor_filters {
            check_col(self.log, *col)?;
        }
        for s in &self.steps {
            check_col(s.table, s.enter_col)?;
            check_col(s.table, s.exit_col)?;
            for f in &s.filters {
                check_col(s.table, f.col)?;
                if let Rhs::AnchorCol(c) = f.rhs {
                    check_col(self.log, c)?;
                }
            }
        }
        Ok(())
    }

    /// True when some filter references the anchor log row, so explained-ness
    /// is not a function of the `(start, close)` pair alone.
    pub fn is_anchor_dependent(&self) -> bool {
        self.steps.iter().any(ChainStep::has_anchor_filter)
    }

    /// Whether a log row passes the anchor filters.
    fn anchor_passes(&self, row: &[Value]) -> bool {
        self.anchor_filters
            .iter()
            .all(|(col, op, v)| op.eval(&row[*col], v))
    }

    /// Number of distinct log ids passing the anchor filters — the
    /// denominator for support fractions and recall.
    pub fn anchor_lid_count(&self, db: &Database) -> usize {
        let log = db.table(self.log);
        let mut lids = HashSet::new();
        for (_, row) in log.iter() {
            if self.anchor_passes(row) {
                lids.insert(row[self.lid_col]);
            }
        }
        lids.len()
    }

    /// Log row ids explained by this query, in ascending order.
    pub fn explained_rows(&self, db: &Database, opts: EvalOptions) -> Result<Vec<RowId>> {
        self.validate(db)?;
        if self.is_anchor_dependent() {
            self.explained_rows_per_row(db)
        } else {
            self.explained_rows_grouped(db, opts)
        }
    }

    /// Support: the number of distinct log ids explained — the paper's
    /// `SELECT COUNT(DISTINCT Log.Lid)`.
    pub fn support(&self, db: &Database, opts: EvalOptions) -> Result<usize> {
        let rows = self.explained_rows(db, opts)?;
        let log = db.table(self.log);
        let mut lids = HashSet::with_capacity(rows.len());
        for r in rows {
            lids.insert(log.cell(r, self.lid_col));
        }
        Ok(lids.len())
    }

    // ------------------------------------------------------------- grouped

    /// Pair-invariant evaluation: group the log by distinct
    /// `(start[, close])` values and walk the semijoin chain once per group.
    fn explained_rows_grouped(&self, db: &Database, opts: EvalOptions) -> Result<Vec<RowId>> {
        let log = db.table(self.log);
        // start value -> (close value or Null) -> rows
        let mut groups: HashMap<Value, HashMap<Value, Vec<RowId>>> = HashMap::new();
        for (rid, row) in log.iter() {
            if !self.anchor_passes(row) {
                continue;
            }
            let start = row[self.start_col];
            if start.is_null() {
                continue;
            }
            let close = match self.close_col {
                Some(c) => {
                    let v = row[c];
                    if v.is_null() {
                        continue;
                    }
                    v
                }
                None => Value::Null,
            };
            groups
                .entry(start)
                .or_default()
                .entry(close)
                .or_default()
                .push(rid);
        }

        let maps = self.build_step_maps(db, opts);
        let mut out = Vec::new();
        let mut frontier: HashSet<Value> = HashSet::new();
        let mut next: HashSet<Value> = HashSet::new();
        for (start, closes) in &groups {
            frontier.clear();
            frontier.insert(*start);
            let mut dead = false;
            for map in &maps {
                next.clear();
                for v in frontier.iter() {
                    if let Some(exits) = map.get(v) {
                        next.extend(exits.iter().copied());
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
                if frontier.is_empty() {
                    dead = true;
                    break;
                }
            }
            if dead {
                continue;
            }
            match self.close_col {
                None => {
                    for rows in closes.values() {
                        out.extend_from_slice(rows);
                    }
                }
                Some(_) => {
                    for (user, rows) in closes {
                        if frontier.contains(user) {
                            out.extend_from_slice(rows);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Builds, per step, the `enter → distinct exits` map (with constant
    /// filters applied). Without `dedup` the exit lists keep multiplicities,
    /// modelling the extra intermediate rows the paper's unoptimized SQL
    /// produces.
    fn build_step_maps(&self, db: &Database, opts: EvalOptions) -> Vec<HashMap<Value, Vec<Value>>> {
        self.steps
            .iter()
            .map(|step| {
                let table = db.table(step.table);
                let mut map: HashMap<Value, Vec<Value>> = HashMap::new();
                let mut seen: HashSet<(Value, Value)> = HashSet::new();
                for (_, row) in table.iter() {
                    let enter = row[step.enter_col];
                    let exit = row[step.exit_col];
                    if enter.is_null() || exit.is_null() {
                        continue;
                    }
                    if !step.passes_const_filters(row) {
                        continue;
                    }
                    if opts.dedup && !seen.insert((enter, exit)) {
                        continue;
                    }
                    map.entry(enter).or_default().push(exit);
                }
                map
            })
            .collect()
    }

    // -------------------------------------------------------------- per row

    /// Fallback for decorated queries: evaluate each log row independently,
    /// probing per-step hash indexes.
    fn explained_rows_per_row(&self, db: &Database) -> Result<Vec<RowId>> {
        let log = db.table(self.log);
        let indexes: Vec<_> = self
            .steps
            .iter()
            .map(|s| db.table(s.table).index(s.enter_col))
            .collect();
        let mut out = Vec::new();
        let mut frontier: HashSet<Value> = HashSet::new();
        let mut next: HashSet<Value> = HashSet::new();
        for (rid, anchor) in log.iter() {
            if !self.anchor_passes(anchor) {
                continue;
            }
            let start = anchor[self.start_col];
            if start.is_null() {
                continue;
            }
            frontier.clear();
            frontier.insert(start);
            let mut dead = false;
            for (step, index) in self.steps.iter().zip(&indexes) {
                let table = db.table(step.table);
                next.clear();
                for v in frontier.iter() {
                    for cand in index.rows_of(*v) {
                        // Self-join on the log itself must not bind the
                        // anchor row as its own witness when the decoration
                        // compares the anchor to the step (e.g. repeat
                        // access: a row does not precede itself) — the
                        // filters take care of that; no special case needed.
                        let row = table.row(cand);
                        if step.passes_all_filters(row, anchor) {
                            let exit = row[step.exit_col];
                            if !exit.is_null() {
                                next.insert(exit);
                            }
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
                if frontier.is_empty() {
                    dead = true;
                    break;
                }
            }
            if dead {
                continue;
            }
            let explained = match self.close_col {
                None => true,
                Some(c) => {
                    let user = anchor[c];
                    !user.is_null() && frontier.contains(&user)
                }
            };
            if explained {
                out.push(rid);
            }
        }
        Ok(out)
    }

    // ---------------------------------------------------------------- trace

    /// Step-by-step evaluation trace for one log row: how many distinct
    /// values survive after each step, and whether the chain finally closes
    /// on the anchor's user. This is the "how close did this template come"
    /// view used by investigation tooling — a template that dies at step 1
    /// (no event at all) tells a different story than one whose frontier
    /// reaches the final step but misses the user.
    ///
    /// Validates the query on every call; investigation tooling invoking
    /// this once per log row should validate once via
    /// [`ChainQuery::into_prepared`] and call [`PreparedChain::trace`]
    /// instead.
    pub fn trace(&self, db: &Database, log_row: RowId) -> Result<StepTrace> {
        self.validate(db)?;
        Ok(self.trace_validated(db, log_row))
    }

    /// [`ChainQuery::trace`] without the validation pass (the query must
    /// already have been validated against `db`).
    fn trace_validated(&self, db: &Database, log_row: RowId) -> StepTrace {
        let log = db.table(self.log);
        let anchor = log.row(log_row);
        if !self.anchor_passes(anchor) || anchor[self.start_col].is_null() {
            return StepTrace {
                survivors: vec![0; self.steps.len()],
                closed: false,
                anchor_matches: false,
            };
        }
        let mut frontier: HashSet<Value> = HashSet::new();
        frontier.insert(anchor[self.start_col]);
        let mut survivors = Vec::with_capacity(self.steps.len());
        let mut next: HashSet<Value> = HashSet::new();
        for step in &self.steps {
            let table = db.table(step.table);
            let index = table.index(step.enter_col);
            next.clear();
            for v in frontier.iter() {
                for cand in index.rows_of(*v) {
                    let row = table.row(cand);
                    if step.passes_all_filters(row, anchor) {
                        let exit = row[step.exit_col];
                        if !exit.is_null() {
                            next.insert(exit);
                        }
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            survivors.push(frontier.len());
            if frontier.is_empty() {
                survivors.resize(self.steps.len(), 0);
                return StepTrace {
                    survivors,
                    closed: false,
                    anchor_matches: true,
                };
            }
        }
        let closed = match self.close_col {
            None => true,
            Some(c) => !anchor[c].is_null() && frontier.contains(&anchor[c]),
        };
        StepTrace {
            survivors,
            closed,
            anchor_matches: true,
        }
    }

    // ------------------------------------------------------------ instances

    /// Enumerates up to `limit` witnesses of this query for one specific log
    /// row: the concrete step rows that justify the explanation. These are
    /// the paper's *explanation instances*, ready to be rendered as natural
    /// language.
    ///
    /// Validates the query on every call; per-row loops should validate
    /// once via [`ChainQuery::into_prepared`] and call
    /// [`PreparedChain::instances`] instead.
    pub fn instances(&self, db: &Database, log_row: RowId, limit: usize) -> Result<Vec<Instance>> {
        self.validate(db)?;
        Ok(self.instances_validated(db, log_row, limit))
    }

    /// [`ChainQuery::instances`] without the validation pass.
    fn instances_validated(&self, db: &Database, log_row: RowId, limit: usize) -> Vec<Instance> {
        let log = db.table(self.log);
        let anchor = log.row(log_row);
        if !self.anchor_passes(anchor) {
            return Vec::new();
        }
        let start = anchor[self.start_col];
        if start.is_null() {
            return Vec::new();
        }
        let close = match self.close_col {
            Some(c) => {
                let v = anchor[c];
                if v.is_null() {
                    return Vec::new();
                }
                Some(v)
            }
            None => None,
        };
        let mut out = Vec::new();
        let mut stack = Vec::with_capacity(self.steps.len());
        self.search_instances(db, anchor, start, close, 0, limit, &mut stack, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn search_instances(
        &self,
        db: &Database,
        anchor: &[Value],
        current: Value,
        close: Option<Value>,
        depth: usize,
        limit: usize,
        stack: &mut Vec<RowId>,
        out: &mut Vec<Instance>,
    ) {
        if out.len() >= limit {
            return;
        }
        if depth == self.steps.len() {
            let ok = match close {
                None => true,
                Some(user) => current.sql_eq(&user),
            };
            if ok {
                out.push(Instance {
                    step_rows: stack.clone(),
                });
            }
            return;
        }
        let step = &self.steps[depth];
        let table = db.table(step.table);
        let index = table.index(step.enter_col);
        for cand in index.rows_of(current) {
            if out.len() >= limit {
                return;
            }
            let row = table.row(cand);
            if !step.passes_all_filters(row, anchor) {
                continue;
            }
            let exit = row[step.exit_col];
            if exit.is_null() {
                continue;
            }
            stack.push(cand);
            self.search_instances(db, anchor, exit, close, depth + 1, limit, stack, out);
            stack.pop();
        }
    }

    /// Validates the query once and wraps it for per-row hot loops:
    /// [`PreparedChain::trace`] and [`PreparedChain::instances`] skip the
    /// full structural re-validation [`ChainQuery::trace`] and
    /// [`ChainQuery::instances`] pay on every call.
    pub fn into_prepared(self, db: &Database) -> Result<PreparedChain> {
        self.validate(db)?;
        Ok(PreparedChain { query: self })
    }
}

/// A [`ChainQuery`] validated once against a database. Produced by
/// [`ChainQuery::into_prepared`]; the per-row entry points do no
/// re-validation, so investigation tooling can call them once per log row
/// without paying the structural checks each time.
///
/// The wrapped query was validated against one specific database; using a
/// prepared chain against a database with a different schema may panic on
/// out-of-range tables or columns (appending rows is fine).
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedChain {
    query: ChainQuery,
}

impl PreparedChain {
    /// The underlying query.
    pub fn query(&self) -> &ChainQuery {
        &self.query
    }

    /// [`ChainQuery::trace`] without per-call validation.
    pub fn trace(&self, db: &Database, log_row: RowId) -> StepTrace {
        self.query.trace_validated(db, log_row)
    }

    /// [`ChainQuery::instances`] without per-call validation.
    pub fn instances(&self, db: &Database, log_row: RowId, limit: usize) -> Vec<Instance> {
        self.query.instances_validated(db, log_row, limit)
    }
}

// ------------------------------------------------------------------ estimate

/// Estimates the number of distinct log ids a chain query would explain,
/// using only column statistics (System-R style containment and fan-out
/// assumptions). This is what the paper's "skipping non-selective paths"
/// optimization asks the optimizer for; estimation error affects only
/// mining *performance*, never its output (skipped paths are re-tested in
/// the next round).
pub fn estimate_support(db: &Database, q: &ChainQuery) -> f64 {
    estimate_support_hinted(db, q, 1.0)
}

/// Like [`estimate_support`], but scales the log size by `anchor_frac`, the
/// (externally computed, e.g. once per mining run) fraction of log rows
/// passing the query's anchor filters.
pub fn estimate_support_hinted(db: &Database, q: &ChainQuery, anchor_frac: f64) -> f64 {
    let log = db.table(q.log);
    if log.is_empty() || q.steps.is_empty() {
        return 0.0;
    }
    let n_lids = db
        .stats(crate::database::AttrRef::new(q.log, q.lid_col))
        .distinct_count as f64
        * anchor_frac.clamp(0.0, 1.0);
    let start_stats = db.stats(crate::database::AttrRef::new(q.log, q.start_col));

    // Fraction of start values whose semijoin chain survives, and the
    // expected number of distinct values in the frontier per survivor.
    let mut survive = 1.0f64;
    let mut frontier = 1.0f64;
    let mut domain = start_stats.distinct_count.max(1) as f64;

    for step in &q.steps {
        let enter = db.stats(crate::database::AttrRef::new(step.table, step.enter_col));
        let exit = db.stats(crate::database::AttrRef::new(step.table, step.exit_col));
        if enter.distinct_count == 0 || exit.distinct_count == 0 {
            return 0.0;
        }
        // Probability one frontier value matches the step's enter column
        // (containment assumption), lifted to "any of `frontier` values".
        let p_one = enter.containment_match_prob(domain.max(1.0) as usize);
        let p_any = 1.0 - (1.0 - p_one).powf(frontier.max(1.0));
        survive *= p_any.clamp(0.0, 1.0);
        // Distinct exits per matching enter value: assume the distinct pairs
        // spread evenly, then cap by the exit column's distinct count.
        let pairs_per_enter = exit.avg_fanout().min(enter.avg_fanout()).max(1.0);
        frontier = (frontier * p_one.max(1.0 / domain.max(1.0)) * enter.avg_fanout().max(1.0))
            .min(exit.distinct_count as f64)
            .max(pairs_per_enter.min(exit.distinct_count as f64));
        domain = exit.distinct_count as f64;
    }

    match q.close_col {
        None => (n_lids * survive).min(n_lids),
        Some(c) => {
            let close_stats = db.stats(crate::database::AttrRef::new(q.log, c));
            let d_close = close_stats.distinct_count.max(1) as f64;
            // Probability the anchor row's user falls in the reached set.
            let p_hit = (frontier / d_close).min(1.0);
            (n_lids * survive * p_hit).min(n_lids)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::types::DataType;

    /// Builds the example database of Figure 3 of the paper:
    /// Appointments(Patient, Date, Doctor), Doctor_Info(Doctor, Dept),
    /// Log(Lid, Date, User, Patient).
    fn figure3_db() -> (Database, TableId, TableId, TableId) {
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("Date", DataType::Date),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        let appt = db
            .create_table(
                "Appointments",
                &[
                    ("Patient", DataType::Int),
                    ("Date", DataType::Date),
                    ("Doctor", DataType::Int),
                ],
            )
            .unwrap();
        let info = db
            .create_table(
                "Doctor_Info",
                &[("Doctor", DataType::Int), ("Department", DataType::Str)],
            )
            .unwrap();
        // Users: Dave=1, Mike=2. Patients: Alice=10, Bob=11.
        let ped = db.str_value("Pediatrics");
        db.insert(appt, vec![Value::Int(10), Value::Date(1), Value::Int(1)])
            .unwrap();
        db.insert(appt, vec![Value::Int(11), Value::Date(2), Value::Int(2)])
            .unwrap();
        db.insert(info, vec![Value::Int(2), ped]).unwrap();
        db.insert(info, vec![Value::Int(1), ped]).unwrap();
        db.insert(
            log,
            vec![Value::Int(1), Value::Date(1), Value::Int(1), Value::Int(10)],
        )
        .unwrap();
        db.insert(
            log,
            vec![Value::Int(2), Value::Date(2), Value::Int(1), Value::Int(11)],
        )
        .unwrap();
        (db, log, appt, info)
    }

    /// Template (A): patient had an appointment with the accessing user.
    fn template_a(log: TableId, appt: TableId) -> ChainQuery {
        ChainQuery {
            log,
            lid_col: 0,
            start_col: 3,
            steps: vec![ChainStep::new(appt, 0, 2)],
            close_col: Some(2),
            anchor_filters: vec![],
        }
    }

    /// Template (B): appointment with a doctor in the same department as the
    /// accessing user.
    fn template_b(log: TableId, appt: TableId, info: TableId) -> ChainQuery {
        ChainQuery {
            log,
            lid_col: 0,
            start_col: 3,
            steps: vec![
                ChainStep::new(appt, 0, 2),
                ChainStep::new(info, 0, 1),
                ChainStep::new(info, 1, 0),
            ],
            close_col: Some(2),
            anchor_filters: vec![],
        }
    }

    #[test]
    fn example_3_1_template_a_has_support_one_of_two() {
        // Paper Example 3.1: template (A) has support 50% (only L1).
        let (db, log, appt, _) = figure3_db();
        let q = template_a(log, appt);
        assert_eq!(
            q.explained_rows(&db, EvalOptions::default()).unwrap(),
            vec![0]
        );
        assert_eq!(q.support(&db, EvalOptions::default()).unwrap(), 1);
    }

    #[test]
    fn example_3_1_template_b_has_support_two_of_two() {
        // Paper Example 3.1: template (B) has support 100% (L1 and L2).
        let (db, log, appt, info) = figure3_db();
        let q = template_b(log, appt, info);
        assert_eq!(
            q.explained_rows(&db, EvalOptions::default()).unwrap(),
            vec![0, 1]
        );
        assert_eq!(q.support(&db, EvalOptions::default()).unwrap(), 2);
    }

    #[test]
    fn open_partial_path_counts_patients_with_any_event() {
        // Path `Log.Patient = Appointments.Patient` (Example 3.2: support
        // 100% — both log entries reference patients with appointments).
        let (db, log, appt, _) = figure3_db();
        let q = ChainQuery {
            log,
            lid_col: 0,
            start_col: 3,
            steps: vec![ChainStep::new(appt, 0, 0)],
            close_col: None,
            anchor_filters: vec![],
        };
        assert_eq!(q.support(&db, EvalOptions::default()).unwrap(), 2);
    }

    #[test]
    fn dedup_toggle_does_not_change_results() {
        let (mut db, log, appt, info) = figure3_db();
        // Duplicate appointment rows: multiplicity must not change support.
        db.insert(appt, vec![Value::Int(10), Value::Date(5), Value::Int(1)])
            .unwrap();
        db.insert(appt, vec![Value::Int(10), Value::Date(6), Value::Int(1)])
            .unwrap();
        let q = template_b(log, appt, info);
        let with = q.support(&db, EvalOptions { dedup: true }).unwrap();
        let without = q.support(&db, EvalOptions { dedup: false }).unwrap();
        assert_eq!(with, without);
    }

    #[test]
    fn decorated_repeat_access_requires_strictly_earlier_date() {
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("Date", DataType::Date),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        // Same user/patient accessed at t=1 and t=5.
        db.insert(
            log,
            vec![Value::Int(1), Value::Date(1), Value::Int(7), Value::Int(10)],
        )
        .unwrap();
        db.insert(
            log,
            vec![Value::Int(2), Value::Date(5), Value::Int(7), Value::Int(10)],
        )
        .unwrap();
        // Repeat access: Log L2 with same patient & user, L2.Date < L.Date.
        let q = ChainQuery {
            log,
            lid_col: 0,
            start_col: 3,
            steps: vec![ChainStep {
                table: log,
                enter_col: 3,
                exit_col: 2,
                filters: vec![StepFilter {
                    col: 1,
                    op: CmpOp::Lt,
                    rhs: Rhs::AnchorCol(1),
                }],
            }],
            close_col: Some(2),
            anchor_filters: vec![],
        };
        assert!(q.is_anchor_dependent());
        // Only the *second* access is a repeat.
        assert_eq!(
            q.explained_rows(&db, EvalOptions::default()).unwrap(),
            vec![1]
        );
    }

    #[test]
    fn instances_enumerate_witness_rows() {
        let (mut db, log, appt, _) = figure3_db();
        // A second appointment Alice↔Dave: L1 now has two instances.
        db.insert(appt, vec![Value::Int(10), Value::Date(9), Value::Int(1)])
            .unwrap();
        let q = template_a(log, appt);
        let inst = q.instances(&db, 0, 16).unwrap();
        assert_eq!(inst.len(), 2);
        assert!(inst.iter().all(|i| i.step_rows.len() == 1));
        // Limit caps enumeration.
        assert_eq!(q.instances(&db, 0, 1).unwrap().len(), 1);
        // L2 (Bob accessed by Dave) has no instance under template (A).
        assert!(q.instances(&db, 1, 16).unwrap().is_empty());
    }

    #[test]
    fn validate_rejects_bad_queries() {
        let (db, log, appt, _) = figure3_db();
        let empty = ChainQuery {
            log,
            lid_col: 0,
            start_col: 3,
            steps: vec![],
            close_col: None,
            anchor_filters: vec![],
        };
        assert!(empty.validate(&db).is_err());
        let bad_col = ChainQuery {
            log,
            lid_col: 0,
            start_col: 9,
            steps: vec![ChainStep::new(appt, 0, 0)],
            close_col: None,
            anchor_filters: vec![],
        };
        assert!(bad_col.validate(&db).is_err());
    }

    #[test]
    fn estimate_is_positive_for_satisfiable_chains_and_bounded() {
        let (db, log, appt, info) = figure3_db();
        let est_a = estimate_support(&db, &template_a(log, appt));
        let est_b = estimate_support(&db, &template_b(log, appt, info));
        assert!(est_a > 0.0);
        assert!(est_b > 0.0);
        assert!(est_a <= 2.0 + 1e-9);
        assert!(est_b <= 2.0 + 1e-9);
    }

    #[test]
    fn estimate_zero_for_empty_tables() {
        let (mut db, log, _, _) = figure3_db();
        let empty = db.create_table("Empty", &[("X", DataType::Int)]).unwrap();
        let q = ChainQuery {
            log,
            lid_col: 0,
            start_col: 3,
            steps: vec![ChainStep::new(empty, 0, 0)],
            close_col: None,
            anchor_filters: vec![],
        };
        assert_eq!(estimate_support(&db, &q), 0.0);
        let _ = db;
    }

    #[test]
    fn anchor_filters_restrict_the_rows_considered() {
        let (db, log, appt, _) = figure3_db();
        let mut q = template_a(log, appt);
        // Unfiltered: L1 explained, 2 anchor rows total.
        assert_eq!(q.anchor_lid_count(&db), 2);
        // Restrict to Date >= 2: only L2 is an anchor row, and it is not
        // explained by template (A).
        q.anchor_filters = vec![(1, CmpOp::Ge, Value::Date(2))];
        assert_eq!(q.anchor_lid_count(&db), 1);
        assert!(q
            .explained_rows(&db, EvalOptions::default())
            .unwrap()
            .is_empty());
        // Restrict to Date <= 1: only L1, which is explained.
        q.anchor_filters = vec![(1, CmpOp::Le, Value::Date(1))];
        assert_eq!(
            q.explained_rows(&db, EvalOptions::default()).unwrap(),
            vec![0]
        );
        // Instances respect anchor filters too.
        assert!(q.instances(&db, 1, 8).unwrap().is_empty());
    }

    #[test]
    fn hinted_estimate_scales_with_anchor_fraction() {
        let (db, log, appt, _) = figure3_db();
        let q = template_a(log, appt);
        let full = estimate_support_hinted(&db, &q, 1.0);
        let half = estimate_support_hinted(&db, &q, 0.5);
        assert!(half <= full);
        assert!(half > 0.0);
    }

    #[test]
    fn trace_reports_progress_and_death() {
        let (db, log, appt, info) = figure3_db();
        // Template (A) on L1 (explained): one step, survivors ≥ 1, closed.
        let a = template_a(log, appt);
        let t = a.trace(&db, 0).unwrap();
        assert!(t.anchor_matches);
        assert!(t.closed);
        assert_eq!(t.survivors.len(), 1);
        assert!(t.survivors[0] >= 1);
        assert_eq!(t.died_at(), None);
        assert_eq!(t.progress(), 1);
        // Template (A) on L2 (Bob accessed by Dave): the frontier reaches
        // the end (Bob has an appointment) but misses the user.
        let t = a.trace(&db, 1).unwrap();
        assert!(!t.closed);
        assert_eq!(t.progress(), 1);
        assert!(t.survivors[0] >= 1);
        // Template (B) on L2 closes (same department).
        let b = template_b(log, appt, info);
        let t = b.trace(&db, 1).unwrap();
        assert!(t.closed);
        assert_eq!(t.survivors.len(), 3);
    }

    #[test]
    fn trace_dies_at_first_unmatched_step() {
        let (mut db, log, _, info) = figure3_db();
        // A chain forced through an empty table dies at step 1.
        let empty = db.create_table("Empty", &[("X", DataType::Int)]).unwrap();
        let q = ChainQuery {
            log,
            lid_col: 0,
            start_col: 3,
            steps: vec![ChainStep::new(empty, 0, 0), ChainStep::new(info, 0, 1)],
            close_col: Some(2),
            anchor_filters: vec![],
        };
        let t = q.trace(&db, 0).unwrap();
        assert_eq!(t.died_at(), Some(0));
        assert_eq!(t.progress(), 0);
        assert_eq!(t.survivors, vec![0, 0]);
        assert!(!t.closed);
    }

    #[test]
    fn trace_respects_anchor_filters() {
        let (db, log, appt, _) = figure3_db();
        let mut q = template_a(log, appt);
        q.anchor_filters = vec![(1, CmpOp::Ge, Value::Date(100))];
        let t = q.trace(&db, 0).unwrap();
        assert!(!t.anchor_matches);
        assert!(!t.closed);
    }

    #[test]
    fn null_start_values_are_never_explained() {
        let (mut db, log, appt, _) = figure3_db();
        db.insert(
            log,
            vec![Value::Int(3), Value::Date(3), Value::Int(1), Value::Null],
        )
        .unwrap();
        let q = template_a(log, appt);
        assert_eq!(
            q.explained_rows(&db, EvalOptions::default()).unwrap(),
            vec![0]
        );
    }
}
