//! `EXPLAIN`-style plan inspection for chain queries.
//!
//! The miner's skip optimization consults the optimizer's row estimate
//! (§3.2.1); this module exposes the same machinery for humans: per-step
//! table cardinalities, distinct counts, and the estimator's running
//! survival estimate, so a surprising template support can be debugged the
//! way one reads `EXPLAIN` output.

use crate::chain::ChainQuery;
use crate::database::{AttrRef, Database};
use std::fmt;

/// Estimator state after one step of the chain.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Table name.
    pub table: String,
    /// `enter → exit` column names.
    pub enter: String,
    /// Exit column name.
    pub exit: String,
    /// Rows in the step's table.
    pub rows: usize,
    /// Distinct values of the enter column.
    pub enter_distinct: usize,
    /// Distinct values of the exit column.
    pub exit_distinct: usize,
    /// Number of decorations (extra filters) on this step.
    pub filters: usize,
}

/// A rendered query plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The anchor description, e.g. `Log (38211 rows) anchored at Patient`.
    pub anchor: String,
    /// Per-step details.
    pub steps: Vec<PlanStep>,
    /// The estimator's predicted number of explained distinct log ids.
    pub estimated_support: f64,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "anchor: {}", self.anchor)?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(
                f,
                "  step {}: {}({}→{})  rows={} distinct_in={} distinct_out={}{}",
                i + 1,
                s.table,
                s.enter,
                s.exit,
                s.rows,
                s.enter_distinct,
                s.exit_distinct,
                if s.filters > 0 {
                    format!(" filters={}", s.filters)
                } else {
                    String::new()
                }
            )?;
        }
        writeln!(f, "estimated support: {:.1}", self.estimated_support)
    }
}

/// Builds the plan for a chain query.
pub fn explain(db: &Database, q: &ChainQuery) -> Plan {
    let log = db.table(q.log);
    let anchor = format!(
        "{} ({} rows) anchored at {}{}{}",
        log.name(),
        log.len(),
        log.schema().col_name(q.start_col),
        match q.close_col {
            Some(c) => format!(", closing at {}", log.schema().col_name(c)),
            None => String::new(),
        },
        if q.anchor_filters.is_empty() {
            String::new()
        } else {
            format!(" [{} anchor filters]", q.anchor_filters.len())
        }
    );
    let steps = q
        .steps
        .iter()
        .map(|s| {
            let t = db.table(s.table);
            PlanStep {
                table: t.name().to_string(),
                enter: t.schema().col_name(s.enter_col).to_string(),
                exit: t.schema().col_name(s.exit_col).to_string(),
                rows: t.len(),
                enter_distinct: db.stats(AttrRef::new(s.table, s.enter_col)).distinct_count,
                exit_distinct: db.stats(AttrRef::new(s.table, s.exit_col)).distinct_count,
                filters: s.filters.len(),
            }
        })
        .collect();
    Plan {
        anchor,
        steps,
        estimated_support: crate::chain::estimate_support(db, q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainStep, CmpOp};
    use crate::types::DataType;
    use crate::value::Value;

    fn db() -> (Database, ChainQuery) {
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        let appt = db
            .create_table(
                "Appointments",
                &[("Patient", DataType::Int), ("Doctor", DataType::Int)],
            )
            .unwrap();
        for i in 0..5i64 {
            db.insert(
                log,
                vec![Value::Int(i), Value::Int(i % 2), Value::Int(i % 3)],
            )
            .unwrap();
            db.insert(appt, vec![Value::Int(i % 3), Value::Int(i % 2)])
                .unwrap();
        }
        let q = ChainQuery {
            log,
            lid_col: 0,
            start_col: 2,
            steps: vec![ChainStep::new(appt, 0, 1)],
            close_col: Some(1),
            anchor_filters: vec![(0, CmpOp::Ge, Value::Int(0))],
        };
        (db, q)
    }

    #[test]
    fn plan_describes_every_step() {
        let (db, q) = db();
        let plan = explain(&db, &q);
        assert!(plan.anchor.contains("Log (5 rows)"));
        assert!(plan.anchor.contains("anchored at Patient"));
        assert!(plan.anchor.contains("closing at User"));
        assert!(plan.anchor.contains("1 anchor filters"));
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.steps[0].table, "Appointments");
        assert_eq!(plan.steps[0].rows, 5);
        assert_eq!(plan.steps[0].enter_distinct, 3);
        assert_eq!(plan.steps[0].exit_distinct, 2);
        assert!(plan.estimated_support >= 0.0);
    }

    #[test]
    fn display_renders_readably() {
        let (db, q) = db();
        let text = explain(&db, &q).to_string();
        assert!(text.contains("step 1: Appointments(Patient→Doctor)"));
        assert!(text.contains("estimated support:"));
    }
}
