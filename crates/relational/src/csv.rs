//! CSV import/export.
//!
//! Real deployments start from exported logs (the paper's own data arrived
//! as extracts from CareWeb). This module round-trips tables through a
//! small, dependency-free CSV dialect: comma-separated, `"`-quoted when a
//! field contains commas/quotes/newlines, header row required.
//!
//! Typed parsing follows the table schema: `Int` and `Date` columns parse
//! as `i64` (dates are minutes since the data set's epoch), `Str` columns
//! intern through the database's string pool. Empty fields are `NULL`.

use crate::database::{Database, TableId};
use crate::error::{Error, Result};
use crate::types::DataType;
use crate::value::Value;
use std::fmt::Write as _;
use std::io::{BufRead, Write};

/// Exports a table as CSV (header + rows).
pub fn export_table(db: &Database, table: TableId, out: &mut impl Write) -> std::io::Result<()> {
    let t = db.table(table);
    let header: Vec<&str> = t.schema().columns.iter().map(|c| c.name.as_str()).collect();
    writeln!(out, "{}", header.join(","))?;
    let mut line = String::new();
    for (_, row) in t.iter() {
        line.clear();
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            match v {
                Value::Null => {}
                Value::Int(x) | Value::Date(x) => {
                    let _ = write!(line, "{x}");
                }
                Value::Str(s) => line.push_str(&escape(db.pool().resolve(*s))),
            }
        }
        writeln!(out, "{line}")?;
    }
    Ok(())
}

fn escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Imports CSV into an *existing* table. The header must name exactly the
/// table's columns (in order). Returns the number of rows inserted.
pub fn import_table(db: &mut Database, table: TableId, reader: &mut impl BufRead) -> Result<usize> {
    let schema = db.table(table).schema().clone();
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| Error::InvalidQuery("empty CSV input".into()))?
        .map_err(|e| Error::InvalidQuery(format!("io error: {e}")))?;
    let names: Vec<String> = parse_line(&header);
    let expected: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
    if names != expected {
        return Err(Error::InvalidQuery(format!(
            "CSV header {names:?} does not match schema {expected:?}"
        )));
    }
    let mut inserted = 0usize;
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| Error::InvalidQuery(format!("io error: {e}")))?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_line(&line);
        if fields.len() != schema.arity() {
            return Err(Error::InvalidQuery(format!(
                "line {}: expected {} fields, got {}",
                lineno + 2,
                schema.arity(),
                fields.len()
            )));
        }
        let mut row = Vec::with_capacity(fields.len());
        for (field, col) in fields.iter().zip(&schema.columns) {
            row.push(parse_value(db, field, col.dtype, lineno + 2)?);
        }
        db.insert(table, row)?;
        inserted += 1;
    }
    Ok(inserted)
}

fn parse_value(db: &mut Database, field: &str, dtype: DataType, lineno: usize) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match dtype {
        DataType::Int => Value::Int(field.parse().map_err(|_| {
            Error::InvalidQuery(format!("line {lineno}: `{field}` is not an integer"))
        })?),
        DataType::Date => Value::Date(field.parse().map_err(|_| {
            Error::InvalidQuery(format!("line {lineno}: `{field}` is not a date (minutes)"))
        })?),
        DataType::Str => db.str_value(field),
    })
}

/// Splits one CSV line into unescaped fields.
fn parse_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match (c, in_quotes) {
            ('"', false) if field.is_empty() => in_quotes = true,
            ('"', true) => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            (',', false) => fields.push(std::mem::take(&mut field)),
            (c, _) => field.push(c),
        }
    }
    fields.push(field);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn sample_db() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("Date", DataType::Date),
                    ("User", DataType::Str),
                ],
            )
            .unwrap();
        let dave = db.str_value("Dr. Dave");
        let tricky = db.str_value("Quote \" and, comma");
        db.insert(t, vec![Value::Int(1), Value::Date(90), dave])
            .unwrap();
        db.insert(t, vec![Value::Int(2), Value::Null, tricky])
            .unwrap();
        (db, t)
    }

    #[test]
    fn round_trip_preserves_rows() {
        let (db, t) = sample_db();
        let mut buf = Vec::new();
        export_table(&db, t, &mut buf).unwrap();

        let mut db2 = Database::new();
        let t2 = db2
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("Date", DataType::Date),
                    ("User", DataType::Str),
                ],
            )
            .unwrap();
        let n = import_table(&mut db2, t2, &mut buf.as_slice()).unwrap();
        assert_eq!(n, 2);
        let orig = db.table(t);
        let loaded = db2.table(t2);
        assert_eq!(loaded.len(), orig.len());
        // Values compare after resolving interned strings.
        for rid in 0..orig.len() as u32 {
            for col in 0..3 {
                let a = orig.cell(rid, col).display(db.pool()).to_string();
                let b = loaded.cell(rid, col).display(db2.pool()).to_string();
                assert_eq!(a, b, "cell ({rid}, {col})");
            }
        }
    }

    #[test]
    fn header_is_validated() {
        let (_, _) = sample_db();
        let mut db = Database::new();
        let t = db.create_table("Log", &[("Lid", DataType::Int)]).unwrap();
        let err = import_table(&mut db, t, &mut "Wrong\n1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, Error::InvalidQuery(_)));
    }

    #[test]
    fn arity_and_type_errors_carry_line_numbers() {
        let mut db = Database::new();
        let t = db
            .create_table("T", &[("A", DataType::Int), ("B", DataType::Int)])
            .unwrap();
        let err = import_table(&mut db, t, &mut "A,B\n1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = import_table(&mut db, t, &mut "A,B\n1,x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("not an integer"), "{err}");
    }

    #[test]
    fn empty_fields_are_null() {
        let mut db = Database::new();
        let t = db
            .create_table("T", &[("A", DataType::Int), ("B", DataType::Str)])
            .unwrap();
        import_table(&mut db, t, &mut "A,B\n,\n".as_bytes()).unwrap();
        assert_eq!(db.table(t).cell(0, 0), Value::Null);
        assert_eq!(db.table(t).cell(0, 1), Value::Null);
    }

    #[test]
    fn quoted_fields_round_trip() {
        assert_eq!(
            parse_line("a,\"b,c\",\"d\"\"e\""),
            vec!["a".to_string(), "b,c".to_string(), "d\"e".to_string()]
        );
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut db = Database::new();
        let t = db.create_table("T", &[("A", DataType::Int)]).unwrap();
        let n = import_table(&mut db, t, &mut "A\n1\n\n2\n".as_bytes()).unwrap();
        assert_eq!(n, 2);
    }
}
