//! Poison-tolerant locking.
//!
//! Every `Mutex`/`RwLock` in this crate guards either append-only data or a
//! memoization cache whose entries are immutable once inserted (`Arc`'d step
//! maps, hash indexes, column statistics). A panic while such a guard is
//! held can therefore never leave the protected value in a state that is
//! unsafe to read: the worst case is a cache entry that was about to be
//! inserted and wasn't, which the next caller simply recomputes.
//!
//! [`unpoison`] encodes that policy: it recovers the guard from a poisoned
//! lock instead of propagating the poison. Without it, one panicking query
//! turns into permanent failure of every subsequent query touching the same
//! engine — the "death spiral" a long-running auditing service cannot
//! afford (one bad request must not take the auditor offline).

use std::sync::{LockResult, PoisonError};

/// Unwraps a lock acquisition, recovering the guard when the lock was
/// poisoned by a panicking holder.
///
/// Use only for locks whose protected value stays valid across a panic
/// (memoization caches, append-only state) — which is every lock in this
/// crate; see the module docs.
#[inline]
pub fn unpoison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7i32));
        let m2 = m.clone();
        std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join()
        .unwrap_err();
        assert!(m.lock().is_err(), "lock is poisoned");
        assert_eq!(*unpoison(m.lock()), 7);
    }

    #[test]
    fn recovers_a_poisoned_rwlock() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = l.clone();
        std::thread::spawn(move || {
            let _guard = l2.write().unwrap();
            panic!("poison the lock");
        })
        .join()
        .unwrap_err();
        assert_eq!(unpoison(l.read()).len(), 3);
        unpoison(l.write()).push(4);
        assert_eq!(unpoison(l.read()).len(), 4);
    }

    #[test]
    fn passes_through_healthy_locks() {
        let m = Mutex::new(1);
        *unpoison(m.lock()) += 1;
        assert_eq!(*unpoison(m.lock()), 2);
    }
}
