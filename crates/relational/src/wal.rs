//! Framed, checksummed record files — the byte-level substrate of the
//! durability layer ([`crate::pile`]).
//!
//! Both durable files (the segment pile and the write-ahead log) share
//! one on-disk grammar:
//!
//! ```text
//! file   := header record*
//! header := magic[8] version:u32le            (12 bytes)
//! record := len:u32le crc32:u32le payload[len]
//! ```
//!
//! The CRC-32 (IEEE) covers the payload only. Appends always go to the
//! end of the last *valid* record, so a crash can tear at most the final
//! record: [`RecordFile::open`] scans the file, stops at the first frame
//! whose length is implausible, runs past EOF, or fails its checksum,
//! **truncates** the file there, and reports the dropped bytes in a
//! [`ScanReport`] — torn tails are repaired, never panicked on and never
//! silently served. A bad magic or an unknown format version is a typed
//! [`PileError`] instead: those files were not written by this code (or
//! were written by newer code), and repairing would destroy them.
//!
//! I/O goes through the [`Media`] trait so the fault-injection suite can
//! run the *exact* production code paths against an in-memory buffer
//! ([`SharedMem`]) wrapped in a byte-budgeted failure injector
//! ([`FaultAfter`]) — a crash at any byte of any write is reachable
//! deterministically.

use crate::error::PileError;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::{Arc, Mutex};

/// Bytes of the fixed file header (magic + version).
pub const HEADER_LEN: u64 = 12;

/// Upper bound on one record's payload, so a garbage length field cannot
/// make recovery attempt a multi-gigabyte allocation.
pub const MAX_RECORD_LEN: u32 = 1 << 28;

// ---------------------------------------------------------------- checksum

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum gzip/zip use, implemented here because the workspace is
/// dependency-free by design.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut state = !0u32;
    for &b in bytes {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    !state
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

// ------------------------------------------------------------------ media

/// The byte-level surface a [`RecordFile`] writes through. [`std::fs::File`]
/// is the production implementation; tests substitute [`SharedMem`] (an
/// in-memory file whose bytes survive "the process") and [`FaultAfter`]
/// (which injects a torn write after a byte budget).
pub trait Media: Send {
    /// Reads into `buf` at the current position (standard `Read` contract).
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;
    /// Writes from `buf` at the current position; may write fewer bytes.
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize>;
    /// Repositions (standard `Seek` contract); returns the new position.
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64>;
    /// Forces written bytes to stable storage (fsync).
    fn sync(&mut self) -> std::io::Result<()>;
    /// Truncates (or extends with zeros) to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> std::io::Result<()>;
}

impl Media for std::fs::File {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        Read::read(self, buf)
    }
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Write::write(self, buf)
    }
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        Seek::seek(self, pos)
    }
    fn sync(&mut self) -> std::io::Result<()> {
        self.sync_data()
    }
    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        std::fs::File::set_len(self, len)
    }
}

/// An in-memory "file" over a shared byte buffer. Clones share the bytes
/// (each with its own cursor), so a test can hand one clone to a
/// [`RecordFile`], "crash" it (drop it mid-write via [`FaultAfter`]), and
/// reopen the surviving bytes through another clone — a process restart
/// without a process.
#[derive(Clone, Default)]
pub struct SharedMem {
    buf: Arc<Mutex<Vec<u8>>>,
    pos: u64,
}

impl SharedMem {
    /// An empty shared buffer.
    pub fn new() -> SharedMem {
        SharedMem::default()
    }

    /// A snapshot of the current bytes.
    pub fn bytes(&self) -> Vec<u8> {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Replaces the bytes wholesale (to set up a corruption scenario).
    pub fn set_bytes(&self, bytes: Vec<u8>) {
        *self.buf.lock().unwrap_or_else(|e| e.into_inner()) = bytes;
    }
}

impl Media for SharedMem {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        let pos = (self.pos as usize).min(buf.len());
        let n = out.len().min(buf.len() - pos);
        out[..n].copy_from_slice(&buf[pos..pos + n]);
        drop(buf);
        self.pos += n as u64;
        Ok(n)
    }

    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        let pos = self.pos as usize;
        if buf.len() < pos {
            buf.resize(pos, 0);
        }
        let overlap = data.len().min(buf.len().saturating_sub(pos));
        buf[pos..pos + overlap].copy_from_slice(&data[..overlap]);
        buf.extend_from_slice(&data[overlap..]);
        drop(buf);
        self.pos += data.len() as u64;
        Ok(data.len())
    }

    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        let len = self.buf.lock().unwrap_or_else(|e| e.into_inner()).len() as i64;
        let next = match pos {
            SeekFrom::Start(p) => p as i64,
            SeekFrom::End(d) => len + d,
            SeekFrom::Current(d) => self.pos as i64 + d,
        };
        if next < 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "seek before start",
            ));
        }
        self.pos = next as u64;
        Ok(self.pos)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        buf.resize(len as usize, 0);
        Ok(())
    }
}

/// Fault injection: passes everything through to the inner media until a
/// byte budget is exhausted, then *tears the write* — the first write that
/// crosses the budget persists only its prefix and fails, and every write
/// after it fails outright. Reads and seeks are unaffected, so recovery
/// can reopen the torn bytes. This is the "kill -9 at byte N" of the
/// differential suite, deterministic and sweepable.
pub struct FaultAfter<M: Media> {
    inner: M,
    remaining: u64,
}

impl<M: Media> FaultAfter<M> {
    /// Wraps `inner`, allowing exactly `budget` more written bytes.
    pub fn new(inner: M, budget: u64) -> FaultAfter<M> {
        FaultAfter {
            inner,
            remaining: budget,
        }
    }
}

fn injected_fault() -> std::io::Error {
    std::io::Error::other("injected write fault (byte budget exhausted)")
}

impl<M: Media> Media for FaultAfter<M> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }

    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return Err(injected_fault());
        }
        let n = data.len().min(self.remaining as usize);
        // Persist the prefix fully (the tear happens at the budget
        // boundary, not wherever the inner media feels like stopping).
        let mut written = 0;
        while written < n {
            written += self.inner.write(&data[written..n])?;
        }
        self.remaining -= n as u64;
        if n < data.len() {
            return Err(injected_fault());
        }
        Ok(n)
    }

    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        self.inner.seek(pos)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        if self.remaining == 0 {
            return Err(injected_fault());
        }
        self.inner.sync()
    }

    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        if self.remaining == 0 {
            return Err(injected_fault());
        }
        self.inner.set_len(len)
    }
}

// ------------------------------------------------------------- record file

/// What [`RecordFile::open`] found: how many records were read, and what
/// (if anything) had to be dropped to get back to a valid file.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Valid records recovered.
    pub records: usize,
    /// Bytes truncated off the tail (0 for a clean file).
    pub truncated_bytes: u64,
    /// Human-readable descriptions of everything dropped or repaired.
    pub notes: Vec<String>,
}

/// The valid payloads [`RecordFile::open`] recovered, in file order,
/// each with the byte offset its record starts at (what error reports
/// point into).
pub type RawRecords = Vec<(u64, Vec<u8>)>;

/// One framed record file (see the module docs for the grammar): appends
/// length-prefixed, checksummed records; opening scans, repairs a torn
/// tail, and returns every valid payload with its byte offset.
pub struct RecordFile {
    media: Box<dyn Media>,
    /// Display label for errors (the path, for real files).
    label: String,
    /// Logical end of valid data — where the next append goes.
    end: u64,
}

impl RecordFile {
    /// Opens (initializing an empty file with a fresh header) and scans.
    /// Returns the file positioned for appends, the valid payloads in
    /// order with their byte offsets, and the scan report.
    pub fn open(
        mut media: Box<dyn Media>,
        label: &str,
        magic: [u8; 8],
        version: u32,
    ) -> Result<(RecordFile, RawRecords, ScanReport), PileError> {
        let io = |op: &'static str, err: std::io::Error| PileError::Io {
            file: label.to_string(),
            op,
            err: err.to_string(),
        };
        let file_len = media.seek(SeekFrom::End(0)).map_err(|e| io("open", e))?;
        let mut report = ScanReport::default();

        if file_len < HEADER_LEN {
            // Brand new (0 bytes, the normal create path) or a crash tore
            // the header itself before any record existed. Reinitialize.
            if file_len > 0 {
                report.truncated_bytes = file_len;
                report
                    .notes
                    .push(format!("torn {file_len}-byte header reinitialized"));
            }
            media.set_len(0).map_err(|e| io("truncate", e))?;
            media.seek(SeekFrom::Start(0)).map_err(|e| io("seek", e))?;
            let mut header = [0u8; HEADER_LEN as usize];
            header[..8].copy_from_slice(&magic);
            header[8..].copy_from_slice(&version.to_le_bytes());
            write_all(&mut *media, &header).map_err(|e| io("write header", e))?;
            let file = RecordFile {
                media,
                label: label.to_string(),
                end: HEADER_LEN,
            };
            return Ok((file, Vec::new(), report));
        }

        media.seek(SeekFrom::Start(0)).map_err(|e| io("seek", e))?;
        let mut header = [0u8; HEADER_LEN as usize];
        read_exact(&mut *media, &mut header).map_err(|e| io("read header", e))?;
        if header[..8] != magic {
            return Err(PileError::NotAStore {
                file: label.to_string(),
                expected: String::from_utf8_lossy(&magic).into_owned(),
                found: String::from_utf8_lossy(&header[..8]).into_owned(),
            });
        }
        let found = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if found != version {
            return Err(PileError::UnsupportedVersion {
                file: label.to_string(),
                found,
                supported: version,
            });
        }

        // Scan records until EOF or the first torn/corrupt frame.
        let mut payloads = Vec::new();
        let mut off = HEADER_LEN;
        let torn: Option<String> = loop {
            let remaining = file_len - off;
            if remaining == 0 {
                break None;
            }
            if remaining < 8 {
                break Some(format!("{remaining}-byte frame header at byte {off}"));
            }
            let mut frame = [0u8; 8];
            read_exact(&mut *media, &mut frame).map_err(|e| io("read frame", e))?;
            let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(frame[4..].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN {
                break Some(format!("implausible record length {len} at byte {off}"));
            }
            if u64::from(len) > remaining - 8 {
                break Some(format!(
                    "record at byte {off} claims {len} bytes but only {} remain",
                    remaining - 8
                ));
            }
            let mut payload = vec![0u8; len as usize];
            read_exact(&mut *media, &mut payload).map_err(|e| io("read record", e))?;
            if crc32(&payload) != crc {
                break Some(format!("checksum mismatch at byte {off}"));
            }
            payloads.push((off, payload));
            off += 8 + u64::from(len);
            report.records += 1;
        };
        if let Some(what) = torn {
            // Nothing after a torn frame can be trusted (appends are
            // strictly sequential) — cut back to the last valid record.
            report.truncated_bytes = file_len - off;
            report.notes.push(format!(
                "dropped {} trailing byte(s): {what}",
                file_len - off
            ));
            media.set_len(off).map_err(|e| io("truncate", e))?;
        }
        let file = RecordFile {
            media,
            label: label.to_string(),
            end: off,
        };
        Ok((file, payloads, report))
    }

    fn io(&self, op: &'static str, err: std::io::Error) -> PileError {
        PileError::Io {
            file: self.label.clone(),
            op,
            err: err.to_string(),
        }
    }

    /// The file's display label (its path, for real files).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Byte offset appends currently go to (header + valid records).
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Appends one framed record. On failure the logical end does not
    /// advance, so a retry (or the next open's scan) overwrites the torn
    /// bytes instead of stacking garbage after them.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), PileError> {
        assert!(
            payload.len() as u64 <= u64::from(MAX_RECORD_LEN),
            "record payload exceeds MAX_RECORD_LEN"
        );
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.media
            .seek(SeekFrom::Start(self.end))
            .map_err(|e| self.io("seek", e))?;
        write_all(&mut *self.media, &frame).map_err(|e| self.io("append", e))?;
        self.end += frame.len() as u64;
        Ok(())
    }

    /// Forces appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), PileError> {
        self.media.sync().map_err(|e| self.io("sync", e))
    }

    /// Drops every record, keeping the header (the WAL reset after a
    /// checkpoint).
    pub fn reset(&mut self) -> Result<(), PileError> {
        self.truncate_to(HEADER_LEN)
    }

    /// Truncates to `offset` (a record boundary the caller got from
    /// [`RecordFile::open`]) — used when a higher layer rejects a suffix
    /// of decoded records (e.g. a continuity gap).
    pub fn truncate_to(&mut self, offset: u64) -> Result<(), PileError> {
        self.media
            .set_len(offset)
            .map_err(|e| self.io("truncate", e))?;
        self.end = offset;
        Ok(())
    }
}

fn write_all(media: &mut dyn Media, mut buf: &[u8]) -> std::io::Result<()> {
    while !buf.is_empty() {
        let n = media.write(buf)?;
        if n == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        buf = &buf[n..];
    }
    Ok(())
}

fn read_exact(media: &mut dyn Media, mut buf: &mut [u8]) -> std::io::Result<()> {
    while !buf.is_empty() {
        let n = media.read(buf)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        buf = &mut buf[n..];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 8] = *b"EBATEST1";

    fn open_mem(mem: &SharedMem) -> (RecordFile, Vec<(u64, Vec<u8>)>, ScanReport) {
        RecordFile::open(Box::new(mem.clone()), "mem", MAGIC, 1).expect("open")
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_with_offsets() {
        let mem = SharedMem::new();
        let (mut f, payloads, report) = open_mem(&mem);
        assert!(payloads.is_empty());
        assert_eq!(report.records, 0);
        f.append(b"alpha").unwrap();
        f.append(b"").unwrap();
        f.append(&[0xFF; 300]).unwrap();
        drop(f);
        let (_, payloads, report) = open_mem(&mem);
        assert_eq!(report.records, 3);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(payloads[0], (HEADER_LEN, b"alpha".to_vec()));
        assert_eq!(payloads[1].1, b"");
        assert_eq!(payloads[2].1, vec![0xFF; 300]);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let mem = SharedMem::new();
        let (mut f, _, _) = open_mem(&mem);
        f.append(b"keep me").unwrap();
        f.append(b"tear me").unwrap();
        drop(f);
        let whole = mem.bytes();
        // Chop mid-way through the second record's payload.
        for cut in 1..(8 + 7) {
            let torn = mem.clone();
            torn.set_bytes(whole[..whole.len() - cut].to_vec());
            let (f, payloads, report) = open_mem(&torn);
            assert_eq!(report.records, 1, "cut {cut}");
            assert_eq!(payloads.len(), 1);
            assert_eq!(payloads[0].1, b"keep me");
            assert!(report.truncated_bytes > 0);
            assert_eq!(f.end(), torn.bytes().len() as u64, "file was repaired");
        }
    }

    #[test]
    fn bit_flip_drops_the_record_and_its_suffix() {
        let mem = SharedMem::new();
        let (mut f, _, _) = open_mem(&mem);
        f.append(b"first").unwrap();
        f.append(b"second").unwrap();
        drop(f);
        let mut bytes = mem.bytes();
        // Flip one payload bit of the *first* record: it and everything
        // after it (appends are sequential, trust ends at the tear) go.
        let off = HEADER_LEN as usize + 8;
        bytes[off] ^= 0x01;
        mem.set_bytes(bytes);
        let (_, payloads, report) = open_mem(&mem);
        assert!(payloads.is_empty());
        assert_eq!(report.records, 0);
        assert!(
            report.notes.iter().any(|n| n.contains("checksum")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn wrong_magic_and_version_are_typed_errors() {
        let mem = SharedMem::new();
        drop(open_mem(&mem));
        let result = RecordFile::open(Box::new(mem.clone()), "mem", *b"OTHERMAG", 1);
        assert!(matches!(result, Err(PileError::NotAStore { .. })));
        let newer = RecordFile::open(Box::new(mem.clone()), "mem", MAGIC, 2);
        assert!(matches!(
            newer,
            Err(PileError::UnsupportedVersion {
                found: 1,
                supported: 2,
                ..
            })
        ));
        // Neither error touched the bytes.
        let (_, _, report) = open_mem(&mem);
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn torn_header_is_reinitialized() {
        let mem = SharedMem::new();
        drop(open_mem(&mem));
        mem.set_bytes(mem.bytes()[..5].to_vec());
        let (f, payloads, report) = open_mem(&mem);
        assert!(payloads.is_empty());
        assert_eq!(report.truncated_bytes, 5);
        assert_eq!(f.end(), HEADER_LEN);
    }

    #[test]
    fn reset_keeps_the_header_and_drops_records() {
        let mem = SharedMem::new();
        let (mut f, _, _) = open_mem(&mem);
        f.append(b"gone").unwrap();
        f.reset().unwrap();
        f.append(b"kept").unwrap();
        drop(f);
        let (_, payloads, _) = open_mem(&mem);
        assert_eq!(payloads.len(), 1);
        assert_eq!(payloads[0].1, b"kept");
    }

    #[test]
    fn fault_after_tears_exactly_at_the_budget() {
        let mem = SharedMem::new();
        drop(open_mem(&mem)); // write the header with unlimited budget
        let clean_len = mem.bytes().len() as u64;
        let budget = 10u64;
        let faulty = FaultAfter::new(mem.clone(), budget);
        let (mut f, _, _) =
            RecordFile::open(Box::new(faulty), "mem", MAGIC, 1).expect("header already valid");
        let err = f.append(b"this record is longer than the budget");
        assert!(err.is_err(), "write must fail at the budget");
        // Exactly `budget` torn bytes landed; reopening repairs them.
        assert_eq!(mem.bytes().len() as u64, clean_len + budget);
        let (_, payloads, report) = open_mem(&mem);
        assert!(payloads.is_empty());
        assert_eq!(report.truncated_bytes, budget);
    }

    #[test]
    fn append_after_failure_overwrites_the_torn_bytes() {
        let mem = SharedMem::new();
        drop(open_mem(&mem));
        let faulty = FaultAfter::new(mem.clone(), 5);
        let (mut f, _, _) = RecordFile::open(Box::new(faulty), "mem", MAGIC, 1).unwrap();
        assert!(f.append(b"doomed write").is_err());
        drop(f);
        // "Restart": reopen the surviving bytes and append normally.
        let (mut f, _, _) = open_mem(&mem);
        f.append(b"healthy").unwrap();
        drop(f);
        let (_, payloads, report) = open_mem(&mem);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(payloads.len(), 1);
        assert_eq!(payloads[0].1, b"healthy");
    }
}
