//! The durable segment store: an append-only, checksummed segment pile
//! plus a write-ahead log, with crash recovery that reconstructs the
//! ingest history batch-for-batch.
//!
//! # The two files
//!
//! A [`DurableStore`] owns two [`RecordFile`]s (see [`crate::wal`] for the
//! shared framing):
//!
//! * **`<path>`** — the *pile*: one record per checkpointed segment, each
//!   containing a run of whole ingest batches (batch boundaries are
//!   preserved, so recovery can replay the epoch chain batch-for-batch,
//!   exactly as it was acknowledged).
//! * **`<path>.wal`** — the *write-ahead log*: one record per acknowledged
//!   ingest batch since the last checkpoint. When the WAL accumulates a
//!   segment's worth of rows ([`crate::segment::DEFAULT_SEGMENT_ROWS`] by
//!   default — the same boundary at which the in-memory [`SegVec`]
//!   seals), the batches are consolidated into one pile record, the pile
//!   is fsynced, and the WAL is reset. The hot path therefore appends one
//!   small record per batch; the pile grows by one fsynced record per
//!   sealed segment — mirroring on disk exactly the sealed-segment /
//!   mutable-tail split the in-memory store uses.
//!
//! [`SegVec`]: crate::segment::SegVec
//!
//! # What a crash can and cannot lose
//!
//! Appends to both files are strictly sequential, so a crash tears at
//! most the final record of each; recovery truncates back to the last
//! valid record and reports the drop ([`RecoveryReport`]). Under
//! [`Durability::Strict`] the WAL is fsynced before a batch is
//! acknowledged, so **an acknowledged batch is never lost** — the torn
//! record is always an unacknowledged one. Under [`Durability::Relaxed`]
//! acknowledged batches since the last OS flush may be lost (but never
//! reordered, and never a checkpointed segment: the pile is fsynced at
//! every checkpoint under both policies, *before* the WAL is reset).
//!
//! The crash window *between* a checkpoint's pile append and its WAL
//! reset leaves the same batches in both files; recovery deduplicates by
//! global row offset (every batch records the table row it starts at), so
//! replay is idempotent. A WAL whose surviving batches neither duplicate
//! nor continue the pile (a gap — lost middle records) is truncated at
//! the discontinuity and reported: recovery always yields a *prefix* of
//! the acknowledged history, never a history with holes.
//!
//! # Values on disk
//!
//! [`Value`] is `Copy` because strings are pool-relative [`Symbol`]s; a
//! durable record must outlive any pool, so rows are stored as
//! [`PlainValue`]s (strings spelled out) and re-interned on replay.
//! Batches are recorded *post-materialization* — after lids, `IsFirst`
//! flags and the action column are computed — so [`replay_into`] is a
//! deterministic sequence of plain inserts, independent of any writer
//! state.
//!
//! [`Symbol`]: crate::pool::Symbol

use crate::database::Database;
use crate::error::PileError;
use crate::pool::StringPool;
use crate::segment::DEFAULT_SEGMENT_ROWS;
use crate::value::Value;
use crate::wal::{Media, RecordFile, ScanReport};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Magic bytes of a pile file.
pub const PILE_MAGIC: [u8; 8] = *b"EBAPILE1";
/// Magic bytes of a WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"EBAWAL01";
/// The single format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

const KIND_BATCH: u8 = 1;
const KIND_SEGMENT: u8 = 2;

/// When (and whether) acknowledged batches reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// fsync the WAL before every batch is acknowledged: an acknowledged
    /// `INGEST` survives power loss. The default.
    #[default]
    Strict,
    /// Leave flushing to the OS: batches since the last flush may be lost
    /// on a crash (checkpointed segments are still always fsynced).
    Relaxed,
}

impl Durability {
    /// Parses the CLI spelling (`strict` / `relaxed`).
    pub fn parse(s: &str) -> Option<Durability> {
        match s {
            "strict" => Some(Durability::Strict),
            "relaxed" => Some(Durability::Relaxed),
            _ => None,
        }
    }
}

impl std::fmt::Display for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Durability::Strict => "strict",
            Durability::Relaxed => "relaxed",
        })
    }
}

// ------------------------------------------------------------ plain values

/// A [`Value`] spelled out for disk: strings carry their text instead of
/// a pool-relative symbol, so a record is meaningful in any process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlainValue {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// An interned string, resolved to its text.
    Str(String),
    /// Minutes since the epoch (the engine's date representation).
    Date(i64),
}

impl PlainValue {
    /// Resolves `v` against the pool it was interned in.
    pub fn from_value(v: Value, pool: &StringPool) -> PlainValue {
        match v {
            Value::Null => PlainValue::Null,
            Value::Int(i) => PlainValue::Int(i),
            Value::Str(sym) => PlainValue::Str(pool.resolve(sym).to_string()),
            Value::Date(m) => PlainValue::Date(m),
        }
    }

    /// Re-interns into `db`'s pool (the replay direction).
    pub fn to_value(&self, db: &mut Database) -> Value {
        match self {
            PlainValue::Null => Value::Null,
            PlainValue::Int(i) => Value::Int(*i),
            PlainValue::Str(s) => db.str_value(s),
            PlainValue::Date(m) => Value::Date(*m),
        }
    }
}

// ---------------------------------------------------------------- batches

/// One acknowledged ingest batch, as recorded and as recovered: which
/// table it extended, the global row offset it started at, and the fully
/// materialized rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// The publication seq this batch produced when first written
    /// (informational — a restarted server renumbers from 0).
    pub seq: u64,
    /// The table the rows were appended to, by name.
    pub table: String,
    /// The table's row count immediately before this batch — the global
    /// offset recovery uses for continuity and pile/WAL deduplication.
    pub first_row: u64,
    /// The materialized rows, in insertion order.
    pub rows: Vec<Vec<PlainValue>>,
}

impl Batch {
    /// The table row count immediately after this batch.
    pub fn end_row(&self) -> u64 {
        self.first_row + self.rows.len() as u64
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.first_row.to_le_bytes());
        let name = self.table.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(self.rows.len() as u32).to_le_bytes());
        let arity = self.rows.first().map_or(0, Vec::len);
        out.extend_from_slice(&(arity as u32).to_le_bytes());
        for row in &self.rows {
            debug_assert_eq!(row.len(), arity, "uniform arity within a batch");
            for v in row {
                match v {
                    PlainValue::Null => out.push(0),
                    PlainValue::Int(i) => {
                        out.push(1);
                        out.extend_from_slice(&i.to_le_bytes());
                    }
                    PlainValue::Str(s) => {
                        out.push(2);
                        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                        out.extend_from_slice(s.as_bytes());
                    }
                    PlainValue::Date(m) => {
                        out.push(3);
                        out.extend_from_slice(&m.to_le_bytes());
                    }
                }
            }
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Batch, PileError> {
        let seq = cur.u64()?;
        let first_row = cur.u64()?;
        let name_len = cur.u16()? as usize;
        let table = String::from_utf8(cur.bytes(name_len)?.to_vec())
            .map_err(|_| cur.corrupt("table name is not UTF-8"))?;
        let n_rows = cur.u32()? as usize;
        let arity = cur.u32()? as usize;
        // A checksummed record never legitimately decodes to absurd
        // shapes; bound them so `Corrupt` beats an OOM abort.
        if n_rows > crate::wal::MAX_RECORD_LEN as usize || arity > u16::MAX as usize {
            return Err(cur.corrupt("implausible batch shape"));
        }
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(match cur.u8()? {
                    0 => PlainValue::Null,
                    1 => PlainValue::Int(cur.i64()?),
                    2 => {
                        let len = cur.u32()? as usize;
                        let s = String::from_utf8(cur.bytes(len)?.to_vec())
                            .map_err(|_| cur.corrupt("string cell is not UTF-8"))?;
                        PlainValue::Str(s)
                    }
                    3 => PlainValue::Date(cur.i64()?),
                    tag => return Err(cur.corrupt(&format!("unknown value tag {tag}"))),
                });
            }
            rows.push(row);
        }
        Ok(Batch {
            seq,
            table,
            first_row,
            rows,
        })
    }
}

/// Bounds-checked sequential reader over one record payload; every
/// overrun is a typed [`PileError::Corrupt`] carrying the record's file
/// offset.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    file: &'a str,
    record_offset: u64,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], file: &'a str, record_offset: u64) -> Cursor<'a> {
        Cursor {
            buf,
            pos: 0,
            file,
            record_offset,
        }
    }

    fn corrupt(&self, what: &str) -> PileError {
        PileError::Corrupt {
            file: self.file.to_string(),
            offset: self.record_offset,
            what: what.to_string(),
        }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], PileError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt("payload ends mid-field"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, PileError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, PileError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, PileError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, PileError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, PileError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// --------------------------------------------------------------- recovery

/// What opening a durable store found and did. `dropped` entries are data
/// loss (torn tails, discontinuities — surfaced as operator warnings);
/// `notes` are informational repairs (an empty file initialized).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Checkpointed segment records recovered from the pile.
    pub pile_segments: usize,
    /// Batches recovered from pile segments.
    pub pile_batches: usize,
    /// Batches recovered from the WAL (after deduplication).
    pub wal_batches: usize,
    /// WAL batches skipped because a pile checkpoint already covered them
    /// (the crash-between-checkpoint-and-reset window).
    pub skipped_wal_batches: usize,
    /// Total rows recovered.
    pub rows: u64,
    /// Bytes truncated off the pile's tail.
    pub pile_truncated_bytes: u64,
    /// Bytes truncated off the WAL's tail.
    pub wal_truncated_bytes: u64,
    /// Data dropped to restore consistency — each entry is a loss an
    /// operator should hear about.
    pub dropped: Vec<String>,
    /// Informational repairs (nothing was lost).
    pub notes: Vec<String>,
}

impl RecoveryReport {
    /// Total batches recovered (pile + WAL).
    pub fn batches(&self) -> usize {
        self.pile_batches + self.wal_batches
    }

    /// Whether anything that was once written had to be dropped.
    pub fn lost_data(&self) -> bool {
        !self.dropped.is_empty()
    }

    /// One-line operator summary.
    pub fn summary(&self) -> String {
        format!(
            "recovered {} batch(es) / {} row(s) ({} from {} pile segment(s), {} from wal, \
             {} wal duplicate(s) skipped); dropped: {}",
            self.batches(),
            self.rows,
            self.pile_batches,
            self.pile_segments,
            self.wal_batches,
            self.skipped_wal_batches,
            if self.dropped.is_empty() {
                "nothing".to_string()
            } else {
                self.dropped.join("; ")
            }
        )
    }

    /// The operator warnings this recovery should surface (one per drop).
    pub fn warnings(&self) -> Vec<String> {
        self.dropped
            .iter()
            .map(|d| format!("recovery dropped data: {d}"))
            .collect()
    }
}

// ------------------------------------------------------------------ store

/// The durable store: a pile of checkpointed segments plus a WAL for the
/// batches since the last checkpoint. See the module docs for the format
/// and the crash-safety contract.
pub struct DurableStore {
    pile: RecordFile,
    wal: RecordFile,
    policy: Durability,
    /// WAL rows that trigger a checkpoint (a sealed segment's worth).
    checkpoint_rows: usize,
    /// Batches currently in the WAL, retained for the next checkpoint.
    pending: Vec<Batch>,
    pending_rows: usize,
    /// Per-table end of durable data (global row offsets).
    tail: HashMap<String, u64>,
}

impl DurableStore {
    /// The WAL path that accompanies pile `path` (`<path>.wal`).
    pub fn wal_path(path: &Path) -> PathBuf {
        let mut name = path.as_os_str().to_os_string();
        name.push(".wal");
        PathBuf::from(name)
    }

    /// Opens (creating if absent) the pile at `path` and its WAL,
    /// recovers every surviving batch, and returns the store positioned
    /// to append. The recovered batches are in replay order; feed them to
    /// [`replay_into`] (or one [`SharedEngine::ingest`] each to rebuild
    /// the epoch chain batch-for-batch).
    ///
    /// [`SharedEngine::ingest`]: crate::SharedEngine::ingest
    pub fn open(
        path: &Path,
        policy: Durability,
        checkpoint_rows: usize,
    ) -> Result<(DurableStore, Vec<Batch>, RecoveryReport), PileError> {
        let open_file = |p: &Path| -> Result<std::fs::File, PileError> {
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(p)
                .map_err(|e| PileError::Io {
                    file: p.display().to_string(),
                    op: "open",
                    err: e.to_string(),
                })
        };
        let wal_path = Self::wal_path(path);
        let pile_media = Box::new(open_file(path)?);
        let wal_media = Box::new(open_file(&wal_path)?);
        Self::open_on(
            pile_media,
            wal_media,
            &path.display().to_string(),
            policy,
            checkpoint_rows,
        )
    }

    /// [`DurableStore::open`] over arbitrary [`Media`] — the entry point
    /// the fault-injection suite uses to run the production recovery code
    /// against in-memory and fault-wrapped bytes. `label` names the store
    /// in errors and reports.
    pub fn open_on(
        pile_media: Box<dyn Media>,
        wal_media: Box<dyn Media>,
        label: &str,
        policy: Durability,
        checkpoint_rows: usize,
    ) -> Result<(DurableStore, Vec<Batch>, RecoveryReport), PileError> {
        assert!(checkpoint_rows > 0, "checkpoint threshold must be positive");
        let mut report = RecoveryReport::default();

        // 1. The pile: decode each checkpointed segment, accept batches
        //    while they chain contiguously per table.
        let (mut pile, pile_payloads, pile_scan) =
            RecordFile::open(pile_media, label, PILE_MAGIC, FORMAT_VERSION)?;
        absorb_scan(&mut report, &pile_scan, label, true);
        let mut tail: HashMap<String, u64> = HashMap::new();
        let mut batches: Vec<Batch> = Vec::new();
        'pile: for (offset, payload) in &pile_payloads {
            let mut cur = Cursor::new(payload, label, *offset);
            if cur.u8()? != KIND_SEGMENT {
                return Err(cur.corrupt("expected a segment record"));
            }
            let n = cur.u32()? as usize;
            let mut segment = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                segment.push(Batch::decode(&mut cur)?);
            }
            if !cur.done() {
                return Err(cur.corrupt("trailing bytes after segment"));
            }
            for batch in &segment {
                if let Some(gap) = discontinuity(&tail, batch) {
                    // A hole in the middle of the pile: everything from
                    // this record on is unanchored. Keep the prefix.
                    let lost = pile.end() - offset;
                    pile.truncate_to(*offset)?;
                    report.pile_truncated_bytes += lost;
                    report.dropped.push(format!(
                        "pile segment at byte {offset} breaks continuity ({gap}); \
                         dropped it and the {lost} byte(s) after it"
                    ));
                    break 'pile;
                }
                tail.insert(batch.table.clone(), batch.end_row());
            }
            report.pile_segments += 1;
            report.pile_batches += segment.len();
            batches.extend(segment);
        }
        // The pile's durable frontier: WAL batches at or before it are
        // checkpoint duplicates, after it a discontinuity.
        let checkpointed = tail.clone();

        // 2. The WAL: skip batches a checkpoint already covers, accept
        //    contiguous continuations, truncate at any discontinuity.
        let wal_label = format!("{label}.wal");
        let (mut wal, wal_payloads, wal_scan) =
            RecordFile::open(wal_media, &wal_label, WAL_MAGIC, FORMAT_VERSION)?;
        absorb_scan(&mut report, &wal_scan, &wal_label, false);
        let mut pending: Vec<Batch> = Vec::new();
        for (offset, payload) in &wal_payloads {
            let mut cur = Cursor::new(payload, &wal_label, *offset);
            if cur.u8()? != KIND_BATCH {
                return Err(cur.corrupt("expected a batch record"));
            }
            let batch = Batch::decode(&mut cur)?;
            if !cur.done() {
                return Err(cur.corrupt("trailing bytes after batch"));
            }
            let covered = checkpointed.get(&batch.table).copied().unwrap_or(0);
            if batch.end_row() <= covered && report.pile_segments > 0 {
                // Already in a checkpointed segment: the crash landed
                // between a checkpoint's pile append and its WAL reset.
                report.skipped_wal_batches += 1;
                continue;
            }
            if let Some(gap) = discontinuity(&tail, &batch) {
                let lost = wal.end() - offset;
                wal.truncate_to(*offset)?;
                report.wal_truncated_bytes += lost;
                report.dropped.push(format!(
                    "wal batch at byte {offset} breaks continuity ({gap}); \
                     dropped it and the {lost} byte(s) after it"
                ));
                break;
            }
            tail.insert(batch.table.clone(), batch.end_row());
            pending.push(batch.clone());
            batches.push(batch);
        }
        report.wal_batches = pending.len();
        report.rows = batches.iter().map(|b| b.rows.len() as u64).sum();

        // 3. Skipped duplicates mean the interrupted WAL reset never
        //    happened — finish it now so the duplicates don't survive
        //    into the next recovery.
        let pending_rows = pending.iter().map(|b| b.rows.len()).sum();
        let mut store = DurableStore {
            pile,
            wal,
            policy,
            checkpoint_rows,
            pending,
            pending_rows,
            tail,
        };
        if report.skipped_wal_batches > 0 {
            store.rewrite_wal()?;
            report.notes.push(format!(
                "completed an interrupted checkpoint ({} duplicate wal batch(es) retired)",
                report.skipped_wal_batches
            ));
        }
        Ok((store, batches, report))
    }

    /// The store's fsync policy.
    pub fn policy(&self) -> Durability {
        self.policy
    }

    /// Rows sitting in the WAL, not yet consolidated into the pile.
    pub fn pending_rows(&self) -> usize {
        self.pending_rows
    }

    /// The durable end (global row offset) for `table`, if any batch for
    /// it has ever been recorded.
    pub fn durable_end(&self, table: &str) -> Option<u64> {
        self.tail.get(table).copied()
    }

    /// Appends one acknowledged batch: WAL record, fsync per policy, and
    /// a pile checkpoint when a segment's worth of rows has accumulated.
    /// On `Ok` the batch is durable to the promised degree — callers
    /// acknowledge *after* this returns. On `Err` nothing logical was
    /// appended (a torn partial write is repaired by the next open).
    pub fn append(&mut self, batch: Batch) -> Result<(), PileError> {
        if let Some(&end) = self.tail.get(&batch.table) {
            if batch.first_row != end {
                return Err(PileError::BaseMismatch {
                    table: batch.table.clone(),
                    expected: end,
                    found: batch.first_row,
                });
            }
        }
        let mut payload = Vec::with_capacity(64 + 16 * batch.rows.len());
        payload.push(KIND_BATCH);
        batch.encode(&mut payload);
        self.wal.append(&payload)?;
        if self.policy == Durability::Strict {
            self.wal.sync()?;
        }
        self.tail.insert(batch.table.clone(), batch.end_row());
        self.pending_rows += batch.rows.len();
        self.pending.push(batch);
        self.checkpoint_if_due(false)
    }

    /// Rewrites the WAL to hold exactly the pending (un-checkpointed)
    /// batches — the tail end of an interrupted checkpoint, whose pile
    /// record landed but whose WAL reset did not. The pile already holds
    /// the skipped batches durably, so resetting first is safe.
    fn rewrite_wal(&mut self) -> Result<(), PileError> {
        self.wal.reset()?;
        let pending = std::mem::take(&mut self.pending);
        for batch in &pending {
            let mut payload = Vec::with_capacity(64 + 16 * batch.rows.len());
            payload.push(KIND_BATCH);
            batch.encode(&mut payload);
            self.wal.append(&payload)?;
        }
        self.pending = pending;
        if self.policy == Durability::Strict {
            self.wal.sync()?;
        }
        Ok(())
    }

    /// Consolidates the pending WAL batches into one pile segment record
    /// when they reach the checkpoint threshold (or unconditionally with
    /// `force`, used to finish an interrupted checkpoint). Ordering is
    /// the crash-safety crux: the pile record is written *and fsynced*
    /// before the WAL is reset, so every crash point leaves the batches
    /// in at least one file (both, in the window between — recovery
    /// deduplicates).
    fn checkpoint_if_due(&mut self, force: bool) -> Result<(), PileError> {
        if self.pending.is_empty() || (!force && self.pending_rows < self.checkpoint_rows) {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(64 + 16 * self.pending_rows);
        payload.push(KIND_SEGMENT);
        payload.extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
        for batch in &self.pending {
            batch.encode(&mut payload);
        }
        self.pile.append(&payload)?;
        // Checkpoints are always synced — even relaxed mode never trades
        // away a sealed segment — and synced *before* the WAL reset.
        self.pile.sync()?;
        self.wal.reset()?;
        if self.policy == Durability::Strict {
            self.wal.sync()?;
        }
        self.pending.clear();
        self.pending_rows = 0;
        Ok(())
    }
}

/// `None` if `batch` chains onto the current tails (the first batch for a
/// table anchors that table's numbering), otherwise a description of the
/// break.
fn discontinuity(tail: &HashMap<String, u64>, batch: &Batch) -> Option<String> {
    match tail.get(&batch.table) {
        None => None,
        Some(&end) if batch.first_row == end => None,
        Some(&end) => Some(format!(
            "`{}` continues at row {end} but the batch starts at row {}",
            batch.table, batch.first_row
        )),
    }
}

fn absorb_scan(report: &mut RecoveryReport, scan: &ScanReport, label: &str, is_pile: bool) {
    if is_pile {
        report.pile_truncated_bytes += scan.truncated_bytes;
    } else {
        report.wal_truncated_bytes += scan.truncated_bytes;
    }
    for note in &scan.notes {
        if scan.truncated_bytes > 0 && note.contains("dropped") {
            report.dropped.push(format!("{label}: {note}"));
        } else {
            report.notes.push(format!("{label}: {note}"));
        }
    }
}

/// Replays recovered batches into `db` with plain inserts (strings
/// re-interned), validating that every batch starts exactly at the
/// table's current length — the database must be the same base state the
/// store was built over. Returns the rows inserted.
///
/// This is the bulk path a cold-starting service uses (insert everything,
/// build one engine); the differential suite instead replays one
/// [`SharedEngine::ingest`](crate::SharedEngine::ingest) per batch to
/// check every intermediate epoch.
pub fn replay_into(db: &mut Database, batches: &[Batch]) -> Result<u64, PileError> {
    let mut rows = 0u64;
    for batch in batches {
        let table = db.table_id(&batch.table)?;
        let len = db.table(table).len() as u64;
        if batch.first_row != len {
            return Err(PileError::BaseMismatch {
                table: batch.table.clone(),
                expected: batch.first_row,
                found: len,
            });
        }
        for row in &batch.rows {
            let values: Vec<Value> = row.iter().map(|v| v.to_value(db)).collect();
            db.insert(table, values)?;
        }
        rows += batch.rows.len() as u64;
    }
    Ok(rows)
}

/// Encodes one materialized in-memory batch (`table`'s rows
/// `[first_row..]` of `db` are *not* consulted — the rows are passed in)
/// for [`DurableStore::append`]: resolves every value against `db`'s
/// pool.
pub fn plain_batch(
    db: &Database,
    seq: u64,
    table: &str,
    first_row: u64,
    rows: &[Vec<Value>],
) -> Batch {
    let pool = db.pool();
    Batch {
        seq,
        table: table.to_string(),
        first_row,
        rows: rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&v| PlainValue::from_value(v, pool))
                    .collect()
            })
            .collect(),
    }
}

/// The default checkpoint threshold: a sealed segment's worth of rows.
pub fn default_checkpoint_rows() -> usize {
    DEFAULT_SEGMENT_ROWS
}

// A convenience re-export so the fault-injection suite can say
// `pile::{FaultAfter, SharedMem}`.
pub use crate::wal::{FaultAfter, SharedMem};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    fn mem_pair() -> (SharedMem, SharedMem) {
        (SharedMem::new(), SharedMem::new())
    }

    fn open_mem(
        pile: &SharedMem,
        wal: &SharedMem,
        checkpoint_rows: usize,
    ) -> (DurableStore, Vec<Batch>, RecoveryReport) {
        DurableStore::open_on(
            Box::new(pile.clone()),
            Box::new(wal.clone()),
            "mem",
            Durability::Strict,
            checkpoint_rows,
        )
        .expect("open")
    }

    fn batch(seq: u64, first_row: u64, n: usize) -> Batch {
        Batch {
            seq,
            table: "Log".to_string(),
            first_row,
            rows: (0..n)
                .map(|i| {
                    vec![
                        PlainValue::Int(first_row as i64 + i as i64),
                        PlainValue::Str(format!("row-{first_row}-{i}")),
                        PlainValue::Date(60 * (i as i64)),
                        PlainValue::Null,
                    ]
                })
                .collect(),
        }
    }

    #[test]
    fn batches_round_trip_through_wal_and_pile() {
        let (pile, wal) = mem_pair();
        let written: Vec<Batch> = (0..5).map(|i| batch(i + 1, i * 3, 3)).collect();
        {
            let (mut store, recovered, report) = open_mem(&pile, &wal, 5);
            assert!(recovered.is_empty());
            assert!(!report.lost_data());
            for b in &written {
                store.append(b.clone()).unwrap();
            }
            // 15 rows with a 5-row threshold: checkpoints at batches 2
            // and 4, one batch left in the WAL.
            assert_eq!(store.pending_rows(), 3);
            assert_eq!(store.durable_end("Log"), Some(15));
        }
        let (_, recovered, report) = open_mem(&pile, &wal, 5);
        assert_eq!(recovered, written, "byte-faithful recovery");
        assert_eq!(report.batches(), 5);
        assert_eq!(report.rows, 15);
        assert!(report.pile_segments >= 2);
        assert!(!report.lost_data());
    }

    #[test]
    fn append_rejects_discontinuous_offsets() {
        let (pile, wal) = mem_pair();
        let (mut store, _, _) = open_mem(&pile, &wal, 100);
        store.append(batch(1, 0, 2)).unwrap();
        let err = store.append(batch(2, 5, 1)).unwrap_err();
        assert!(matches!(
            err,
            PileError::BaseMismatch {
                expected: 2,
                found: 5,
                ..
            }
        ));
        // The good batch is untouched.
        let (_, recovered, _) = open_mem(&pile, &wal, 100);
        assert_eq!(recovered.len(), 1);
    }

    #[test]
    fn checkpoint_crash_window_deduplicates_on_recovery() {
        // Construct the between-checkpoint-and-reset crash state by
        // splicing: store A (threshold too high to checkpoint) provides
        // the un-reset WAL; store B (same batches, low threshold)
        // provides the checkpointed pile.
        let batches: Vec<Batch> = (0..3).map(|i| batch(i + 1, i * 2, 2)).collect();
        let (pile_a, wal_a) = mem_pair();
        {
            let (mut a, _, _) = open_mem(&pile_a, &wal_a, 1000);
            for b in &batches {
                a.append(b.clone()).unwrap();
            }
        }
        let (pile_b, wal_b) = mem_pair();
        {
            let (mut b, _, _) = open_mem(&pile_b, &wal_b, 6);
            for x in &batches {
                b.append(x.clone()).unwrap();
            }
        }
        // Crash state: B's pile (checkpoint done) + A's WAL (reset not).
        let (_, recovered, report) = open_mem(&pile_b, &wal_a, 1000);
        assert_eq!(recovered, batches, "no duplicates, nothing lost");
        assert_eq!(report.skipped_wal_batches, 3);
        assert_eq!(report.pile_batches, 3);
        assert_eq!(report.wal_batches, 0);
        // The interrupted checkpoint was finished: a re-open of the same
        // media sees no duplicates left to skip.
        let (_, recovered, report) = open_mem(&pile_b, &wal_a, 1000);
        assert_eq!(recovered, batches);
        assert_eq!(report.skipped_wal_batches, 0);
    }

    #[test]
    fn wal_gap_truncates_and_reports() {
        // A WAL that *skips* rows relative to the pile (lost middle
        // records) must be cut at the discontinuity, not replayed with a
        // hole.
        let (pile_a, wal_a) = mem_pair();
        {
            let (mut a, _, _) = open_mem(&pile_a, &wal_a, 4);
            a.append(batch(1, 0, 4)).unwrap(); // checkpoints at 4 rows
            a.append(batch(2, 4, 1)).unwrap(); // stays in the WAL
        }
        // Splice in a WAL whose batch starts beyond the pile's end.
        let (pile_b, wal_b) = mem_pair();
        {
            let (mut b, _, _) = open_mem(&pile_b, &wal_b, 1000);
            b.append(batch(9, 7, 2)).unwrap();
        }
        let (_, recovered, report) = open_mem(&pile_a, &wal_b, 1000);
        assert_eq!(recovered.len(), 1, "only the pile's batch survives");
        assert_eq!(recovered[0].end_row(), 4);
        assert!(report.lost_data());
        assert!(report.wal_truncated_bytes > 0);
        assert!(
            report.dropped.iter().any(|d| d.contains("continuity")),
            "{:?}",
            report.dropped
        );
        // The WAL was physically repaired: reopening is clean.
        let (_, _, report) = open_mem(&pile_a, &wal_b, 1000);
        assert!(!report.lost_data());
    }

    #[test]
    fn multi_table_batches_track_independent_tails() {
        let (pile, wal) = mem_pair();
        let mut other = batch(2, 100, 2);
        other.table = "Audit".to_string();
        {
            let (mut store, _, _) = open_mem(&pile, &wal, 1000);
            store.append(batch(1, 0, 3)).unwrap();
            store.append(other.clone()).unwrap();
            assert_eq!(store.durable_end("Log"), Some(3));
            assert_eq!(store.durable_end("Audit"), Some(102));
        }
        let (_, recovered, report) = open_mem(&pile, &wal, 1000);
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1], other);
        assert!(!report.lost_data());
    }

    #[test]
    fn replay_into_round_trips_values_and_checks_the_base() {
        use crate::types::DataType;
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("Name", DataType::Str),
                    ("Date", DataType::Date),
                    ("Extra", DataType::Int),
                ],
            )
            .unwrap();
        let batches = vec![batch(1, 0, 3), batch(2, 3, 2)];
        assert_eq!(replay_into(&mut db, &batches).unwrap(), 5);
        assert_eq!(db.table(log).len(), 5);
        let row = db.table(log).row(4).to_vec();
        assert_eq!(row[0], Value::Int(4));
        assert_eq!(row[1], Value::Str(db.pool().get("row-3-1").unwrap()));
        // Replaying against the wrong base is a typed error.
        let err = replay_into(&mut db, &batches).unwrap_err();
        assert!(matches!(err, PileError::BaseMismatch { .. }));
        // An unknown table is a typed error too.
        let mut fresh = Database::new();
        assert!(matches!(
            replay_into(&mut fresh, &batches),
            Err(PileError::Replay(Error::UnknownTable(_)))
        ));
    }

    #[test]
    fn relaxed_policy_still_syncs_checkpoints() {
        // Behavioral smoke: with a relaxed store, appends and checkpoints
        // both succeed on media whose sync is observable (SharedMem sync
        // is a no-op, so this is shape coverage; the policy split is
        // asserted structurally in the fault suite).
        let (pile, wal) = mem_pair();
        let (mut store, _, _) = DurableStore::open_on(
            Box::new(pile.clone()),
            Box::new(wal.clone()),
            "mem",
            Durability::Relaxed,
            4,
        )
        .expect("open");
        store.append(batch(1, 0, 5)).unwrap();
        assert_eq!(store.pending_rows(), 0, "checkpointed");
        let (_, recovered, _) = open_mem(&pile, &wal, 4);
        assert_eq!(recovered.len(), 1);
    }

    #[test]
    fn durability_parses_and_displays() {
        assert_eq!(Durability::parse("strict"), Some(Durability::Strict));
        assert_eq!(Durability::parse("relaxed"), Some(Durability::Relaxed));
        assert_eq!(Durability::parse("eventual"), None);
        assert_eq!(Durability::Strict.to_string(), "strict");
        assert_eq!(Durability::default(), Durability::Strict);
    }
}
