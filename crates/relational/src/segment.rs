//! Segmented append-only storage: the substrate that makes epoch
//! publication `O(batch)` instead of `O(database)`.
//!
//! The auditing workload is append-only by design — the access log only
//! grows — yet every published [`Epoch`](crate::engine::Epoch) used to pay
//! a full copy of every column (database clone + engine fork). A
//! [`SegVec`] removes that coupling: values accumulate in a small mutable
//! *tail* and are *sealed* into immutable, `Arc`-shared *segments* once
//! the tail reaches the segment capacity. Cloning a `SegVec` shares every
//! sealed segment by pointer and copies only the tail, so two epochs of an
//! append-only table share all but the most recent rows.
//!
//! [`LayeredMap`] is the companion structure for append-only *lookup*
//! state (the engine's value interner, whose `Value → id` map would
//! otherwise be an `O(distinct values)` clone per epoch): an LSM-style
//! stack of immutable `Arc`-shared layers plus a small mutable tail,
//! merged geometrically so lookups probe `O(log n)` layers and the
//! amortized merge cost per insert stays constant.
//!
//! # Copy meter
//!
//! Publication cost claims need evidence, so both structures meter the
//! bytes their `Clone` impls actually copy into a thread-local counter
//! ([`copied_bytes`] / [`reset_copied_bytes`]). The storage-equivalence
//! suite and `audit-bench` read it to show copied bytes scale with the
//! ingested batch, not the database. (The meter counts element slots at
//! `size_of::<T>()` granularity — for indirect payloads such as boxed
//! rows it measures the copied handles, which scale identically.)

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Default number of rows per sealed segment. Small enough that the
/// mutable tail (the only part an epoch publication copies) stays a
/// bounded constant; large enough that segment lookup stays cheap and the
/// per-segment `Arc` overhead is noise.
pub const DEFAULT_SEGMENT_ROWS: usize = 1024;

std::thread_local! {
    static COPIED_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Bytes copied by segmented-storage `Clone`s on this thread since the
/// last [`reset_copied_bytes`]. Epoch publication runs on the writer
/// thread, so metering an ingest is `reset → ingest → copied_bytes()`.
pub fn copied_bytes() -> u64 {
    COPIED_BYTES.with(|c| c.get())
}

/// Resets this thread's copy meter, returning the previous reading.
pub fn reset_copied_bytes() -> u64 {
    COPIED_BYTES.with(|c| c.replace(0))
}

fn note_copied(bytes: usize) {
    COPIED_BYTES.with(|c| c.set(c.get() + bytes as u64));
}

/// An append-only vector stored as immutable `Arc`-shared segments plus a
/// small mutable tail. See the module docs.
///
/// Random access is `O(1)` in the common case (all sealed segments full):
/// the segment holding row `i` is found by guessing `i / segment_rows`
/// and scanning forward — segments never exceed the capacity, so the
/// guess never overshoots. Explicitly [`seal`](SegVec::seal)ed partial
/// segments (a test/ops affordance) lengthen that scan; the append path
/// only ever seals full segments.
#[derive(Debug)]
pub struct SegVec<T> {
    sealed: Vec<Arc<[T]>>,
    /// Cumulative end offset of each sealed segment (`ends.last()` is the
    /// total sealed length).
    ends: Vec<usize>,
    tail: Vec<T>,
    seg_rows: usize,
}

impl<T: Clone> Clone for SegVec<T> {
    fn clone(&self) -> Self {
        note_copied(self.tail.len() * std::mem::size_of::<T>());
        SegVec {
            sealed: self.sealed.clone(),
            ends: self.ends.clone(),
            tail: self.tail.clone(),
            seg_rows: self.seg_rows,
        }
    }
}

impl<T> SegVec<T> {
    /// An empty vector sealing segments at `seg_rows` elements.
    ///
    /// # Panics
    /// Panics when `seg_rows` is zero.
    pub fn new(seg_rows: usize) -> Self {
        assert!(seg_rows > 0, "segment capacity must be positive");
        SegVec {
            sealed: Vec::new(),
            ends: Vec::new(),
            tail: Vec::new(),
            seg_rows,
        }
    }

    /// The segment capacity this vector seals at.
    pub fn segment_rows(&self) -> usize {
        self.seg_rows
    }

    /// Total number of elements (sealed + tail).
    pub fn len(&self) -> usize {
        self.sealed_len() + self.tail.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of elements living in sealed (shared) segments.
    pub fn sealed_len(&self) -> usize {
        self.ends.last().copied().unwrap_or(0)
    }

    /// The sealed segments, oldest first. Exposed so callers can assert
    /// `Arc::ptr_eq` sharing across clones (the storage-equivalence
    /// suite) and key caches per segment.
    pub fn sealed_segments(&self) -> &[Arc<[T]>] {
        &self.sealed
    }

    /// The row range `[start, end)` covered by sealed segment `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn segment_bounds(&self, i: usize) -> (usize, usize) {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        (start, self.ends[i])
    }

    /// The mutable tail: elements appended since the last seal.
    pub fn tail(&self) -> &[T] {
        &self.tail
    }

    /// Appends an element, sealing the tail when it reaches capacity.
    pub fn push(&mut self, value: T) {
        self.tail.push(value);
        if self.tail.len() >= self.seg_rows {
            self.seal_tail();
        }
    }

    /// Seals the current tail (if non-empty) into an immutable shared
    /// segment, even when it is below capacity. Appends continue into a
    /// fresh tail. Sealing never changes contents or indexes — it only
    /// moves the share boundary.
    pub fn seal(&mut self) {
        if !self.tail.is_empty() {
            self.seal_tail();
        }
    }

    fn seal_tail(&mut self) {
        let seg: Arc<[T]> = std::mem::take(&mut self.tail).into();
        let end = self.sealed_len() + seg.len();
        self.ends.push(end);
        self.sealed.push(seg);
    }

    /// Borrows the element at `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> &T {
        let sealed_len = self.sealed_len();
        if i >= sealed_len {
            return &self.tail[i - sealed_len];
        }
        // Segments never exceed `seg_rows`, so the true segment index is
        // at least `i / seg_rows`: scan forward only.
        let mut s = (i / self.seg_rows).min(self.ends.len() - 1);
        while self.ends[s] <= i {
            s += 1;
        }
        let start = if s == 0 { 0 } else { self.ends[s - 1] };
        &self.sealed[s][i - start]
    }

    /// Iterates over the storage as contiguous slices: every sealed
    /// segment, then the tail. The fast path for full scans — no
    /// per-element segment lookup.
    pub fn chunks(&self) -> impl Iterator<Item = &[T]> {
        self.sealed
            .iter()
            .map(|s| &s[..])
            .chain(std::iter::once(&self.tail[..]))
            .filter(|c| !c.is_empty())
    }

    /// Iterates over all elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks().flatten()
    }

    /// Iterates `(index, &value)` over `[from, to)` chunk-wise — the fast
    /// path for range scans (no per-element segment resolution).
    pub fn iter_range(&self, from: usize, to: usize) -> impl Iterator<Item = (usize, &T)> {
        let mut start = 0usize;
        self.chunks()
            .filter_map(move |chunk| {
                let chunk_start = start;
                start += chunk.len();
                let lo = from.max(chunk_start);
                let hi = to.min(chunk_start + chunk.len());
                (lo < hi).then(|| {
                    chunk[lo - chunk_start..hi - chunk_start]
                        .iter()
                        .enumerate()
                        .map(move |(i, v)| (lo + i, v))
                })
            })
            .flatten()
    }
}

impl<T> std::ops::Index<usize> for SegVec<T> {
    type Output = T;

    fn index(&self, i: usize) -> &T {
        self.get(i)
    }
}

/// Default tail capacity of a [`LayeredMap`] (entries buffered before a
/// layer is sealed and merged).
const LAYER_TAIL_CAP: usize = 1024;

/// An append-only map stored as immutable `Arc`-shared layers plus a
/// small mutable tail, LSM-style: sealing pushes the tail as a new layer
/// and merges adjacent layers of similar size, so the stack stays
/// `O(log n)` deep and the amortized merge cost per insert is constant.
///
/// Cloning shares every layer and copies only the tail — the property
/// epoch publication needs from the engine's value interner, whose
/// reverse map would otherwise cost `O(distinct values)` per fork.
///
/// Keys are expected to be inserted at most once (the interner checks
/// [`get`](LayeredMap::get) first); a re-inserted key shadows the layered
/// entry while in the tail but may resurface after a merge.
#[derive(Debug)]
pub struct LayeredMap<K, V> {
    /// Older (larger) layers first.
    layers: Vec<Arc<HashMap<K, V>>>,
    tail: HashMap<K, V>,
    total: usize,
    tail_cap: usize,
}

impl<K: Clone, V: Clone> Clone for LayeredMap<K, V> {
    fn clone(&self) -> Self {
        note_copied(self.tail.len() * (std::mem::size_of::<K>() + std::mem::size_of::<V>()));
        LayeredMap {
            layers: self.layers.clone(),
            tail: self.tail.clone(),
            total: self.total,
            tail_cap: self.tail_cap,
        }
    }
}

impl<K, V> Default for LayeredMap<K, V> {
    fn default() -> Self {
        LayeredMap {
            layers: Vec::new(),
            tail: HashMap::new(),
            total: 0,
            tail_cap: LAYER_TAIL_CAP,
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> LayeredMap<K, V> {
    /// An empty map with the default tail capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty map sealing its tail into a layer every `tail_cap`
    /// entries (tests use tiny capacities so sharing kicks in on small
    /// data).
    pub fn with_tail_cap(tail_cap: usize) -> Self {
        LayeredMap {
            tail_cap: tail_cap.max(1),
            ..Self::default()
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no entry has been inserted.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Looks a key up: the tail first, then layers newest-first. Accepts
    /// any borrowed form of the key (`&str` for `Box<str>` keys), like
    /// `HashMap::get`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        if let Some(v) = self.tail.get(key) {
            return Some(v);
        }
        self.layers.iter().rev().find_map(|layer| layer.get(key))
    }

    /// Inserts a (fresh) key. Seals and merges layers when the tail
    /// reaches capacity.
    pub fn insert(&mut self, key: K, value: V) {
        debug_assert!(
            self.get(&key).is_none(),
            "LayeredMap keys are insert-once (a re-insert shadows the \
             layered entry only until the next merge)"
        );
        if self.tail.insert(key, value).is_none() {
            self.total += 1;
        }
        if self.tail.len() >= self.tail_cap {
            self.layers.push(Arc::new(std::mem::take(&mut self.tail)));
            // Geometric compaction: merge while the next-older layer is
            // no larger than the freshly sealed one.
            while self.layers.len() >= 2 {
                let n = self.layers.len();
                if self.layers[n - 2].len() > self.layers[n - 1].len() {
                    break;
                }
                let newer = self.layers.pop().expect("len >= 2");
                let older = self.layers.pop().expect("len >= 2");
                let mut merged = (*older).clone();
                merged.extend(newer.iter().map(|(k, v)| (k.clone(), v.clone())));
                self.layers.push(Arc::new(merged));
            }
        }
    }

    /// Number of immutable layers currently stacked (diagnostics).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The immutable layers themselves, oldest first. Exposed so the
    /// cross-epoch sharing suite can assert `Arc::ptr_eq` between clones
    /// — the same invariant [`SegVec::sealed_segments`] exposes for rows.
    pub fn layers(&self) -> &[Arc<HashMap<K, V>>] {
        &self.layers
    }

    /// Seals the current tail into a layer (without the geometric merge),
    /// so clones made afterwards share everything inserted so far. The
    /// explicit form for snapshot/ops flows and sharing tests; the insert
    /// path seals and merges automatically at the tail capacity.
    pub fn seal(&mut self) {
        if !self.tail.is_empty() {
            self.layers.push(Arc::new(std::mem::take(&mut self.tail)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_and_iterate_across_segments() {
        let mut v: SegVec<u32> = SegVec::new(4);
        for i in 0..11 {
            v.push(i);
        }
        assert_eq!(v.len(), 11);
        assert_eq!(v.sealed_len(), 8);
        assert_eq!(v.sealed_segments().len(), 2);
        assert_eq!(v.tail(), &[8, 9, 10]);
        for i in 0..11 {
            assert_eq!(*v.get(i as usize), i);
            assert_eq!(v[i as usize], i);
        }
        let all: Vec<u32> = v.iter().copied().collect();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
        let chunk_lens: Vec<usize> = v.chunks().map(<[u32]>::len).collect();
        assert_eq!(chunk_lens, vec![4, 4, 3]);
    }

    #[test]
    fn clone_shares_sealed_segments_and_copies_the_tail() {
        let mut v: SegVec<u32> = SegVec::new(4);
        for i in 0..10 {
            v.push(i);
        }
        reset_copied_bytes();
        let c = v.clone();
        // Two tail elements were copied; the two sealed segments were
        // shared by pointer.
        assert_eq!(copied_bytes(), 2 * 4);
        for (a, b) in v.sealed_segments().iter().zip(c.sealed_segments()) {
            assert!(Arc::ptr_eq(a, b));
        }
        // Diverging appends never touch shared segments.
        v.push(77);
        assert_eq!(*c.get(9), 9);
        assert_eq!(c.len(), 10);
        assert_eq!(v.len(), 11);
    }

    #[test]
    fn iter_range_walks_chunk_boundaries_exactly() {
        let mut v: SegVec<u32> = SegVec::new(4);
        for i in 0..11 {
            v.push(i);
        }
        for (from, to) in [(0, 11), (3, 9), (4, 8), (5, 5), (10, 11), (0, 1)] {
            let got: Vec<(usize, u32)> = v.iter_range(from, to).map(|(i, &x)| (i, x)).collect();
            let want: Vec<(usize, u32)> = (from..to).map(|i| (i, i as u32)).collect();
            assert_eq!(got, want, "range [{from}, {to})");
        }
        assert_eq!(v.iter_range(11, 11).count(), 0);
    }

    #[test]
    fn explicit_seal_freezes_a_partial_segment() {
        let mut v: SegVec<u32> = SegVec::new(100);
        v.push(1);
        v.push(2);
        v.seal();
        v.seal(); // idempotent on an empty tail
        v.push(3);
        assert_eq!(v.sealed_segments().len(), 1);
        assert_eq!(v.segment_bounds(0), (0, 2));
        assert_eq!(*v.get(0), 1);
        assert_eq!(*v.get(1), 2);
        assert_eq!(*v.get(2), 3);
        // Irregular (short) segments still resolve via the forward scan.
        for i in 0..200 {
            v.push(100 + i);
        }
        assert_eq!(*v.get(2), 3);
        assert_eq!(*v.get(202), 299);
    }

    #[test]
    fn layered_map_round_trips_and_shares_layers() {
        let mut m: LayeredMap<u64, u32> = LayeredMap::new();
        let n = (LAYER_TAIL_CAP * 3 + 17) as u64;
        for i in 0..n {
            assert!(m.get(&i).is_none());
            m.insert(i, i as u32 * 2);
        }
        assert_eq!(m.len(), n as usize);
        for i in 0..n {
            assert_eq!(m.get(&i), Some(&(i as u32 * 2)));
        }
        assert!(m.get(&(n + 1)).is_none());
        // Geometric compaction keeps the stack logarithmic.
        assert!(m.layer_count() <= 2 + (n as f64).log2() as usize);
        reset_copied_bytes();
        let c = m.clone();
        // Only the tail was copied: far less than the whole map.
        assert!(copied_bytes() < n * 12 / 2);
        for i in 0..n {
            assert_eq!(c.get(&i), Some(&(i as u32 * 2)));
        }
    }

    #[test]
    fn copy_meter_is_per_thread_and_resets() {
        reset_copied_bytes();
        let mut v: SegVec<u64> = SegVec::new(8);
        v.push(1);
        let _ = v.clone();
        assert_eq!(copied_bytes(), 8);
        assert_eq!(reset_copied_bytes(), 8);
        assert_eq!(copied_bytes(), 0);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _ = v.clone();
                assert_eq!(copied_bytes(), 8, "child thread has its own meter");
            });
        });
        assert_eq!(copied_bytes(), 0, "parent meter unaffected");
    }
}
