//! # eba-synth
//!
//! Synthetic CareWeb-like hospital database and access-log generator.
//!
//! The original evaluation (§5.2 of *Explanation-Based Auditing*) used one
//! week of de-identified data from the University of Michigan Health System:
//! ~4.5M accesses, 124K patients, 12K users, plus Appointments, Visits,
//! Documents (data set A) and Labs, Medications, Radiology (data set B), and
//! 291 department codes. That data is protected health information and
//! unavailable, so this crate generates a synthetic hospital that preserves
//! the *mechanisms* the paper observed:
//!
//! * every event row references a single primary user (appointments are
//!   scheduled with the doctor, not the nurse), so short hand-crafted
//!   templates explain few first accesses (§5.3.1, Figure 9);
//! * collaborating users carry *different* department codes (`"UMHS
//!   Pediatrics (Physicians)"` vs `"Nursing - Pediatrics"`), so department
//!   codes under-perform inferred collaborative groups (§5.3.2);
//! * consult services (radiology, pathology, pharmacy) access records via
//!   explicit order rows (Labs/Medications/Radiology), the reason the paper
//!   expanded its study to data set B;
//! * repeat accesses form a majority of the log; the observation window is
//!   truncated, so some events fall outside it (the paper attributes its
//!   unexplained residue "in large part to the incomplete data set");
//! * some users (vascular access, anesthesiology) assist many departments
//!   with no recorded reason — the paper's hardest-to-explain users;
//! * user–patient density is very low, which is what makes fake-log
//!   precision high (§5.3.2's evaluation methodology).
//!
//! Every access carries a [`AccessReason`] ground-truth label (never shown
//! to the miner; used to validate the generator and analyze results).
//! Generation is deterministic given [`SynthConfig::seed`].

pub mod build;
pub mod config;
pub mod events;
pub mod log;
pub mod schema;
pub mod world;

pub use build::{Hospital, LogColumns};
pub use config::SynthConfig;
pub use events::{Event, EventKind};
pub use log::{Access, AccessReason};
pub use schema::{create_careweb_tables, declare_careweb_relationships, CarewebTables};
pub use world::{Role, Team, UserMeta, World};
