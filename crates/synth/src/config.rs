//! Generator configuration.

/// Parameters of the synthetic hospital. Defaults approximate the CareWeb
//  data set at ~1/20 scale so every experiment runs on a laptop.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// RNG seed; generation is fully deterministic given the seed.
    pub seed: u64,
    /// Length of the observation window in days (the paper's log covers
    /// one week; experiments train on days 1–6 and test on day 7, 1-based).
    pub days: u32,
    /// Number of patients.
    pub n_patients: usize,
    /// Number of clinical care teams (each producing two department codes:
    /// physicians and nursing).
    pub n_teams: usize,
    /// Doctors per care team.
    pub doctors_per_team: usize,
    /// Nurses per care team.
    pub nurses_per_team: usize,
    /// Medical students (department code "Medical Students", each rotating
    /// through one care team during the window — the paper's example of
    /// why department codes are not collaborative groups).
    pub n_med_students: usize,
    /// Users per consult service (radiology, pathology, pharmacy).
    pub consult_service_size: usize,
    /// Hospital-wide assist users with no recorded reason for their
    /// accesses (vascular access nurses, anesthesiology — the paper's top
    /// unexplained departments).
    pub n_float_users: usize,

    /// Probability a patient has an appointment during the window.
    pub p_appointment: f64,
    /// Probability a patient has an (inpatient) visit — rare in the paper's
    /// data (3K visits vs 51K appointments).
    pub p_visit: f64,
    /// Probability a patient has a document produced.
    pub p_document: f64,
    /// Probability an appointment/visit generates a lab order.
    pub p_lab: f64,
    /// Probability it generates a medication order.
    pub p_medication: f64,
    /// Probability it generates a radiology order.
    pub p_radiology: f64,
    /// Fraction of patients whose clinical events fall *outside* the
    /// observation window: the accesses happen, the event rows do not
    /// (data truncation, the paper's main source of unexplainable
    /// accesses).
    pub p_event_outside_window: f64,

    /// Maximum team nurses who access the record around an appointment.
    pub team_nurse_accesses: usize,
    /// Probability the team's medical student also accesses.
    pub p_student_access: f64,
    /// Probability the ordering doctor re-accesses after a result arrives.
    pub p_order_followup: f64,
    /// Per-access probability of one more repeat access by the same user
    /// (applied geometrically, so the expected chain length is
    /// `1/(1-p)`; the paper's log is majority repeats).
    pub p_repeat: f64,
    /// Number of float-pool accesses (uniformly random patients).
    pub n_float_accesses: usize,
    /// Number of injected snooping accesses (no legitimate reason; used by
    /// the misuse-detection example). Default 0.
    pub n_snoop_accesses: usize,

    /// Declare administrator relationships between the ordering-user
    /// columns of different event tables (enables the paper's length-3
    /// "two event types" templates, e.g. radiology→medications).
    pub cross_event_user_rels: bool,
    /// Reproduce the paper's extraction artifact: data-set-B tables (Labs,
    /// Medications, Radiology) identify users by an *audit id*, data-set-A
    /// tables by a *caregiver id*, and a `Mapping(AuditId, CaregiverId)`
    /// table switches between them. The mapping table is typically passed
    /// as an exempt table to the miner ("we did not count this added
    /// mapping table against the number of tables used"), and paths through
    /// a self-join plus the mapping reach length 5 as in Figure 13.
    pub use_mapping_table: bool,
    /// Specialty names for care teams (cycled if `n_teams` exceeds the
    /// list; includes the two §5.3.2 showcases).
    pub specialties: Vec<String>,
}

impl SynthConfig {
    /// CareWeb at roughly 1/20 scale: ~600 users, 6 000 patients and
    /// (after repeats) a six-figure access count.
    pub fn default_scale() -> Self {
        SynthConfig {
            seed: 42,
            days: 7,
            n_patients: 6_000,
            n_teams: 24,
            doctors_per_team: 4,
            nurses_per_team: 7,
            n_med_students: 24,
            consult_service_size: 18,
            n_float_users: 24,
            p_appointment: 0.55,
            p_visit: 0.05,
            p_document: 0.65,
            p_lab: 0.30,
            p_medication: 0.45,
            p_radiology: 0.15,
            p_event_outside_window: 0.25,
            team_nurse_accesses: 2,
            p_student_access: 0.25,
            p_order_followup: 0.5,
            p_repeat: 0.55,
            n_float_accesses: 1_500,
            n_snoop_accesses: 0,
            cross_event_user_rels: true,
            use_mapping_table: false,
            specialties: Self::default_specialties(),
        }
    }

    /// A small hospital for integration tests (~1–2k accesses).
    pub fn small() -> Self {
        SynthConfig {
            n_patients: 400,
            n_teams: 6,
            doctors_per_team: 3,
            nurses_per_team: 4,
            n_med_students: 6,
            consult_service_size: 6,
            n_float_users: 6,
            n_float_accesses: 150,
            ..Self::default_scale()
        }
    }

    /// A minimal hospital for unit tests (hundreds of accesses).
    pub fn tiny() -> Self {
        SynthConfig {
            n_patients: 80,
            n_teams: 3,
            doctors_per_team: 2,
            nurses_per_team: 2,
            n_med_students: 3,
            consult_service_size: 3,
            n_float_users: 3,
            n_float_accesses: 40,
            ..Self::default_scale()
        }
    }

    /// The default specialty list (16 names; the first two reproduce the
    /// paper's Figures 10–11 showcases).
    pub fn default_specialties() -> Vec<String> {
        [
            "Cancer Center",
            "Psychiatry",
            "Pediatrics",
            "Cardiology",
            "Neurology",
            "Orthopedics",
            "Dermatology",
            "Ophthalmology",
            "Obstetrics",
            "Urology",
            "Rheumatology",
            "Gastroenterology",
            "Pulmonology",
            "Endocrinology",
            "Nephrology",
            "Family Medicine",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_down() {
        let d = SynthConfig::default_scale();
        let s = SynthConfig::small();
        let t = SynthConfig::tiny();
        assert!(d.n_patients > s.n_patients);
        assert!(s.n_patients > t.n_patients);
        assert_eq!(d.days, 7);
    }

    #[test]
    fn probabilities_are_valid() {
        let c = SynthConfig::default_scale();
        for p in [
            c.p_appointment,
            c.p_visit,
            c.p_document,
            c.p_lab,
            c.p_medication,
            c.p_radiology,
            c.p_event_outside_window,
            c.p_student_access,
            c.p_order_followup,
            c.p_repeat,
        ] {
            assert!((0.0..1.0).contains(&p), "probability {p} out of range");
        }
    }

    #[test]
    fn specialties_include_showcases() {
        let s = SynthConfig::default_specialties();
        assert!(s.iter().any(|x| x == "Cancer Center"));
        assert!(s.iter().any(|x| x == "Psychiatry"));
    }
}
