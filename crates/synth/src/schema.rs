//! The CareWeb-shaped schema and its join metadata, reusable outside the
//! generator (e.g. by tools loading real CSV extracts into the same
//! layout).

use eba_relational::{DataType, Database, TableId};

/// Table ids of a freshly created CareWeb-shaped schema.
#[derive(Debug, Clone, Copy)]
pub struct CarewebTables {
    /// The access log.
    pub log: TableId,
    /// Outpatient appointments (data set A).
    pub appointments: TableId,
    /// Inpatient visits (data set A).
    pub visits: TableId,
    /// Documents produced (data set A).
    pub documents: TableId,
    /// Lab orders (data set B).
    pub labs: TableId,
    /// Medication orders (data set B).
    pub medications: TableId,
    /// Radiology orders (data set B).
    pub radiology: TableId,
    /// User department codes.
    pub users: TableId,
    /// The audit-id↔caregiver-id mapping artifact, when enabled.
    pub mapping: Option<TableId>,
}

impl CarewebTables {
    /// All tables in a fixed order, paired with their names (useful for
    /// CSV export/import directories).
    pub fn named(&self) -> Vec<(&'static str, TableId)> {
        let mut v = vec![
            ("Log", self.log),
            ("Appointments", self.appointments),
            ("Visits", self.visits),
            ("Documents", self.documents),
            ("Labs", self.labs),
            ("Medications", self.medications),
            ("Radiology", self.radiology),
            ("Users", self.users),
        ];
        if let Some(m) = self.mapping {
            v.push(("Mapping", m));
        }
        v
    }
}

/// Creates the CareWeb-shaped tables in an empty database.
///
/// # Panics
/// Panics if any of the table names already exist.
pub fn create_careweb_tables(db: &mut Database, with_mapping: bool) -> CarewebTables {
    let log = db
        .create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
                ("Action", DataType::Str),
                ("Day", DataType::Int),
                ("IsFirst", DataType::Int),
            ],
        )
        .expect("fresh database");
    let appointments = db
        .create_table(
            "Appointments",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("Doctor", DataType::Int),
            ],
        )
        .expect("fresh database");
    let visits = db
        .create_table(
            "Visits",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("Doctor", DataType::Int),
            ],
        )
        .expect("fresh database");
    let documents = db
        .create_table(
            "Documents",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
            ],
        )
        .expect("fresh database");
    let labs = db
        .create_table(
            "Labs",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("OrderUser", DataType::Int),
                ("ResultUser", DataType::Int),
            ],
        )
        .expect("fresh database");
    let medications = db
        .create_table(
            "Medications",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("OrderUser", DataType::Int),
                ("SignUser", DataType::Int),
                ("AdminUser", DataType::Int),
            ],
        )
        .expect("fresh database");
    let radiology = db
        .create_table(
            "Radiology",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("OrderUser", DataType::Int),
                ("ReadUser", DataType::Int),
            ],
        )
        .expect("fresh database");
    let users = db
        .create_table(
            "Users",
            &[("User", DataType::Int), ("Department", DataType::Str)],
        )
        .expect("fresh database");
    let mapping = with_mapping.then(|| {
        db.create_table(
            "Mapping",
            &[("AuditId", DataType::Int), ("CaregiverId", DataType::Int)],
        )
        .expect("fresh database")
    });
    CarewebTables {
        log,
        appointments,
        visits,
        documents,
        labs,
        medications,
        radiology,
        users,
        mapping,
    }
}

/// Declares the schema's join metadata (Def. 5's administrator input):
/// patient FKs, user FKs (routed through the mapping table for data set B
/// when present), the department-code self-join, and — optionally —
/// cross-event relationships between ordering-user columns within one id
/// space.
///
/// No self-relationships are declared on the Log itself: the paper allows
/// self-joins only on the group id and department code, and the
/// *undecorated* repeat-access template is vacuous (a row trivially joins
/// with itself). The decorated repeat template stays hand-crafted.
pub fn declare_careweb_relationships(
    db: &mut Database,
    with_mapping: bool,
    cross_event_user_rels: bool,
) {
    for table in [
        "Appointments",
        "Visits",
        "Documents",
        "Labs",
        "Medications",
        "Radiology",
    ] {
        db.add_fk("Log", "Patient", table, "Patient")
            .expect("typed columns");
    }
    let a_user_cols: &[(&str, &str)] = &[
        ("Appointments", "Doctor"),
        ("Visits", "Doctor"),
        ("Documents", "User"),
    ];
    let b_user_cols: &[(&str, &str)] = &[
        ("Labs", "OrderUser"),
        ("Labs", "ResultUser"),
        ("Medications", "OrderUser"),
        ("Medications", "SignUser"),
        ("Medications", "AdminUser"),
        ("Radiology", "OrderUser"),
        ("Radiology", "ReadUser"),
    ];
    for (t, c) in a_user_cols {
        db.add_fk(t, c, "Log", "User").expect("typed columns");
        db.add_fk(t, c, "Users", "User").expect("typed columns");
    }
    if with_mapping {
        // Data set B speaks audit ids: only the mapping table connects it
        // back to the caregiver-id world.
        for (t, c) in b_user_cols {
            db.add_fk(t, c, "Mapping", "AuditId")
                .expect("typed columns");
        }
        db.add_fk("Mapping", "CaregiverId", "Log", "User")
            .expect("typed columns");
        db.add_fk("Mapping", "CaregiverId", "Users", "User")
            .expect("typed columns");
    } else {
        for (t, c) in b_user_cols {
            db.add_fk(t, c, "Log", "User").expect("typed columns");
            db.add_fk(t, c, "Users", "User").expect("typed columns");
        }
    }
    db.add_fk("Users", "User", "Log", "User")
        .expect("typed columns");
    // Department codes may be used in self-joins (the paper allows exactly
    // this plus the Groups id, which `install_groups` adds later).
    db.allow_self_join("Users", "Department")
        .expect("column exists");
    if cross_event_user_rels {
        // Cross-event relationships only make sense within one id space.
        let a_primary: &[(&str, &str)] = &[
            ("Appointments", "Doctor"),
            ("Visits", "Doctor"),
            ("Documents", "User"),
        ];
        let b_primary: &[(&str, &str)] = &[
            ("Labs", "OrderUser"),
            ("Medications", "OrderUser"),
            ("Radiology", "OrderUser"),
        ];
        let groups: Vec<Vec<(&str, &str)>> = if with_mapping {
            vec![a_primary.to_vec(), b_primary.to_vec()]
        } else {
            vec![a_primary.iter().chain(b_primary).copied().collect()]
        };
        for cols in groups {
            for (i, (t1, c1)) in cols.iter().enumerate() {
                for (t2, c2) in cols.iter().skip(i + 1) {
                    let a = db.attr(t1, c1).expect("column exists");
                    let b = db.attr(t2, c2).expect("column exists");
                    db.add_relationship(a, b, eba_relational::RelationshipKind::Administrator)
                        .expect("typed columns");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_created_with_and_without_mapping() {
        let mut db = Database::new();
        let t = create_careweb_tables(&mut db, false);
        assert!(t.mapping.is_none());
        assert_eq!(t.named().len(), 8);
        let mut db2 = Database::new();
        let t2 = create_careweb_tables(&mut db2, true);
        assert!(t2.mapping.is_some());
        assert_eq!(t2.named().len(), 9);
    }

    #[test]
    fn relationship_counts_differ_by_mapping_mode() {
        let mut plain = Database::new();
        create_careweb_tables(&mut plain, false);
        declare_careweb_relationships(&mut plain, false, true);
        let mut mapped = Database::new();
        create_careweb_tables(&mut mapped, true);
        declare_careweb_relationships(&mut mapped, true, true);
        assert!(!plain.relationships().is_empty());
        assert!(!mapped.relationships().is_empty());
        // The mapped schema routes B-table user columns through Mapping
        // and splits the cross-event cliques, so the totals differ.
        assert_ne!(plain.relationships().len(), mapped.relationships().len());
        // Both allow exactly the department self-join.
        assert_eq!(plain.self_join_attrs().len(), 1);
        assert_eq!(mapped.self_join_attrs().len(), 1);
    }

    #[test]
    fn cross_event_toggle_changes_edge_count() {
        let mut with = Database::new();
        create_careweb_tables(&mut with, false);
        declare_careweb_relationships(&mut with, false, true);
        let mut without = Database::new();
        create_careweb_tables(&mut without, false);
        declare_careweb_relationships(&mut without, false, false);
        assert!(with.relationships().len() > without.relationships().len());
    }
}
