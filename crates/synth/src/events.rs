//! Clinical events: the reasons accesses happen.

use crate::config::SynthConfig;
use crate::world::{World, SERVICE_PATHOLOGY, SERVICE_PHARMACY, SERVICE_RADIOLOGY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One clinical event for a patient. User fields are 0-based user indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Outpatient appointment, scheduled with a doctor.
    Appointment {
        /// The appointment's doctor.
        doctor: usize,
    },
    /// Inpatient visit with a doctor.
    Visit {
        /// The attending doctor.
        doctor: usize,
    },
    /// A document (note) produced by a user.
    Document {
        /// The author.
        author: usize,
    },
    /// Lab order: requested by a doctor, performed by pathology staff.
    Lab {
        /// Ordering doctor.
        order: usize,
        /// Pathology user who produced the result.
        result: usize,
    },
    /// Medication order: requested by a doctor, signed by a pharmacist,
    /// administered by a nurse (the paper's Medications table records all
    /// three).
    Medication {
        /// Ordering doctor.
        order: usize,
        /// Signing pharmacist.
        sign: usize,
        /// Administering nurse.
        admin: usize,
    },
    /// Radiology order: requested by a doctor, read by radiology staff.
    Radiology {
        /// Ordering doctor.
        order: usize,
        /// Reading radiologist.
        read: usize,
    },
}

/// A dated event for one patient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// 0-based patient index.
    pub patient: usize,
    /// Day within the window, 1-based (`1..=days`).
    pub day: u32,
    /// Minute within the day.
    pub minute: u32,
    /// What happened.
    pub kind: EventKind,
    /// Whether the event row is *recorded* in the database. Unrecorded
    /// events model the truncated observation window: the accesses they
    /// cause appear in the log, the event rows do not.
    pub recorded: bool,
}

impl Event {
    /// Timestamp in minutes since the window start (day 1 at 00:00 is
    /// minute 1440 so that "day 0" stays free for pre-window artifacts).
    pub fn timestamp(&self) -> i64 {
        i64::from(self.day) * 24 * 60 + i64::from(self.minute)
    }
}

/// Generates the week's clinical events for every patient.
pub fn generate_events(config: &SynthConfig, world: &World) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x5851_F42D));
    let mut events = Vec::with_capacity(config.n_patients * 2);

    for patient in 0..config.n_patients {
        let team = &world.teams[world.patient_team[patient]];
        if team.doctors.is_empty() {
            continue;
        }
        // Data truncation: this patient's events happened, but outside the
        // window — the rows are absent while the accesses remain.
        let recorded = !rng.gen_bool(config.p_event_outside_window);
        let mut clinical_day: Option<(u32, usize)> = None; // (day, doctor)

        let day_time = |rng: &mut StdRng| -> (u32, u32) {
            (
                rng.gen_range(1..=config.days),
                rng.gen_range(8 * 60..17 * 60),
            )
        };

        if rng.gen_bool(config.p_appointment) {
            let (day, minute) = day_time(&mut rng);
            let doctor = team.doctors[rng.gen_range(0..team.doctors.len())];
            clinical_day = Some((day, doctor));
            events.push(Event {
                patient,
                day,
                minute,
                kind: EventKind::Appointment { doctor },
                recorded,
            });
        }
        if rng.gen_bool(config.p_visit) {
            let (day, minute) = day_time(&mut rng);
            let doctor = team.doctors[rng.gen_range(0..team.doctors.len())];
            clinical_day.get_or_insert((day, doctor));
            events.push(Event {
                patient,
                day,
                minute,
                kind: EventKind::Visit { doctor },
                recorded,
            });
        }
        if rng.gen_bool(config.p_document) {
            let (day, minute) = day_time(&mut rng);
            let author = team.doctors[rng.gen_range(0..team.doctors.len())];
            events.push(Event {
                patient,
                day,
                minute,
                kind: EventKind::Document { author },
                recorded,
            });
        }

        // Orders hang off a clinical encounter.
        if let Some((day, doctor)) = clinical_day {
            let order_day = (day + u32::from(rng.gen_bool(0.5))).min(config.days);
            if rng.gen_bool(config.p_lab) {
                let result = pick(&mut rng, &world.service_members[SERVICE_PATHOLOGY]);
                events.push(Event {
                    patient,
                    day: order_day,
                    minute: rng.gen_range(8 * 60..20 * 60),
                    kind: EventKind::Lab {
                        order: doctor,
                        result,
                    },
                    recorded,
                });
            }
            if rng.gen_bool(config.p_medication) {
                let sign = pick(&mut rng, &world.service_members[SERVICE_PHARMACY]);
                let admin = if team.nurses.is_empty() {
                    doctor
                } else {
                    pick(&mut rng, &team.nurses)
                };
                events.push(Event {
                    patient,
                    day: order_day,
                    minute: rng.gen_range(8 * 60..20 * 60),
                    kind: EventKind::Medication {
                        order: doctor,
                        sign,
                        admin,
                    },
                    recorded,
                });
            }
            if rng.gen_bool(config.p_radiology) {
                let read = pick(&mut rng, &world.service_members[SERVICE_RADIOLOGY]);
                events.push(Event {
                    patient,
                    day: order_day,
                    minute: rng.gen_range(8 * 60..20 * 60),
                    kind: EventKind::Radiology {
                        order: doctor,
                        read,
                    },
                    recorded,
                });
            }
        }
    }
    events
}

fn pick(rng: &mut StdRng, pool: &[usize]) -> usize {
    pool[rng.gen_range(0..pool.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SynthConfig, World, Vec<Event>) {
        let config = SynthConfig::tiny();
        let world = World::generate(&config);
        let events = generate_events(&config, &world);
        (config, world, events)
    }

    #[test]
    fn events_are_generated_and_deterministic() {
        let (config, world, events) = setup();
        assert!(!events.is_empty());
        let again = generate_events(&config, &world);
        assert_eq!(events, again);
    }

    #[test]
    fn days_are_within_window() {
        let (config, _, events) = setup();
        for e in &events {
            assert!((1..=config.days).contains(&e.day));
            assert!(e.minute < 24 * 60);
        }
    }

    #[test]
    fn appointments_use_home_team_doctors() {
        let (_, world, events) = setup();
        for e in &events {
            if let EventKind::Appointment { doctor } = e.kind {
                let team = &world.teams[world.patient_team[e.patient]];
                assert!(team.doctors.contains(&doctor));
            }
        }
    }

    #[test]
    fn orders_reference_consult_services() {
        let (_, world, events) = setup();
        for e in &events {
            match &e.kind {
                EventKind::Lab { result, .. } => {
                    assert!(world.service_members[SERVICE_PATHOLOGY].contains(result));
                }
                EventKind::Radiology { read, .. } => {
                    assert!(world.service_members[SERVICE_RADIOLOGY].contains(read));
                }
                EventKind::Medication { sign, .. } => {
                    assert!(world.service_members[SERVICE_PHARMACY].contains(sign));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn truncation_marks_a_fraction_unrecorded() {
        let (config, _, events) = setup();
        let unrecorded = events.iter().filter(|e| !e.recorded).count();
        assert!(unrecorded > 0, "expected some unrecorded events");
        let frac = unrecorded as f64 / events.len() as f64;
        assert!(
            frac < config.p_event_outside_window * 2.5 + 0.1,
            "unrecorded fraction {frac} implausibly high"
        );
    }

    #[test]
    fn timestamps_order_by_day() {
        let e1 = Event {
            patient: 0,
            day: 1,
            minute: 30,
            kind: EventKind::Document { author: 0 },
            recorded: true,
        };
        let e2 = Event {
            patient: 0,
            day: 2,
            minute: 0,
            kind: EventKind::Document { author: 0 },
            recorded: true,
        };
        assert!(e1.timestamp() < e2.timestamp());
    }
}
