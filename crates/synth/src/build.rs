//! Materializing the synthetic hospital into an [`eba_relational::Database`].

use crate::config::SynthConfig;
use crate::events::{generate_events, EventKind};
use crate::log::{generate_accesses, AccessReason};
use crate::world::World;
use eba_relational::{ColId, Database, RowId, TableId, Value};
use std::collections::HashSet;

/// Offset separating the audit-id space of data-set-B tables from the
/// caregiver-id space when [`SynthConfig::use_mapping_table`] is enabled.
pub const AUDIT_ID_OFFSET: i64 = 500_000;

/// Column ids of the materialized `Log` table.
#[derive(Debug, Clone, Copy)]
pub struct LogColumns {
    /// `Lid` — unique log-record id.
    pub lid: ColId,
    /// `Date` — timestamp (minutes since window start).
    pub date: ColId,
    /// `User` — accessing user id.
    pub user: ColId,
    /// `Patient` — accessed patient id.
    pub patient: ColId,
    /// `Action` — coded action description.
    pub action: ColId,
    /// `Day` — derived: 1-based day of the access.
    pub day: ColId,
    /// `IsFirst` — derived: 1 if this is the first access of this
    /// (user, patient) pair within the window, else 0. (With a truncated
    /// log some "first" accesses are really repeats — the paper makes the
    /// same caveat.)
    pub is_first: ColId,
}

/// The generated hospital: database, world metadata, and per-access ground
/// truth.
#[derive(Debug)]
pub struct Hospital {
    /// The relational database: `Log`, data-set-A tables (Appointments,
    /// Visits, Documents), data-set-B tables (Labs, Medications,
    /// Radiology), and `Users` department codes, with all join metadata
    /// declared.
    pub db: Database,
    /// Static world structure (teams, services, ground-truth groups).
    pub world: World,
    /// Generator configuration.
    pub config: SynthConfig,
    /// `ground_truth[row]` is the reason log row `row` exists.
    pub ground_truth: Vec<AccessReason>,
    /// Log column ids.
    pub log_cols: LogColumns,
    /// The `Log` table.
    pub t_log: TableId,
    /// The `Appointments` table.
    pub t_appointments: TableId,
    /// The `Visits` table.
    pub t_visits: TableId,
    /// The `Documents` table.
    pub t_documents: TableId,
    /// The `Labs` table.
    pub t_labs: TableId,
    /// The `Medications` table.
    pub t_medications: TableId,
    /// The `Radiology` table.
    pub t_radiology: TableId,
    /// The `Users` department-code table.
    pub t_users: TableId,
    /// The `Mapping(AuditId, CaregiverId)` table, when
    /// [`SynthConfig::use_mapping_table`] is enabled.
    pub t_mapping: Option<TableId>,
}

impl Hospital {
    /// Generates the world, events and accesses, and materializes the
    /// database.
    pub fn generate(config: SynthConfig) -> Hospital {
        let world = World::generate(&config);
        let events = generate_events(&config, &world);
        let accesses = generate_accesses(&config, &world, &events);

        let mut db = Database::new();
        let tables = crate::schema::create_careweb_tables(&mut db, config.use_mapping_table);
        let (t_log, t_appointments, t_visits, t_documents) = (
            tables.log,
            tables.appointments,
            tables.visits,
            tables.documents,
        );
        let (t_labs, t_medications, t_radiology, t_users, t_mapping) = (
            tables.labs,
            tables.medications,
            tables.radiology,
            tables.users,
            tables.mapping,
        );

        // ------------------------------------------------------- data rows
        let user_v = |i: usize| Value::Int(i as i64 + 1);
        // Data-set-B tables use a separate id space when the mapping-table
        // artifact is enabled.
        let b_user_v = |i: usize| {
            if config.use_mapping_table {
                Value::Int(AUDIT_ID_OFFSET + i as i64 + 1)
            } else {
                Value::Int(i as i64 + 1)
            }
        };
        let patient_v = |i: usize| Value::Int(10_000 + i as i64);

        for e in events.iter().filter(|e| e.recorded) {
            let p = patient_v(e.patient);
            let d = Value::Date(e.timestamp());
            match &e.kind {
                EventKind::Appointment { doctor } => {
                    db.insert(t_appointments, vec![p, d, user_v(*doctor)])
                        .expect("valid row");
                }
                EventKind::Visit { doctor } => {
                    db.insert(t_visits, vec![p, d, user_v(*doctor)])
                        .expect("valid row");
                }
                EventKind::Document { author } => {
                    db.insert(t_documents, vec![p, d, user_v(*author)])
                        .expect("valid row");
                }
                EventKind::Lab { order, result } => {
                    db.insert(t_labs, vec![p, d, b_user_v(*order), b_user_v(*result)])
                        .expect("valid row");
                }
                EventKind::Medication { order, sign, admin } => {
                    db.insert(
                        t_medications,
                        vec![p, d, b_user_v(*order), b_user_v(*sign), b_user_v(*admin)],
                    )
                    .expect("valid row");
                }
                EventKind::Radiology { order, read } => {
                    db.insert(t_radiology, vec![p, d, b_user_v(*order), b_user_v(*read)])
                        .expect("valid row");
                }
            }
        }

        for u in &world.users {
            let dept = db.str_value(&u.department);
            db.insert(t_users, vec![user_v(u.index), dept])
                .expect("valid row");
        }
        if let Some(mapping) = t_mapping {
            for u in &world.users {
                db.insert(mapping, vec![b_user_v(u.index), user_v(u.index)])
                    .expect("valid row");
            }
        }

        let view = db.str_value("view");
        let update = db.str_value("update");
        let mut ground_truth = Vec::with_capacity(accesses.len());
        let mut seen_pairs: HashSet<(usize, usize)> = HashSet::with_capacity(accesses.len());
        for (lid, a) in accesses.iter().enumerate() {
            let is_first = seen_pairs.insert((a.user, a.patient));
            let action = if lid % 5 == 0 { update } else { view };
            db.insert(
                t_log,
                vec![
                    Value::Int(lid as i64 + 1),
                    Value::Date(a.timestamp()),
                    user_v(a.user),
                    patient_v(a.patient),
                    action,
                    Value::Int(i64::from(a.day)),
                    Value::Int(i64::from(is_first)),
                ],
            )
            .expect("valid row");
            ground_truth.push(a.reason);
        }

        // ------------------------------------------------- join metadata
        crate::schema::declare_careweb_relationships(
            &mut db,
            config.use_mapping_table,
            config.cross_event_user_rels,
        );

        let schema = db.table(t_log).schema();
        let col = |name: &str| schema.col(name).expect("log column exists");
        let log_cols = LogColumns {
            lid: col("Lid"),
            date: col("Date"),
            user: col("User"),
            patient: col("Patient"),
            action: col("Action"),
            day: col("Day"),
            is_first: col("IsFirst"),
        };

        Hospital {
            db,
            world,
            config,
            ground_truth,
            log_cols,
            t_log,
            t_appointments,
            t_visits,
            t_documents,
            t_labs,
            t_medications,
            t_radiology,
            t_users,
            t_mapping,
        }
    }

    /// Database value for a 0-based user index.
    pub fn user_value(&self, index: usize) -> Value {
        Value::Int(index as i64 + 1)
    }

    /// The audit-id value of a user as it appears in data-set-B tables
    /// (equals [`Hospital::user_value`] unless the mapping artifact is on).
    pub fn audit_user_value(&self, index: usize) -> Value {
        if self.t_mapping.is_some() {
            Value::Int(AUDIT_ID_OFFSET + index as i64 + 1)
        } else {
            self.user_value(index)
        }
    }

    /// Database value for a 0-based patient index.
    pub fn patient_value(&self, index: usize) -> Value {
        Value::Int(10_000 + index as i64)
    }

    /// Reverse of [`Hospital::user_value`].
    pub fn user_index(&self, v: Value) -> Option<usize> {
        match v {
            Value::Int(i) if i >= 1 && (i as usize) <= self.world.n_users() => Some(i as usize - 1),
            _ => None,
        }
    }

    /// Reverse of [`Hospital::patient_value`].
    pub fn patient_index(&self, v: Value) -> Option<usize> {
        match v {
            Value::Int(i) if i >= 10_000 && ((i - 10_000) as usize) < self.world.n_patients() => {
                Some((i - 10_000) as usize)
            }
            _ => None,
        }
    }

    /// Number of log records.
    pub fn log_len(&self) -> usize {
        self.db.table(self.t_log).len()
    }

    /// Ground-truth reason of a log row.
    pub fn reason_of(&self, row: RowId) -> AccessReason {
        self.ground_truth[row as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hospital() -> Hospital {
        Hospital::generate(SynthConfig::tiny())
    }

    #[test]
    fn tables_are_populated() {
        let h = hospital();
        assert!(h.log_len() > 100);
        assert!(!h.db.table(h.t_appointments).is_empty());
        assert!(!h.db.table(h.t_documents).is_empty());
        assert!(!h.db.table(h.t_medications).is_empty());
        assert_eq!(h.db.table(h.t_users).len(), h.world.n_users());
        assert_eq!(h.ground_truth.len(), h.log_len());
    }

    #[test]
    fn is_first_marks_exactly_first_pair_occurrences() {
        let h = hospital();
        let log = h.db.table(h.t_log);
        let mut seen = HashSet::new();
        for (_, row) in log.iter() {
            let pair = (row[h.log_cols.user], row[h.log_cols.patient]);
            let first = seen.insert(pair);
            assert_eq!(
                row[h.log_cols.is_first],
                Value::Int(i64::from(first)),
                "IsFirst mismatch"
            );
        }
    }

    #[test]
    fn log_is_chronological_and_lids_unique() {
        let h = hospital();
        let log = h.db.table(h.t_log);
        let mut prev = i64::MIN;
        let mut lids = HashSet::new();
        for (_, row) in log.iter() {
            let Value::Date(d) = row[h.log_cols.date] else {
                panic!("date column")
            };
            assert!(d >= prev);
            prev = d;
            assert!(lids.insert(row[h.log_cols.lid]));
        }
    }

    #[test]
    fn relationships_and_self_joins_declared() {
        let h = hospital();
        assert!(h.db.relationships().len() > 20);
        assert_eq!(h.db.self_join_attrs().len(), 1);
    }

    #[test]
    fn truncation_leaves_some_event_free_accessed_patients() {
        let h = hospital();
        // Some accessed patients have no recorded event at all.
        let log = h.db.table(h.t_log);
        let mut accessed: HashSet<Value> = HashSet::new();
        for (_, row) in log.iter() {
            accessed.insert(row[h.log_cols.patient]);
        }
        let mut with_event: HashSet<Value> = HashSet::new();
        for t in [
            h.t_appointments,
            h.t_visits,
            h.t_documents,
            h.t_labs,
            h.t_medications,
            h.t_radiology,
        ] {
            for (_, row) in h.db.table(t).iter() {
                with_event.insert(row[0]);
            }
        }
        let without: Vec<_> = accessed.difference(&with_event).collect();
        assert!(
            !without.is_empty(),
            "expected some accessed patients without recorded events"
        );
    }

    #[test]
    fn value_mappings_round_trip() {
        let h = hospital();
        assert_eq!(h.user_index(h.user_value(3)), Some(3));
        assert_eq!(h.patient_index(h.patient_value(7)), Some(7));
        assert_eq!(h.user_index(Value::Int(0)), None);
        assert_eq!(h.patient_index(Value::Int(5)), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = hospital();
        let b = hospital();
        assert_eq!(a.log_len(), b.log_len());
        assert_eq!(a.ground_truth, b.ground_truth);
    }
}
